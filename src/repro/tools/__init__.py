"""Operator tooling: consistency checking and cluster introspection.

LOCUS shipped with recovery/merge tooling and "a trivial tool ... by which
the user may rename each version of the conflicted file" (section 4.6);
these modules are the equivalent operational surface for the reproduction:
``fsck`` audits on-disk structures across all packs, ``inspect`` reports
live kernel state (partitions, CSS assignments, open files, caches).
"""

from repro.tools.fsck import FsckReport, fsck, fsck_repair
from repro.tools.inspect import cluster_report

__all__ = ["FsckReport", "fsck", "fsck_repair", "cluster_report"]
