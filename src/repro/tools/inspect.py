"""Live cluster introspection: the operator's view of kernel state.

Subsystem counters are read through each site's
:class:`~repro.obs.registry.MetricsRegistry` (the buffer cache, name cache,
propagation, and write-behind counters register themselves as gauge
sources), so this module never reaches into private attributes; syscall and
RPC latency percentiles come from the same registry's histograms.
"""

from __future__ import annotations

from typing import Dict, List


def site_report(site) -> Dict:
    """One site's kernel state snapshot."""
    fs = site.fs
    gauges = site.metrics.gauges()
    report = {
        "site": site.site_id,
        "up": site.up,
        "cpu_type": site.cpu_type,
        "cpu_used": round(site.cpu_used, 2),
        "partition": sorted(site.topology.partition_set)
        if site.topology else [],
        "epoch": site.topology.epoch if site.topology else 0,
        "packs": sorted(site.packs),
        "blocks_in_use": {gfs: pack.blocks_in_use
                          for gfs, pack in site.packs.items()},
        "open_us_handles": len(fs.us),
        "open_ss_files": sorted(fs.ss),
        "css_entries": sorted(fs.css_entries),
        "css_for": {gfs: fs.mount.css.get(gfs)
                    for gfs in fs.mount.groups},
        "propagation_pending": fs.propagator.pending(),
        "processes": sorted(site.proc.procs) if site.proc else [],
        "active_transactions": sorted(site.tx.txs) if site.tx else [],
        "latency": _latency_block(site.metrics),
    }
    # Gauge sources: cache, name_cache, propagation, write_behind (and
    # whatever future subsystems register).
    report.update(gauges)
    return report


def _latency_block(metrics) -> Dict[str, Dict]:
    """p50/p95/p99 per syscall and RPC op, from the registry histograms."""
    out: Dict[str, Dict] = {}
    for name, hist in sorted(metrics.hists.items()):
        if not hist.count:
            continue
        out[name] = {
            "count": hist.count,
            "p50": hist.percentile(50),
            "p95": hist.percentile(95),
            "p99": hist.percentile(99),
        }
    return out


def cluster_report(cluster) -> Dict:
    """Whole-cluster snapshot plus global traffic statistics."""
    tracer = getattr(cluster, "tracer", None)
    net_metrics = cluster.net.metrics
    return {
        "vtime": round(cluster.sim.now, 2),
        "events_processed": cluster.sim.events_processed,
        "events_pending": cluster.sim.pending(),
        "sites": [site_report(s) for s in cluster.sites],
        "network": {
            "messages": cluster.stats.total_messages,
            "bytes": cluster.stats.total_bytes,
            "delivered": cluster.stats.delivered,
            "dropped": cluster.stats.dropped,
            "circuits_opened": cluster.stats.circuits_opened,
            "circuits_closed": cluster.stats.circuits_closed,
            "top_message_types": dict(
                sorted(cluster.stats.sent.items(),
                       key=lambda kv: -kv[1])[:10]),
            "pages_per_message": {
                k: round(cluster.stats.pages_per_message(k), 2)
                for k in sorted(cluster.stats.pages)},
            "latency": _latency_block(net_metrics),
        },
        "trace": {
            "enabled": tracer is not None and tracer.enabled,
            "spans": len(tracer.spans) if tracer is not None else 0,
            "instants": len(tracer.instants) if tracer is not None else 0,
        },
    }


def format_report(report: Dict) -> str:
    """Human-readable rendering of :func:`cluster_report`."""
    lines: List[str] = [
        f"t={report['vtime']}  events={report['events_processed']}  "
        f"msgs={report['network']['messages']}  "
        f"dropped={report['network']['dropped']}",
    ]
    for s in report["sites"]:
        state = "up" if s["up"] else "DOWN"
        lines.append(
            f"  site {s['site']} [{state} {s['cpu_type']}] "
            f"partition={s['partition']} packs={s['packs']} "
            f"open={s['open_us_handles']} procs={len(s['processes'])} "
            f"cache_hit={s['cache']['hit_rate']} "
            f"name_hit={s['name_cache']['hit_rate']}")
        lat = s.get("latency") or {}
        syscalls = {k: v for k, v in lat.items()
                    if k.startswith("syscall.")}
        if syscalls:
            worst = max(syscalls.items(), key=lambda kv: kv[1]["p99"])
            lines.append(
                f"    latency: {len(syscalls)} syscalls tracked, "
                f"worst p99 {worst[0]}={worst[1]['p99']}")
    ppm = report["network"].get("pages_per_message") or {}
    if ppm:
        lines.append("  pages/msg: " + "  ".join(
            f"{k}={v}" for k, v in ppm.items()))
    trace = report.get("trace") or {}
    if trace.get("enabled"):
        lines.append(f"  trace: {trace['spans']} spans, "
                     f"{trace['instants']} instants")
    return "\n".join(lines)
