"""Live cluster introspection: the operator's view of kernel state."""

from __future__ import annotations

from typing import Dict, List


def site_report(site) -> Dict:
    """One site's kernel state snapshot."""
    fs = site.fs
    return {
        "site": site.site_id,
        "up": site.up,
        "cpu_type": site.cpu_type,
        "cpu_used": round(site.cpu_used, 2),
        "partition": sorted(site.topology.partition_set)
        if site.topology else [],
        "epoch": site.topology.epoch if site.topology else 0,
        "packs": sorted(site.packs),
        "blocks_in_use": {gfs: pack.blocks_in_use
                          for gfs, pack in site.packs.items()},
        "open_us_handles": len(fs.us),
        "open_ss_files": sorted(fs.ss),
        "css_entries": sorted(fs.css_entries),
        "css_for": {gfs: fs.mount.css.get(gfs)
                    for gfs in fs.mount.groups},
        "propagation_pending": sorted(fs.propagator._pending),
        "cache": {
            "pages": len(site.cache),
            "hit_rate": round(site.cache.stats.hit_rate, 3),
            "invalidations": site.cache.stats.invalidations,
        },
        "name_cache": {
            "dirs": len(site.name_cache),
            "hit_rate": round(site.name_cache.stats.hit_rate, 3),
            "fills": site.name_cache.stats.fills,
            "stale_drops": site.name_cache.stats.stale_drops,
            "invalidations": site.name_cache.stats.invalidations,
            "neg_hits": site.name_cache.stats.neg_hits,
            "neg_fills": site.name_cache.stats.neg_fills,
        },
        "propagation": {
            "pulls": fs.propagator.stats.pulls,
            "pages_pulled": fs.propagator.stats.pages_pulled,
            "range_requests": fs.propagator.stats.range_requests,
            "pipelined_rounds": fs.propagator.stats.pipelined_rounds,
            "manifest_requests": fs.propagator.stats.manifest_requests,
            "manifest_hits": fs.propagator.stats.manifest_hits,
            "sync_waits": fs.propagator.stats.sync_waits,
        },
        "write_behind": {
            "staged_pages": sum(len(h.pending_writes)
                                for h in fs.us.values()),
            "pages_sent_unacked": sum(h.pages_sent for h in fs.us.values()),
        },
        "processes": sorted(site.proc.procs) if site.proc else [],
        "active_transactions": sorted(site.tx.txs) if site.tx else [],
    }


def cluster_report(cluster) -> Dict:
    """Whole-cluster snapshot plus global traffic statistics."""
    return {
        "vtime": round(cluster.sim.now, 2),
        "events_processed": cluster.sim.events_processed,
        "sites": [site_report(s) for s in cluster.sites],
        "network": {
            "messages": cluster.stats.total_messages,
            "bytes": cluster.stats.total_bytes,
            "delivered": cluster.stats.delivered,
            "dropped": cluster.stats.dropped,
            "top_message_types": dict(
                sorted(cluster.stats.sent.items(),
                       key=lambda kv: -kv[1])[:10]),
            "pages_per_message": {
                k: round(cluster.stats.pages_per_message(k), 2)
                for k in sorted(cluster.stats.pages)},
        },
    }


def format_report(report: Dict) -> str:
    """Human-readable rendering of :func:`cluster_report`."""
    lines: List[str] = [
        f"t={report['vtime']}  events={report['events_processed']}  "
        f"msgs={report['network']['messages']}  "
        f"dropped={report['network']['dropped']}",
    ]
    for s in report["sites"]:
        state = "up" if s["up"] else "DOWN"
        lines.append(
            f"  site {s['site']} [{state} {s['cpu_type']}] "
            f"partition={s['partition']} packs={s['packs']} "
            f"open={s['open_us_handles']} procs={len(s['processes'])} "
            f"cache_hit={s['cache']['hit_rate']} "
            f"name_hit={s['name_cache']['hit_rate']}")
    ppm = report["network"].get("pages_per_message") or {}
    if ppm:
        lines.append("  pages/msg: " + "  ".join(
            f"{k}={v}" for k, v in ppm.items()))
    return "\n".join(lines)
