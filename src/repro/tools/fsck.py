"""A filesystem consistency checker for the distributed store.

Audits every pack of every filegroup, cross-site:

* directory-tree reachability — every live inode is referenced by some
  live directory entry (or is a filegroup root);
* dangling entries — no live directory entry points at a missing or
  tombstoned inode;
* replica placement — each file's data is stored exactly at the sites its
  inode advertises (among reachable packs);
* version coherence — no two copies of a file are mutually inconsistent
  unless the file is conflict-marked;
* link counts — a file's nlink matches the number of live entries that
  reference it (hard links).

The checker is read-only and runs over the *committed* state (it decodes
directories straight from pack blocks), so it can run against a live
cluster between operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.fs.directory import decode_entries
from repro.fs.scrub import committed_digest
from repro.storage.inode import FileType
from repro.storage.pack import ROOT_INO
from repro.storage.version_vector import latest

Gfile = Tuple[int, int]

_DIR_TYPES = (FileType.DIRECTORY, FileType.HIDDEN_DIR)


@dataclass
class FsckReport:
    filegroups_checked: int = 0
    inodes_checked: int = 0
    orphan_inodes: List[Gfile] = field(default_factory=list)
    dangling_entries: List[Tuple[Gfile, str, int]] = field(
        default_factory=list)
    placement_errors: List[Tuple[Gfile, str]] = field(default_factory=list)
    # Equal version vectors, different committed bytes (and not
    # conflict-flagged): silent divergence the vv comparison cannot see.
    # Each entry carries the per-site digest pairing for the report.
    content_mismatch: List[Tuple[Gfile, str]] = field(default_factory=list)
    version_conflicts: List[Gfile] = field(default_factory=list)
    unflagged_conflicts: List[Gfile] = field(default_factory=list)
    nlink_errors: List[Tuple[Gfile, int, int]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.orphan_inodes or self.dangling_entries
                    or self.placement_errors or self.content_mismatch
                    or self.unflagged_conflicts or self.nlink_errors)

    def summary(self) -> str:
        lines = [
            f"filegroups checked: {self.filegroups_checked}",
            f"inodes checked:     {self.inodes_checked}",
            f"orphan inodes:      {len(self.orphan_inodes)}",
            f"dangling entries:   {len(self.dangling_entries)}",
            f"placement errors:   {len(self.placement_errors)}",
            f"content mismatches: {len(self.content_mismatch)}",
            f"version conflicts:  {len(self.version_conflicts)} "
            f"({len(self.unflagged_conflicts)} unflagged)",
            f"nlink errors:       {len(self.nlink_errors)}",
            f"verdict:            {'CLEAN' if self.clean else 'DIRTY'}",
        ]
        return "\n".join(lines)


def _read_committed(pack, ino: int) -> bytes:
    inode = pack.get_inode(ino)
    if inode is None:
        return b""
    psz = 1024
    chunks = []
    for blockno in inode.pages:
        chunks.append((pack.read_block(blockno) if blockno is not None
                       else b"").ljust(psz, b"\x00"))
    return b"".join(chunks)[:inode.size]


def fsck(cluster, gfs_list: Optional[List[int]] = None) -> FsckReport:
    """Audit the cluster's packs; returns a :class:`FsckReport`."""
    report = FsckReport()
    mount = cluster.sites[0].fs.mount
    targets = gfs_list if gfs_list is not None else sorted(mount.groups)
    for gfs in targets:
        _check_filegroup(cluster, gfs, report)
    return report


def fsck_repair(cluster, report: Optional[FsckReport] = None) -> FsckReport:
    """Repair what is mechanically repairable: retire orphan inodes (files
    no directory references — e.g. a create whose name insert was lost to a
    network failure) and run the recovery reconciliation over filegroups
    holding unflagged version conflicts (divergence that arose after the
    last merge sweep).  Returns a fresh post-repair report."""
    if report is None:
        report = fsck(cluster)
    mount = cluster.sites[0].fs.mount
    for gfs, ino in report.orphan_inodes:
        for site_id in mount.pack_sites(gfs):
            site = cluster.site(site_id)
            if site.up and site.packs.get(gfs) is not None \
                    and site.packs[gfs].get_inode(ino) is not None:
                cluster.call(site_id, site.fs.h_scrub_orphan(
                    site_id, {"gfile": (gfs, ino)}))
                break
    for gfs in sorted({gfs for gfs, __ in report.unflagged_conflicts}):
        css = mount.css.get(gfs)
        if css is not None and cluster.site(css).up:
            cluster.site(css).recovery.schedule_filegroup(gfs)
    cluster.settle()
    # Dangling entries (a name whose inode is gone — e.g. created during a
    # partition whose delete raced the merge) are scrubbed from their
    # directories, the classic fsck action.
    report = fsck(cluster)
    for (gfs, dir_ino), name, __ in report.dangling_entries:
        css = mount.css.get(gfs)
        if css is None or not cluster.site(css).up:
            continue
        fs = cluster.site(css).fs
        try:
            cluster.call(css, fs._dir_modify(
                (gfs, dir_ino),
                lambda view, n=name: view.entries.remove(
                    next(e for e in view.entries if e.name == n))))
        except Exception:  # noqa: BLE001 - repair is best-effort
            pass
    cluster.settle()
    return fsck(cluster)


def _check_filegroup(cluster, gfs: int, report: FsckReport) -> None:
    report.filegroups_checked += 1
    mount = cluster.sites[0].fs.mount
    packs = {}
    for site_id in mount.pack_sites(gfs):
        site = cluster.site(site_id)
        if site.up and gfs in site.packs:
            packs[site_id] = site.packs[gfs]
    if not packs:
        return

    # Union inode table, plus the freshest copy for reading directories.
    inodes: Dict[int, Dict[int, object]] = {}
    for site_id, pack in packs.items():
        for ino, inode in pack.inodes.items():
            inodes.setdefault(ino, {})[site_id] = inode

    live: Set[int] = set()
    referenced: Dict[int, int] = {}     # ino -> live link count
    for ino, copies in inodes.items():
        report.inodes_checked += 1
        datacopies = [(s, i) for s, i in copies.items()
                      if i.has_data and not i.deleted]
        if not datacopies:
            continue
        live.add(ino)
        __, __, conflict = latest(
            (s, i.version) for s, i in datacopies)
        if conflict:
            report.version_conflicts.append((gfs, ino))
            if not any(i.conflict for __, i in datacopies):
                report.unflagged_conflicts.append((gfs, ino))
        # Replica placement: advertised sites must store the data.
        advertised = set(datacopies[0][1].storage_sites)
        actual = {s for s, __ in datacopies}
        for s in advertised:
            if s in packs and not packs[s].stores(ino):
                report.placement_errors.append(
                    ((gfs, ino), f"site {s}: advertised "
                     f"{sorted(advertised)}, stores nothing "
                     f"(data actually at {sorted(actual)})"))
        # Content audit: copies whose version vectors agree must hold
        # identical committed bytes unless conflict-flagged (a flagged
        # file legitimately parks divergent copies for the user).
        if not conflict and not any(i.conflict for __, i in datacopies):
            best = datacopies[0][1].version
            peers = [(s, i) for s, i in datacopies if i.version == best]
            digests = {s: committed_digest(packs[s], ino)
                       for s, __ in peers if s in packs}
            if len(set(digests.values())) > 1:
                pairing = ", ".join(f"site {s}: {d}"
                                    for s, d in sorted(digests.items()))
                report.content_mismatch.append(((gfs, ino), pairing))

    # Walk directories for reachability and link counts.
    for ino in sorted(live):
        any_inode = next(iter(inodes[ino].values()))
        if any_inode.ftype not in _DIR_TYPES:
            continue
        holder = next((packs[s] for s, i in inodes[ino].items()
                       if i.has_data and s in packs), None)
        if holder is None:
            continue
        try:
            entries = decode_entries(_read_committed(holder, ino))
        except Exception:  # noqa: BLE001 - corrupt directory content
            report.placement_errors.append(
                ((gfs, ino), "directory content undecodable"))
            continue
        for entry in entries:
            if entry.deleted or entry.name in (".", ".."):
                continue
            referenced[entry.ino] = referenced.get(entry.ino, 0) + 1
            if entry.ino not in live:
                report.dangling_entries.append(
                    ((gfs, ino), entry.name, entry.ino))

    for ino in sorted(live):
        if ino == ROOT_INO:
            continue
        refs = referenced.get(ino, 0)
        if refs == 0:
            report.orphan_inodes.append((gfs, ino))
            continue
        any_inode = next(iter(inodes[ino].values()))
        if any_inode.ftype is FileType.REGULAR and any_inode.nlink != refs:
            report.nlink_errors.append(((gfs, ino), any_inode.nlink, refs))
