"""repro — a simulation-based reproduction of the LOCUS distributed
operating system (Walker, Popek, English, Kline, Thiel; SOSP 1983).

Quickstart::

    from repro import LocusCluster

    cluster = LocusCluster(n_sites=3)
    sh = cluster.shell(0)             # a user logged into site 0
    sh.mkdir("/tmp")
    sh.write_file("/tmp/hello", b"transparent!")
    remote = cluster.shell(2)         # names work identically everywhere
    assert remote.read_file("/tmp/hello") == b"transparent!"

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of the paper's figures and quantified claims.
"""

from repro.config import ClusterConfig, CostModel
from repro.core.cluster import LocusCluster
from repro.core.syscalls import Shell
from repro.fs.types import Mode
from repro.proc.process import Signal
from repro.storage.inode import FileType
from repro.storage.version_vector import Ordering, VersionVector

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "CostModel",
    "LocusCluster",
    "Shell",
    "Mode",
    "Signal",
    "FileType",
    "Ordering",
    "VersionVector",
    "__version__",
]
