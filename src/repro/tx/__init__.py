"""Nested transactions ([MEUL 83]; paper sections 1 and 4.1).

LOCUS "provides a full nested transaction facility for those cases where
the user wishes to bind a set of events together": changes to a *set* of
files commit or abort as a unit, subtransactions can abort without killing
their parent, and a partition aborts the subtransactions stranded on the
wrong side (section 5.6's cleanup table: "abort all related subtransactions
in partition").

The implementation leans on the same storage machinery as single-file
commit: staged changes live in shadow pages at each storage site, the CSS's
single-writer synchronization doubles as the lock manager (locks are held
for the transaction's duration because the write opens stay open), and
top-level commit runs a prepare/commit round over the involved storage
sites.
"""

from repro.tx.manager import Transaction, TxManager

__all__ = ["Transaction", "TxManager"]
