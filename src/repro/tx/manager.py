"""The transaction manager: begin / open / commit / abort, nesting,
two-phase distributed commit, and partition abort."""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Generator, Optional, Set

from repro.errors import EINVAL, NetworkError, TxAborted
from repro.fs.types import Gfile, Mode


class TxState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One (possibly nested) transaction rooted at its coordinator site."""

    def __init__(self, manager: "TxManager", tid: int,
                 parent: Optional["Transaction"]):
        self.manager = manager
        self.tid = tid
        self.parent = parent
        self.children: Set[int] = set()
        self.state = TxState.ACTIVE
        # gfile -> open write UsHandle; holding the handle holds the CSS
        # writer lock, giving two-phase locking for free.
        self.handles: Dict[Gfile, object] = {}
        # Savepoints: staged content snapshotted before this transaction's
        # first write through an *inherited* (ancestor-owned) handle, so a
        # subtransaction abort rolls back only its own work.
        self.snapshots: Dict[Gfile, tuple] = {}
        if parent is not None:
            parent.children.add(tid)

    @property
    def depth(self) -> int:
        d, tx = 0, self.parent
        while tx is not None:
            d, tx = d + 1, tx.parent
        return d

    def involved_sites(self) -> Set[int]:
        return {h.ss_site for h in self.handles.values()}

    def check_active(self) -> None:
        if self.state is not TxState.ACTIVE:
            raise TxAborted(self.tid, f"transaction is {self.state.value}")


class TxManager:
    """Per-site transaction bookkeeping plus the 2PC handlers."""

    def __init__(self, site):
        self.site = site
        self.txs: Dict[int, Transaction] = {}
        self._seq = itertools.count(1)
        self.stats = {"begun": 0, "committed": 0, "aborted": 0,
                      "partition_aborts": 0}
        site.register_handler("tx.prepare", self.h_prepare)

    @property
    def sid(self) -> int:
        return self.site.site_id

    def reset_volatile(self) -> None:
        for tx in self.txs.values():
            tx.state = TxState.ABORTED
        self.txs.clear()

    def on_restart(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin(self, parent: Optional[Transaction] = None) -> Transaction:
        if parent is not None:
            parent.check_active()
        tid = self.sid * 1_000_000 + next(self._seq)
        tx = Transaction(self, tid, parent)
        self.txs[tid] = tx
        self.stats["begun"] += 1
        return tx

    def open(self, tx: Transaction, gfile: Gfile) -> Generator:
        """Open a file for modification inside the transaction.

        The open's CSS writer slot is the transaction's write lock; it is
        held until top-level commit or abort.
        """
        handle, __ = yield from self._open_with_owner(tx, gfile)
        return handle

    def _open_with_owner(self, tx: Transaction, gfile: Gfile) -> Generator:
        tx.check_active()
        handle = tx.handles.get(gfile)
        if handle is not None and not handle.closed:
            return handle, tx
        # Inherit an ancestor's open (nested transactions see parent state).
        ancestor = tx.parent
        while ancestor is not None:
            inherited = ancestor.handles.get(gfile)
            if inherited is not None and not inherited.closed:
                return inherited, ancestor
            ancestor = ancestor.parent
        handle = yield from self.site.fs.open_gfile(gfile, Mode.WRITE)
        tx.handles[gfile] = handle
        return handle, tx

    def write(self, tx: Transaction, gfile: Gfile, offset: int,
              data: bytes) -> Generator:
        tx.check_active()
        handle, owner = yield from self._open_with_owner(tx, gfile)
        if owner is not tx and gfile not in tx.snapshots:
            # Savepoint: remember the ancestor's staged content so aborting
            # this subtransaction restores exactly it.
            staged = yield from self.site.fs.read(handle, 0, handle.size)
            tx.snapshots[gfile] = (staged, owner)
        n = yield from self.site.fs.write(handle, offset, data)
        return n

    def read(self, tx: Transaction, gfile: Gfile, offset: int,
             nbytes: int) -> Generator:
        tx.check_active()
        handle = yield from self.open(tx, gfile)
        data = yield from self.site.fs.read(handle, offset, nbytes)
        return data

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def commit(self, tx: Transaction) -> Generator:
        """Subtransaction commit folds staged work into the parent;
        top-level commit runs two-phase commit over the storage sites."""
        tx.check_active()
        if tx.children:
            active_children = [t for t in (self.txs.get(c)
                                           for c in tx.children)
                               if t is not None
                               and t.state is TxState.ACTIVE]
            if active_children:
                raise EINVAL(
                    f"transaction {tx.tid} has active subtransactions")
        if tx.parent is not None:
            tx.parent.check_active()
            for gfile, handle in tx.handles.items():
                if gfile not in tx.parent.handles:
                    tx.parent.handles[gfile] = handle
                elif handle is not tx.parent.handles[gfile]:
                    yield from self.site.fs.close(handle)
            tx.handles.clear()
            tx.snapshots.clear()   # the parent adopts the child's writes
            tx.state = TxState.COMMITTED
            self.stats["committed"] += 1
            return None
        # Top level: phase 1, every storage site must still be reachable and
        # holding the staged shadow state.
        for gfile, handle in tx.handles.items():
            if handle.closed:
                yield from self.abort(tx)
                raise TxAborted(tx.tid, f"handle for {gfile} was lost")
            try:
                ok = yield from self.site.rpc(handle.ss_site, "tx.prepare",
                                              {"gfile": gfile})
            except NetworkError:
                ok = False
            if not ok:
                yield from self.abort(tx)
                raise TxAborted(tx.tid,
                                f"storage site for {gfile} cannot prepare")
        # Phase 2: commit each file (the per-file commit is atomic at its
        # SS; an interleaved failure leaves that file committed and the
        # recovery system propagates it, matching [MEUL 83]'s model of
        # top-level actions surviving once phase 2 begins).
        for handle in tx.handles.values():
            yield from self.site.fs.commit(handle)
        for handle in tx.handles.values():
            yield from self.site.fs.close(handle)
        tx.handles.clear()
        tx.state = TxState.COMMITTED
        self.stats["committed"] += 1
        self.txs.pop(tx.tid, None)
        return None

    def h_prepare(self, src: int, p: dict) -> Generator:
        """Storage-site vote: is the staged state intact here?"""
        so = self.site.fs.ss.get(p["gfile"])
        yield from self.site.cpu(self.site.cost.buffer_hit)
        return so is not None

    # ------------------------------------------------------------------
    # Abort
    # ------------------------------------------------------------------

    def abort(self, tx: Transaction, reason: str = "") -> Generator:
        if tx.state is not TxState.ACTIVE:
            return None
        tx.state = TxState.ABORTED
        self.stats["aborted"] += 1
        # Abort subtransactions first (inside out).
        for child_tid in list(tx.children):
            child = self.txs.get(child_tid)
            if child is not None and child.state is TxState.ACTIVE:
                yield from self.abort(child, reason)
        # Restore savepoints: writes this (sub)transaction made through an
        # ancestor's handle are rolled back to the ancestor's staged state.
        for gfile, (staged, owner) in tx.snapshots.items():
            handle = owner.handles.get(gfile)
            if handle is None or handle.closed or \
                    owner.state is not TxState.ACTIVE:
                continue
            try:
                yield from self.site.fs.truncate(handle)
                if staged:
                    yield from self.site.fs.write(handle, 0, staged)
            except (NetworkError, Exception):  # noqa: BLE001
                pass
        tx.snapshots.clear()
        for handle in list(tx.handles.values()):
            if handle.closed:
                continue
            try:
                yield from self.site.fs.abort(handle)
            except (NetworkError, Exception):  # noqa: BLE001
                pass
            try:
                yield from self.site.fs.close(handle)
            except Exception:  # noqa: BLE001
                pass
        tx.handles.clear()
        self.txs.pop(tx.tid, None)
        return None

    # ------------------------------------------------------------------
    # Partition handling: "abort all related subtransactions in partition"
    # ------------------------------------------------------------------

    def on_partition_change(self, lost: Set[int]) -> Generator:
        for tx in list(self.txs.values()):
            if tx.state is not TxState.ACTIVE:
                continue
            if tx.involved_sites() & lost:
                self.stats["partition_aborts"] += 1
                yield from self.abort(
                    tx, reason=f"sites {sorted(lost)} left the partition")
        return None
