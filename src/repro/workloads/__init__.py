"""Synthetic workload generators for the benchmark harness."""

from repro.workloads.generators import (build_tree, read_write_mix,
                                        sample_paths, zipf_weights)

__all__ = ["build_tree", "read_write_mix", "sample_paths", "zipf_weights"]
