"""Deterministic workload generators.

All randomness flows from the cluster simulator's seeded RNG, so a given
seed reproduces the exact trace.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple


def deterministic_bytes(rng: random.Random, size: int) -> bytes:
    """Pseudo-random file content."""
    return bytes(rng.getrandbits(8) for __ in range(size))


def build_tree(shell, n_dirs: int, files_per_dir: int,
               file_size: int, rng: Optional[random.Random] = None,
               prefix: str = "/w", copies: int = 1) -> List[str]:
    """Create a directory tree; returns every file path created."""
    rng = rng or shell.cluster.sim.rng
    shell.setcopies(copies)
    paths: List[str] = []
    shell.mkdir(prefix)
    for d in range(n_dirs):
        dirpath = f"{prefix}/d{d}"
        shell.mkdir(dirpath)
        for f in range(files_per_dir):
            path = f"{dirpath}/f{f}"
            shell.write_file(path, deterministic_bytes(rng, file_size))
            paths.append(path)
    return paths


def zipf_weights(n: int, s: float = 1.2) -> List[float]:
    """Zipf-ish popularity: directories near the root dominate lookups
    (section 2.2.1's observation about hierarchical access patterns)."""
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


def sample_paths(rng: random.Random, paths: Sequence[str], count: int,
                 s: float = 1.2) -> List[str]:
    """Draw ``count`` paths with Zipf popularity over the path list."""
    weights = zipf_weights(len(paths), s=s)
    return rng.choices(list(paths), weights=weights, k=count)


def read_write_mix(shell, paths: Sequence[str], ops: int,
                   write_frac: float = 0.2,
                   rng: Optional[random.Random] = None,
                   io_bytes: int = 256) -> Dict[str, int]:
    """Run a mixed read/write workload; returns operation counts."""
    rng = rng or shell.cluster.sim.rng
    counts = {"reads": 0, "writes": 0}
    targets = sample_paths(rng, paths, ops)
    for path in targets:
        if rng.random() < write_frac:
            fd = shell.open(path, "w")
            shell.pwrite(fd, rng.randrange(0, 4) * 16,
                         deterministic_bytes(rng, io_bytes))
            shell.close(fd)
            counts["writes"] += 1
        else:
            fd = shell.open(path, "r")
            shell.pread(fd, 0, io_bytes)
            shell.close(fd)
            counts["reads"] += 1
    return counts


# Default operation mix for randomized schedules: read-dominated with a
# steady trickle of namespace churn (section 2.2.1's measured shape).
DEFAULT_OP_MIX = (
    ("read", 0.40), ("write", 0.28), ("stat", 0.06), ("readdir", 0.05),
    ("mkdir", 0.04), ("rename", 0.07), ("unlink", 0.06), ("link", 0.04),
)


def op_mix_schedule(rng: random.Random, paths: Sequence[str], count: int,
                    span: float, sites: Sequence[int] = (0,),
                    mix: Sequence[Tuple[str, float]] = DEFAULT_OP_MIX,
                    s: float = 1.2) -> List[dict]:
    """Draw ``count`` timed operations: kinds from the weighted ``mix``,
    targets Zipf-popular over ``paths``, issue times uniform over
    ``[0, span]``, issuing site round-robin-random over ``sites``.

    Returns plain dicts (``at``/``site``/``op``/``path``/``dest``) so
    callers owning richer schedule types (e.g. ``repro.fuzz``) can lift
    them without this module importing those types.  Rename/link targets
    are fresh sibling names, so schedules stay valid whatever subset of
    them a shrinker keeps.
    """
    kinds = [k for k, __ in mix]
    weights = [w for __, w in mix]
    path_weights = zipf_weights(len(paths), s=s)
    out: List[dict] = []
    for i in range(count):
        op = rng.choices(kinds, weights=weights, k=1)[0]
        path = rng.choices(list(paths), weights=path_weights, k=1)[0]
        entry = {"at": round(rng.uniform(0.0, span), 1),
                 "site": rng.choice(list(sites)), "op": op, "path": path}
        parent = path.rsplit("/", 1)[0] or "/"
        if op in ("rename", "link"):
            entry["dest"] = f"{parent}/n{i}"
        elif op == "mkdir":
            entry["path"] = f"{parent}/m{i}"
        elif op == "write":
            entry["size"] = rng.choice((64, 256, 1024, 2048))
            entry["tag"] = i
        out.append(entry)
    out.sort(key=lambda e: (e["at"], e["site"], e["op"], e["path"]))
    return out


def divergent_updates(cluster, left_shell, right_shell,
                      paths: Sequence[str], n_conflicts: int,
                      n_left_only: int,
                      rng: Optional[random.Random] = None
                      ) -> Tuple[List[str], List[str]]:
    """During an existing partition, update ``n_conflicts`` files on both
    sides and ``n_left_only`` files on the left only.  Returns the two
    path lists (conflicting, left-only)."""
    rng = rng or cluster.sim.rng
    chosen = list(paths)
    rng.shuffle(chosen)
    conflicting = chosen[:n_conflicts]
    left_only = chosen[n_conflicts:n_conflicts + n_left_only]
    for path in conflicting:
        left_shell.write_file(path, b"left " + path.encode())
        right_shell.write_file(path, b"right " + path.encode())
    for path in left_only:
        left_shell.write_file(path, b"only-left " + path.encode())
    return conflicting, left_only
