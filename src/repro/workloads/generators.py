"""Deterministic workload generators.

All randomness flows from the cluster simulator's seeded RNG, so a given
seed reproduces the exact trace.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple


def deterministic_bytes(rng: random.Random, size: int) -> bytes:
    """Pseudo-random file content."""
    return bytes(rng.getrandbits(8) for __ in range(size))


def build_tree(shell, n_dirs: int, files_per_dir: int,
               file_size: int, rng: Optional[random.Random] = None,
               prefix: str = "/w", copies: int = 1) -> List[str]:
    """Create a directory tree; returns every file path created."""
    rng = rng or shell.cluster.sim.rng
    shell.setcopies(copies)
    paths: List[str] = []
    shell.mkdir(prefix)
    for d in range(n_dirs):
        dirpath = f"{prefix}/d{d}"
        shell.mkdir(dirpath)
        for f in range(files_per_dir):
            path = f"{dirpath}/f{f}"
            shell.write_file(path, deterministic_bytes(rng, file_size))
            paths.append(path)
    return paths


def zipf_weights(n: int, s: float = 1.2) -> List[float]:
    """Zipf-ish popularity: directories near the root dominate lookups
    (section 2.2.1's observation about hierarchical access patterns)."""
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


def sample_paths(rng: random.Random, paths: Sequence[str], count: int,
                 s: float = 1.2) -> List[str]:
    """Draw ``count`` paths with Zipf popularity over the path list."""
    weights = zipf_weights(len(paths), s=s)
    return rng.choices(list(paths), weights=weights, k=count)


def read_write_mix(shell, paths: Sequence[str], ops: int,
                   write_frac: float = 0.2,
                   rng: Optional[random.Random] = None,
                   io_bytes: int = 256) -> Dict[str, int]:
    """Run a mixed read/write workload; returns operation counts."""
    rng = rng or shell.cluster.sim.rng
    counts = {"reads": 0, "writes": 0}
    targets = sample_paths(rng, paths, ops)
    for path in targets:
        if rng.random() < write_frac:
            fd = shell.open(path, "w")
            shell.pwrite(fd, rng.randrange(0, 4) * 16,
                         deterministic_bytes(rng, io_bytes))
            shell.close(fd)
            counts["writes"] += 1
        else:
            fd = shell.open(path, "r")
            shell.pread(fd, 0, io_bytes)
            shell.close(fd)
            counts["reads"] += 1
    return counts


def divergent_updates(cluster, left_shell, right_shell,
                      paths: Sequence[str], n_conflicts: int,
                      n_left_only: int,
                      rng: Optional[random.Random] = None
                      ) -> Tuple[List[str], List[str]]:
    """During an existing partition, update ``n_conflicts`` files on both
    sides and ``n_left_only`` files on the left only.  Returns the two
    path lists (conflicting, left-only)."""
    rng = rng or cluster.sim.rng
    chosen = list(paths)
    rng.shuffle(chosen)
    conflicting = chosen[:n_conflicts]
    left_only = chosen[n_conflicts:n_conflicts + n_left_only]
    for path in conflicting:
        left_shell.write_file(path, b"left " + path.encode())
        right_shell.write_file(path, b"right " + path.encode())
    for path in left_only:
        left_shell.write_file(path, b"only-left " + path.encode())
    return conflicting, left_only
