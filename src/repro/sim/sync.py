"""Synchronization primitives built on futures.

Used by kernel processes: the propagation queue (paper section 2.3.6 keeps
"a queue of propagation requests ... serviced by a kernel process"), pipe
buffers, and transaction lock waits.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List

from repro.sim.future import Future
from repro.sim.simulator import Simulator


class SimQueue:
    """Unbounded FIFO queue with blocking ``get``."""

    def __init__(self, sim: Simulator, name: str = "queue"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Future] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().resolve(item)
        else:
            self._items.append(item)

    def get(self) -> Generator:
        """Kernel-procedure style blocking get (use with ``yield from``)."""
        if self._items:
            return self._items.popleft()
            yield  # pragma: no cover - marks this function as a generator
        fut = self.sim.create_future(f"{self.name}.get")
        self._getters.append(fut)
        item = yield fut
        return item

    def __len__(self) -> int:
        return len(self._items)

    def drain(self) -> List[Any]:
        items = list(self._items)
        self._items.clear()
        return items


class SimEvent:
    """A level-triggered event: tasks wait until somebody sets it."""

    def __init__(self, sim: Simulator, name: str = "event"):
        self.sim = sim
        self.name = name
        self._set = False
        self._waiters: List[Future] = []

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self) -> None:
        self._set = True
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            fut.resolve(None)

    def clear(self) -> None:
        self._set = False

    def wait(self) -> Generator:
        if self._set:
            return None
            yield  # pragma: no cover
        fut = self.sim.create_future(f"{self.name}.wait")
        self._waiters.append(fut)
        yield fut
        return None


class Semaphore:
    """Counting semaphore with FIFO wake-up order."""

    def __init__(self, sim: Simulator, value: int = 1, name: str = "sem"):
        if value < 0:
            raise ValueError("semaphore value must be non-negative")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: Deque[Future] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Generator:
        if self._value > 0:
            self._value -= 1
            return None
            yield  # pragma: no cover
        fut = self.sim.create_future(f"{self.name}.acquire")
        self._waiters.append(fut)
        yield fut
        return None

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().resolve(None)
        else:
            self._value += 1
