"""Kernel tasks: generator coroutines driven by the simulator."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import TaskCancelled
from repro.sim.future import Future, _PENDING


class Task:
    """A running kernel procedure.

    Wraps a generator and steps it each time the thing it yielded completes.
    The task itself exposes a ``done`` future so other tasks can wait for it
    (``yield task.done``).
    """

    __slots__ = ("sim", "gen", "name", "done", "span_ctx", "_cancelled",
                 "_waiting_on")

    def __init__(self, sim, gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "task")
        self.done = Future(label=self.name)
        # Flight-recorder span context, inherited from the spawning task so
        # background work parents under the syscall that caused it.
        parent = sim.current_task
        self.span_ctx = parent.span_ctx if parent is not None else None
        self._cancelled = False
        self._waiting_on: Optional[Future] = None

    # -- public --------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.done.done

    def result(self) -> Any:
        return self.done.result()

    def cancel(self, reason: str = "") -> None:
        """Throw :class:`TaskCancelled` into the generator at its next step."""
        if self.finished or self._cancelled:
            return
        self._cancelled = True
        # If blocked on a future, detach and resume with the cancellation now.
        self.sim.call_soon(self._step_throw, TaskCancelled(reason or self.name))

    # -- stepping (driven by the simulator) -----------------------------

    def _start(self) -> None:
        self._step_send(None)

    def _step_send(self, value: Any) -> None:
        if self.finished:
            return
        sim = self.sim
        prev_task = sim.current_task
        sim.current_task = self
        try:
            try:
                yielded = self.gen.send(value)
            except StopIteration as stop:
                self.done.resolve(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - failure is data
                self.done.fail(exc)
                return
        finally:
            sim.current_task = prev_task
        self._handle_yield(yielded)

    def _step_throw(self, exc: BaseException) -> None:
        if self.finished:
            return
        sim = self.sim
        prev_task = sim.current_task
        sim.current_task = self
        try:
            try:
                yielded = self.gen.throw(exc)
            except StopIteration as stop:
                self.done.resolve(stop.value)
                return
            except BaseException as err:  # noqa: BLE001
                self.done.fail(err)
                return
        finally:
            sim.current_task = prev_task
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if self._cancelled:
            # A cancel raced with this step; the throw is already scheduled.
            return
        # Exact-type checks first (the hot kernel shapes: virtual-time
        # charges and futures), isinstance fallbacks after for subclasses.
        cls = yielded.__class__
        if cls is float or cls is int:
            # Timer step: the simulator queues the task itself, no event.
            self.sim._schedule_timer(float(yielded), self)
        elif cls is Future or isinstance(yielded, Future):
            self._wait_future(yielded)
        elif isinstance(yielded, Task):
            self._wait_future(yielded.done)
        elif isinstance(yielded, (int, float)):
            self.sim._schedule_timer(float(yielded), self)
        elif yielded is None:
            # Bare yield: reschedule immediately (cooperative yield point).
            self.sim.call_soon(self._step_send, None)
        else:
            self._step_throw(TypeError(
                f"task {self.name!r} yielded unsupported {yielded!r}"))

    def _wait_future(self, fut: Future) -> None:
        self._waiting_on = fut
        if fut._state is _PENDING:
            fut._callbacks.append(self._future_fired)
        else:
            self._future_fired(fut)

    def _future_fired(self, f: Future) -> None:
        """Completion callback: hand the task to the simulator's ready
        queue.  Runs at resolve time, so the staleness check (a wake-up
        racing a cancellation) happens exactly where the old closure-based
        callback performed it."""
        if self._waiting_on is not f:
            return
        self._waiting_on = None
        self.sim._ready_resume(self, f)

    def __repr__(self) -> str:
        state = "done" if self.finished else "running"
        return f"<Task {self.name!r} {state}>"
