"""One-shot futures used for sleeping kernel tasks."""

from __future__ import annotations

from typing import Any, Callable, List, Optional


_PENDING = "pending"
_RESOLVED = "resolved"
_FAILED = "failed"


class Future:
    """A single-assignment result that tasks can block on.

    A kernel task blocks on a future by ``yield``-ing it; the simulator
    resumes the task with the future's value (or throws its exception into
    the generator) once the future completes.
    """

    __slots__ = ("_state", "_value", "_exc", "_callbacks", "label")

    def __init__(self, label: str = ""):
        self._state = _PENDING
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []
        self.label = label

    # -- state ---------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._state != _PENDING

    @property
    def failed(self) -> bool:
        return self._state == _FAILED

    def result(self) -> Any:
        """Return the value, raising if the future failed or is pending."""
        if self._state == _PENDING:
            raise RuntimeError(f"future {self.label!r} is still pending")
        if self._state == _FAILED:
            assert self._exc is not None
            raise self._exc
        return self._value

    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- completion ----------------------------------------------------

    def resolve(self, value: Any = None) -> None:
        if self._state != _PENDING:
            return  # late resolution (e.g. duplicate reply) is ignored
        self._state = _RESOLVED
        self._value = value
        self._fire()

    def fail(self, exc: BaseException) -> None:
        if self._state != _PENDING:
            return
        self._state = _FAILED
        self._exc = exc
        self._fire()

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        """Run ``fn(self)`` when the future completes (immediately if done)."""
        if self.done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:
        return f"<Future {self.label!r} {self._state}>"
