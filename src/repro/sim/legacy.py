"""The pre-calendar-queue simulator kernel, preserved verbatim.

This is the original single-heap scheduler: one global ``heapq`` of
``_HeapEvent`` objects ordered by a Python-level ``__lt__``, a fresh event
allocation per schedule, ``call_soon`` as ``schedule(0)``, and tombstone
draining inline in ``step``.

It exists so the T18 simulator-core benchmark can run the *same* workload
on the old and new kernels in one process and assert two things forever:

* the calendar-queue kernel reproduces the old kernel's schedule exactly
  (identical virtual time, event counts, message counts, post-state);
* the throughput win does not quietly erode (events/sec ratio).

Select it with ``ClusterConfig(sim_kernel="heap")``.  Do not use it for
new work — it is a measuring stick, not a second kernel to maintain.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.simulator import Simulator

_INF = float("inf")


class _HeapEvent:
    """The original event: compared via Python ``__lt__`` on every heap
    sift — the dominant cost the calendar queue removed."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_HeapEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class LegacySimulator(Simulator):
    """Drop-in :class:`Simulator` with the original global-heap scheduler."""

    def __init__(self, seed: int = 0):
        super().__init__(seed=seed)
        self._heap: List[_HeapEvent] = []

    # -- scheduling (original implementation) ---------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> _HeapEvent:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        ev = _HeapEvent(self.now + delay, self._seq, fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    def call_soon(self, fn: Callable, *args: Any) -> _HeapEvent:
        return self.schedule(0.0, fn, *args)

    def _schedule_recycled(self, delay: float, fn: Callable,
                           args: tuple) -> None:
        self.schedule(delay, fn, *args)

    def _schedule_timer(self, delay: float, task) -> None:
        # Seed shape: a sleep is a scheduled _step_send, one event object.
        self.schedule(delay, task._step_send, None)

    def _ready_resume(self, task, fut) -> None:
        # Seed shape: future completion schedules the resume via the heap.
        exc = fut.exception()
        if exc is not None:
            self.call_soon(task._step_throw, exc)
        else:
            self.call_soon(task._step_send, fut.result())

    def _ready_start(self, task) -> None:
        self.call_soon(task._start)

    # -- running (original implementation) ------------------------------

    def step(self) -> bool:
        while True:
            while self._heap:
                ev = heapq.heappop(self._heap)
                if ev.cancelled:
                    continue
                assert ev.time >= self.now, "time went backwards"
                self.now = ev.time
                self.events_processed += 1
                ev.fn(*ev.args)
                return True
            if not self.fire_idle_hooks():
                return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        remaining = max_events
        while True:
            while self._heap:
                if until is not None and self._peek_time() > until:
                    self.now = until
                    return
                if remaining is not None:
                    if remaining <= 0:
                        return
                    before = self.events_processed
                    self.step()
                    remaining -= self.events_processed - before
                else:
                    self.step()
            if not self.fire_idle_hooks():
                break
        if until is not None and until > self.now:
            self.now = until

    def drain(self, horizon: float) -> None:
        while self._peek_time() <= horizon:
            self.step()

    def _peek_time(self) -> float:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else _INF

    def pending(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)
