"""Deterministic discrete-event simulation substrate.

The LOCUS kernel is "procedure based": a system call traps into the kernel,
which may sleep while waiting for a foreign site's reply (paper section
2.3.2).  We model kernel control flow with generator coroutines driven by a
single-threaded event loop:

* ``yield future``   — sleep until the future resolves (e.g. an RPC reply),
* ``yield seconds``  — sleep for a fixed amount of virtual time,
* ``yield from gen`` — call another kernel procedure that may itself sleep.

Everything is deterministic: one seeded RNG, a strictly ordered event queue,
and no wall-clock reads in the core.
"""

from repro.sim.future import Future
from repro.sim.task import Task
from repro.sim.simulator import Simulator
from repro.sim.legacy import LegacySimulator
from repro.sim.sync import SimQueue, SimEvent, Semaphore

__all__ = [
    "Future",
    "Task",
    "Simulator",
    "LegacySimulator",
    "SimQueue",
    "SimEvent",
    "Semaphore",
]
