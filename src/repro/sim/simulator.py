"""The discrete-event simulator: clock, event queue, task scheduler."""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Generator, List, Optional

from repro.errors import DeadlockError, SimTimeout
from repro.sim.future import Future
from repro.sim.task import Task


class _Event:
    """A scheduled callback.  Cancellation leaves a tombstone in the heap."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Single-threaded deterministic event loop with a virtual clock.

    The RNG is owned by the simulator so that every source of randomness in a
    run flows from one seed; identical seeds give identical traces.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._heap: List[_Event] = []
        self._seq = 0
        self.events_processed = 0
        self.tasks_spawned = 0
        # The task whose generator is being stepped right now (None between
        # steps).  Carries the flight recorder's span context: a task
        # spawned while another runs inherits its causal position, and the
        # tracer reads/writes ``current_task.span_ctx`` to nest spans.
        self.current_task: Optional[Task] = None
        # Called whenever the event queue drains completely — the moment the
        # whole system is quiescent.  The fault engine's InvariantChecker
        # hangs its post-heal fsck here so checks never race in-flight
        # protocols.  Hooks run synchronously and may schedule new events.
        self.idle_hooks: List[Callable[[], None]] = []

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> _Event:
        """Run ``fn(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        ev = _Event(self.now + delay, self._seq, fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    def call_soon(self, fn: Callable, *args: Any) -> _Event:
        return self.schedule(0.0, fn, *args)

    def create_future(self, label: str = "") -> Future:
        return Future(label=label)

    # -- tasks -----------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Task:
        """Start a kernel task running the given generator."""
        self.tasks_spawned += 1
        task = Task(self, gen, name=name or f"task-{self.tasks_spawned}")
        self.call_soon(task._start)
        return task

    # -- running ---------------------------------------------------------

    def step(self) -> bool:
        """Process the next event.  Returns False when the queue is empty
        and the idle hooks (if any) scheduled nothing new."""
        while True:
            while self._heap:
                ev = heapq.heappop(self._heap)
                if ev.cancelled:
                    continue
                assert ev.time >= self.now, "time went backwards"
                self.now = ev.time
                self.events_processed += 1
                ev.fn(*ev.args)
                return True
            if not self.fire_idle_hooks():
                return False

    def fire_idle_hooks(self) -> bool:
        """Run the idle hooks if the queue is truly empty.  Returns True
        when a hook scheduled new work (so stepping should continue)."""
        if not self.idle_hooks or self._peek_time() != float("inf"):
            return False
        for hook in list(self.idle_hooks):
            hook()
        return self._peek_time() != float("inf")

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` passes, or the budget ends."""
        budget = max_events
        while True:
            while self._heap:
                if until is not None and self._peek_time() > until:
                    self.now = until
                    return
                if budget is not None:
                    if budget <= 0:
                        return
                    budget -= 1
                self.step()
            if not self.fire_idle_hooks():
                break
        if until is not None and until > self.now:
            self.now = until

    def run_task(self, gen: Generator, name: str = "") -> Any:
        """Spawn a task, drive the simulation until it completes, return its
        result (or raise its failure).

        Raises :class:`DeadlockError` if the event queue drains while the
        task is still blocked — i.e. it waits on something nothing will ever
        deliver.
        """
        task = self.spawn(gen, name=name)
        while not task.finished:
            if not self.step():
                raise DeadlockError(
                    f"event queue drained while {task!r} still blocked")
        return task.result()

    def _peek_time(self) -> float:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else float("inf")

    # -- timeouts ---------------------------------------------------------

    def with_timeout(self, fut: Future, timeout: float,
                     label: str = "") -> Future:
        """Return a future that mirrors ``fut`` but fails with
        :class:`SimTimeout` if it does not complete within ``timeout``."""
        out = Future(label=f"timeout:{label or fut.label}")
        ev = self.schedule(
            timeout, lambda: out.fail(SimTimeout(label or fut.label)))

        def _mirror(f: Future) -> None:
            ev.cancel()
            exc = f.exception()
            if exc is not None:
                out.fail(exc)
            else:
                out.resolve(f.result())

        fut.add_callback(_mirror)
        return out

    def sleep_future(self, delay: float) -> Future:
        """A future that resolves after ``delay`` virtual time units."""
        fut = Future(label=f"sleep:{delay}")
        self.schedule(delay, fut.resolve, None)
        return fut

    def gather(self, futures: List[Future], label: str = "gather") -> Future:
        """A future resolving with the list of results once all complete.

        Fails fast with the first failure.
        """
        out = Future(label=label)
        remaining = len(futures)
        results: List[Any] = [None] * len(futures)
        if remaining == 0:
            out.resolve([])
            return out

        def _one(i: int, f: Future) -> None:
            nonlocal remaining
            exc = f.exception()
            if exc is not None:
                out.fail(exc)
                return
            results[i] = f.result()
            remaining -= 1
            if remaining == 0:
                out.resolve(results)

        for i, f in enumerate(futures):
            f.add_callback(lambda fu, i=i: _one(i, fu))
        return out

    def __repr__(self) -> str:
        return (f"<Simulator t={self.now:.3f} queued={len(self._heap)} "
                f"processed={self.events_processed}>")
