"""The discrete-event simulator: clock, event queue, task scheduler.

The scheduler is a bucketed calendar queue, rebuilt for wall-clock
throughput (million-event storms) while keeping the schedule bit-identical
to the original single-heap kernel:

* **Total order.**  Every queue entry carries ``(time, seq)`` with ``seq``
  drawn from one global counter; entries fire in exactly that order no
  matter which internal structure holds them.  This is the determinism
  contract: the calendar buckets, the ready deque and the overflow heap
  are pure containers — they never reorder equal-time entries.

* **Near-future buckets.**  Entries within the calendar window (``_base``
  to ``_limit``) land in one of ``_NBUCKETS`` buckets, each a small binary
  heap of tuples whose first two elements are ``(time, seq)`` — all heap
  comparisons happen in C (the old kernel burned most of its time in a
  Python ``__lt__`` on a single ever-deeper heap).  The bucket width
  adapts at each window rotation to span the entire far-future overflow,
  so steady-state pushes land directly in buckets and nothing cycles
  through the overflow heap twice.

* **Far-future overflow heap.**  Entries beyond the window go to ``_far``;
  when the window drains, the calendar rotates forward and re-buckets the
  overflow that now falls inside it.

* **Ready deque.**  Zero-delay work — ``call_soon`` events, future
  resumptions, task starts — skips the calendar entirely and rides a FIFO
  deque.  A deque entry is only popped when no calendar entry with the
  same timestamp and a smaller ``seq`` is pending, preserving the global
  order.

* **Slab recycling and tuple entries.**  The hot internal paths never
  allocate an event object at all: task sleep timers are ``(time, seq,
  task)`` tuples resumed inline by :meth:`step`, internal callbacks
  (message delivery) are ``(time, seq, fn, args)`` tuples, and future
  resumptions are ``(seq, task, future)`` ready entries.  ``call_soon``
  returns a cancellable handle drawn from a freelist and recycled after
  it fires — hold it only to cancel *before* it runs, never afterwards.
  Events returned by :meth:`schedule` are never recycled: callers may
  hold them and call ``cancel`` arbitrarily late.

Cancellation leaves a tombstone; tombstones are skipped (and discarded)
during peeks and pops and are excluded from :meth:`pending`.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, List, Optional

from repro.errors import DeadlockError, SimTimeout
from repro.sim.future import Future, _PENDING
from repro.sim.task import Task

_NBUCKETS = 2048        # calendar buckets per window
_FREE_MAX = 4096         # freelist cap (slab of recycled call_soon events)
_INF = float("inf")


class _Event:
    """A scheduled callback.  Cancellation leaves a tombstone in place.

    Heap entries are ``(time, seq, event)`` tuples — the event object
    itself is never compared, so heap operations stay entirely in C.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "recyclable")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple,
                 recyclable: bool = False):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.recyclable = recyclable

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Single-threaded deterministic event loop with a virtual clock.

    The RNG is owned by the simulator so that every source of randomness in a
    run flows from one seed; identical seeds give identical traces.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._seq = 0
        self.events_processed = 0
        self.tasks_spawned = 0
        # The task whose generator is being stepped right now (None between
        # steps).  Carries the flight recorder's span context: a task
        # spawned while another runs inherits its causal position, and the
        # tracer reads/writes ``current_task.span_ctx`` to nest spans.
        self.current_task: Optional[Task] = None
        # Called whenever the event queue drains completely — the moment the
        # whole system is quiescent.  The fault engine's InvariantChecker
        # hangs its post-heal fsck here so checks never race in-flight
        # protocols.  Hooks run synchronously and may schedule new events.
        self.idle_hooks: List[Callable[[], None]] = []
        # -- calendar-queue state --------------------------------------
        # Ready entries: _Event (call_soon) or (seq, task, future|None).
        self._ready: deque = deque()
        # Bucket/far entries: (time, seq, _Event) from schedule(),
        # (time, seq, Task) sleep timers, (time, seq, fn, args) internal.
        self._buckets: List[list] = [[] for _ in range(_NBUCKETS)]
        self._width = 8.0                         # current bucket width
        self._inv_width = 1.0 / 8.0
        self._base = 0.0                          # window start
        self._limit = _NBUCKETS * 8.0             # window end
        self._cursor = 0                          # first maybe-nonempty bucket
        self._bucket_count = 0                    # entries in buckets (+tombs)
        self._far: list = []                      # overflow heap beyond window
        self._far_max = 0.0                       # newest far entry's time
        # Recycled call_soon events.  Bounded deque: append past maxlen
        # silently evicts the oldest — no length check on the fire path.
        self._free: deque = deque(maxlen=_FREE_MAX)
        # Tombstones discarded one-by-one since the last compaction; once
        # this rivals the pending population, a purge sweep is cheaper
        # than continuing to heappop dead entries individually.
        self._discards = 0
        # Set by every calendar mutation; lets the hot loop reuse its
        # cached head instead of re-walking the buckets per event.
        self._cal_dirty = True

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> _Event:
        """Run ``fn(*args)`` after ``delay`` units of virtual time.

        The returned event may be held and cancelled at any time, so it is
        never slab-recycled.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        t = self.now + delay
        self._seq += 1
        ev = _Event(t, self._seq, fn, args)
        self._push_entry(t, (t, self._seq, ev))
        return ev

    def call_soon(self, fn: Callable, *args: Any) -> _Event:
        """Zero-delay schedule on the ready deque.

        The event fires after every already-pending event with the same
        timestamp (FIFO at equal times, like the old kernel).  The handle
        supports ``cancel`` until it fires; it is recycled afterwards, so
        do not retain it past that point.
        """
        seq = self._seq + 1
        self._seq = seq
        free = self._free
        if free:
            ev = free.pop()
            ev.time = self.now
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = _Event(self.now, seq, fn, args, True)
        self._ready.append(ev)
        return ev

    def _schedule_recycled(self, delay: float, fn: Callable,
                           args: tuple) -> None:
        """Internal scheduling for callbacks that never expose a handle
        (message delivery): a bare ``(time, seq, fn, args)`` tuple, no
        event object at all."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        t = self.now + delay
        self._seq += 1
        self._cal_dirty = True
        if self._base <= t < self._limit:
            idx = int((t - self._base) * self._inv_width)
            if idx >= _NBUCKETS:              # float-boundary safety clamp
                idx = _NBUCKETS - 1
            if idx < self._cursor:
                self._cursor = idx
            heappush(self._buckets[idx], (t, self._seq, fn, args))
            self._bucket_count += 1
        else:
            self._push_entry(t, (t, self._seq, fn, args))

    def _schedule_timer(self, delay: float, task: Task) -> None:
        """A task sleeping ``delay`` (``yield seconds``): the entry is the
        task itself; :meth:`step` resumes its generator inline."""
        t = self.now + delay
        self._seq += 1
        self._cal_dirty = True
        if self._base <= t < self._limit:
            idx = int((t - self._base) * self._inv_width)
            if idx >= _NBUCKETS:
                idx = _NBUCKETS - 1
            if idx < self._cursor:
                self._cursor = idx
            heappush(self._buckets[idx], (t, self._seq, task))
            self._bucket_count += 1
        else:
            self._push_entry(t, (t, self._seq, task))

    def _ready_resume(self, task: Task, fut: Optional[Future]) -> None:
        """A task whose awaited future completed: resumed from the ready
        deque in completion order, inline, with no event allocation."""
        self._seq += 1
        self._ready.append((self._seq, task, fut))

    def _ready_start(self, task: Task) -> None:
        """First step of a freshly spawned task."""
        self._seq += 1
        self._ready.append((self._seq, task, None))

    def _push_entry(self, t: float, entry: tuple) -> None:
        """Generic insert: bucket when inside the window, far heap beyond,
        window rebuild when behind it."""
        self._cal_dirty = True
        if t < self._limit:
            if t < self._base:
                # Possible only after an idle-time window rotation or a
                # run(until=...) jump; rebuild the window around t.
                self._rebase(t)
            idx = int((t - self._base) * self._inv_width)
            if idx >= _NBUCKETS:
                idx = _NBUCKETS - 1
            if idx < self._cursor:
                self._cursor = idx
            heappush(self._buckets[idx], entry)
            self._bucket_count += 1
        else:
            heappush(self._far, entry)
            if t > self._far_max:
                self._far_max = t

    def create_future(self, label: str = "") -> Future:
        return Future(label=label)

    # -- tasks -----------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Task:
        """Start a kernel task running the given generator."""
        self.tasks_spawned += 1
        task = Task(self, gen, name=name)
        self._ready_start(task)
        return task

    # -- calendar internals ----------------------------------------------

    def _rebase(self, anchor: float) -> None:
        """Rebuild the calendar window to start at ``anchor`` (which must
        not exceed any queued entry's time) using the current width."""
        entries: list = []
        for bucket in self._buckets:
            entries.extend(bucket)
            del bucket[:]
        entries.extend(self._far)
        del self._far[:]
        self._bucket_count = 0
        self._cursor = 0
        self._base = anchor
        self._limit = anchor + _NBUCKETS * self._width
        inv = self._inv_width
        buckets = self._buckets
        far = self._far
        for entry in entries:
            t = entry[0]
            if t < self._limit:
                idx = int((t - anchor) * inv)
                if idx >= _NBUCKETS:
                    idx = _NBUCKETS - 1
                heappush(buckets[idx], entry)
                self._bucket_count += 1
            else:
                heappush(far, entry)
                if t > self._far_max:
                    self._far_max = t

    def _purge(self) -> None:
        """Compact the calendar: drop every cancelled entry in one linear
        sweep and re-bucket the survivors.  Lazy deletion pays one
        expensive heappop per tombstone; once tombstones rival the live
        population (watchdog-heavy workloads cancel most of what they
        arm), a single O(n) sweep is far cheaper than n deep pops.

        The rebuild reuses the rotation width policy, so a population
        first bucketed under a stale width (a dense far-future cluster
        pushed while the window was still coarse) comes out spread across
        the whole bucket array instead of piled into a few deep heaps."""
        live: list = []
        for bucket in self._buckets:
            if bucket:
                live.extend(e for e in bucket
                            if not (e[2].__class__ is _Event
                                    and e[2].cancelled))
                del bucket[:]
        far = self._far
        if far:
            live.extend(e for e in far
                        if not (e[2].__class__ is _Event and e[2].cancelled))
            del far[:]
        self._cursor = 0
        self._discards = 0
        self._cal_dirty = True
        if not live:
            self._bucket_count = 0
            return
        base = min(live)[0]
        span = max(live)[0] - base
        width = span * (2.0 / (_NBUCKETS - 1))
        if width < 1e-9:
            width = 1e-9
        self._width = width
        self._inv_width = inv = 1.0 / width
        self._base = base
        self._limit = base + _NBUCKETS * width
        buckets = self._buckets
        for entry in live:
            idx = int((entry[0] - base) * inv)
            if idx >= _NBUCKETS:
                idx = _NBUCKETS - 1
            heappush(buckets[idx], entry)
        self._bucket_count = len(live)

    def _maybe_purge(self) -> None:
        """Purge when one-by-one discards since the last sweep exceed a
        sixteenth of the queued population (amortized O(1) per tombstone:
        a sweep touches each entry once at C speed, while every skipped
        discard saves a deep Python-level heappop)."""
        if self._discards > 4096 and \
                self._discards << 4 > self._bucket_count + len(self._far):
            self._purge()

    def _cal_peek(self):
        """Earliest live entry among buckets + far heap, or None.
        Discards tombstones; advances the cursor past empty buckets;
        never rotates the window (rotation happens on take)."""
        if self._discards > 4096:
            self._maybe_purge()
        count = self._bucket_count
        if count:
            buckets = self._buckets
            cursor = self._cursor
            while cursor < _NBUCKETS:
                bucket = buckets[cursor]
                while bucket:
                    head = bucket[0]
                    o = head[2]
                    if o.__class__ is _Event and o.cancelled:
                        heappop(bucket)
                        count -= 1
                        self._discards += 1
                    else:
                        self._cursor = cursor
                        self._bucket_count = count
                        return head
                cursor += 1
            self._cursor = cursor
            self._bucket_count = count
        far = self._far
        while far:
            head = far[0]
            o = head[2]
            if o.__class__ is _Event and o.cancelled:
                heappop(far)
                self._discards += 1
            else:
                return head
        return None

    def _cal_take(self, head: Optional[tuple] = None) -> Optional[tuple]:
        """Pop the earliest live calendar entry (tombstones discarded).
        Rotates the window forward when only far-future entries remain.
        Callers that already peeked pass the head to skip the re-scan."""
        self._cal_dirty = True
        if head is None:
            head = self._cal_peek()
            if head is None:
                return None
        if self._bucket_count:
            bucket = self._buckets[self._cursor]
            if bucket and bucket[0] is head:
                heappop(bucket)
                self._bucket_count -= 1
                return head
        # Head lives in the far heap: rotate the window to it.  The width
        # adapts so the window spans the whole overflow — the far heap
        # empties completely, every future push lands directly in a bucket,
        # and no entry is double-handled through the far heap twice.  Deep
        # buckets are harmless (their heaps compare tuples in C); the
        # expensive pattern is far-heap churn, so the window only ever
        # grows to cover the observed horizon, never force-shrinks.
        base = head[0]
        # Width covers TWICE the observed overflow span: entries scheduled
        # near the end of a window pass (a horizon of ~span ahead of a
        # clock that has itself advanced ~span) still land in buckets
        # instead of churning through the far heap every pass.
        span = self._far_max - base
        width = span * (2.0 / (_NBUCKETS - 1))
        if width < 1e-9:
            width = 1e-9
        self._width = width
        self._inv_width = inv = 1.0 / width
        self._base = base
        self._limit = limit = base + _NBUCKETS * width
        self._cursor = 0
        far = self._far
        buckets = self._buckets
        count = self._bucket_count
        # limit exceeds _far_max by construction, so the whole far heap
        # drains every rotation: scan it linearly (heap order is irrelevant
        # for bucket placement), drop tombstones, and clear — no per-entry
        # heappop against a deep heap.
        for entry in far:
            if entry is head:
                continue               # the caller fires the head directly
            o = entry[2]
            if o.__class__ is _Event and o.cancelled:
                continue               # drop tombstones instead of moving them
            idx = int((entry[0] - base) * inv)
            if idx >= _NBUCKETS:
                idx = _NBUCKETS - 1
            heappush(buckets[idx], entry)
            count += 1
        del far[:]
        self._bucket_count = count
        return head

    # -- running ---------------------------------------------------------

    def _resume(self, task: Task, fut: Optional[Future]) -> None:
        """Advance a task's generator one step, inline.

        This replaces the old ``_step_send`` path for the two hot resume
        shapes (sleep timers and completed futures); semantics — finished
        and cancelled checks, current_task bookkeeping, StopIteration and
        failure handling — mirror ``Task._step_send`` exactly.
        """
        done = task.done
        if done._state is not _PENDING:
            return                     # late fire on a finished task: no-op
        if fut is None:
            value = None
        else:
            exc = fut._exc
            if exc is not None:
                task._step_throw(exc)  # rare path: seed code, same order
                return
            value = fut._value
        self.current_task = task
        try:
            y = task.gen.send(value)
        except StopIteration as stop:
            done.resolve(stop.value)
            self.current_task = None
            return
        except BaseException as e:  # noqa: BLE001 - failure is data
            done.fail(e)
            self.current_task = None
            return
        self.current_task = None
        if task._cancelled:
            # A cancel raced with this step; the throw is already queued.
            return
        c = y.__class__
        if c is float:
            self._schedule_timer(y, task)
        elif c is Future:
            task._waiting_on = y
            if y._state is _PENDING:
                y._callbacks.append(task._future_fired)
            else:
                task._future_fired(y)
        elif c is int:
            self._schedule_timer(float(y), task)
        else:
            task._handle_yield(y)      # subclasses, Task joins, bare yield

    def step(self) -> bool:
        """Process the next entry.  Returns False when the queue is empty
        and the idle hooks (if any) scheduled nothing new."""
        while True:
            ready = self._ready
            h = None
            while ready:
                h = ready[0]
                if h.__class__ is tuple or not h.cancelled:
                    break
                ready.popleft()
                h = None
            if h is not None:
                # Ready entries sit at the current clock; only a calendar
                # entry at the same instant with a smaller seq beats them.
                if self._bucket_count or self._far:
                    cal = self._cal_peek()
                    if cal is not None and cal[0] == self.now and cal[1] < \
                            (h[0] if h.__class__ is tuple else h.seq):
                        self._cal_take(cal)
                        self._fire_entry(cal)
                        return True
                ready.popleft()
                self.events_processed += 1
                if h.__class__ is tuple:
                    self._resume(h[1], h[2])
                else:
                    fn = h.fn
                    args = h.args
                    if h.recyclable:
                        self._free.append(h)
                    fn(*args)
                return True
            entry = self._cal_peek()
            if entry is not None:
                self._cal_take(entry)
                self._fire_entry(entry)
                return True
            if not self.fire_idle_hooks():
                return False

    def _fire_entry(self, entry: tuple) -> None:
        """Advance the clock to a calendar entry and execute it."""
        t = entry[0]
        if t != self.now:
            self.now = t
        self.events_processed += 1
        o = entry[2]
        c = o.__class__
        if c is Task:
            self._resume(o, None)
        elif c is _Event:
            o.fn(*o.args)
        else:
            o(*entry[3])

    def fire_idle_hooks(self) -> bool:
        """Run the idle hooks if the queue is truly empty.  Returns True
        when a hook scheduled new work (so stepping should continue)."""
        if not self.idle_hooks or self._peek_time() != _INF:
            return False
        for hook in list(self.idle_hooks):
            hook()
        return self._peek_time() != _INF

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` passes, or the budget ends.

        ``max_events`` is charged on *processed* events (the
        ``events_processed`` delta), so draining tombstones from a
        cancelled-event storm or firing idle hooks never eats budget."""
        if max_events is None:
            # No budget to meter: ride the fused hot loop.
            horizon = _INF if until is None else until
            while True:
                self._spin(horizon)
                if self._peek_time() != _INF:
                    break              # stopped at the horizon, not empty
                if not self.fire_idle_hooks():
                    break
            if until is not None and until > self.now:
                self.now = until
            return
        remaining = max_events
        while True:
            while True:
                t = self._peek_time()
                if t == _INF:
                    break
                if until is not None and t > until:
                    self.now = until
                    return
                if remaining is not None:
                    if remaining <= 0:
                        return
                    before = self.events_processed
                    self.step()
                    remaining -= self.events_processed - before
                else:
                    self.step()
            if not self.fire_idle_hooks():
                break
        if until is not None and until > self.now:
            self.now = until

    def drain(self, horizon: float) -> None:
        """Process every entry with time ≤ ``horizon`` (the settle loop's
        hot inner loop).  Returns with the clock unchanged past the last
        fired entry; idle hooks are the caller's business
        (:meth:`LocusCluster.settle`)."""
        self._spin(horizon)

    def _spin(self, horizon: float) -> None:
        """The fused hot loop: ready sweep, calendar peek, take and fire in
        one frame with hoisted locals.  Fires every entry with time ≤
        ``horizon``; semantically identical to calling :meth:`step` while
        :meth:`_peek_time` ≤ horizon, minus the per-event call frames.

        Mutable scheduler state (``_cursor``, ``_bucket_count``, ``now``…)
        stays on ``self``: every fired callback may push new entries.  Only
        container identities (stable across rotations and rebases) and
        C functions are hoisted.
        """
        ready = self._ready
        buckets = self._buckets
        far = self._far
        free = self._free
        pop = heappop
        popleft = ready.popleft
        cal = None            # cached calendar head (with its bucket)
        cal0 = cal1 = 0.0     # its unpacked (time, seq)
        calev = None          # its _Event, when cancellable
        bucket = None
        while True:
            # -- ready sweep (tombstone discard) ------------------------
            h = None
            while ready:
                h = ready[0]
                if h.__class__ is tuple or not h.cancelled:
                    break
                popleft()
                h = None
            # -- calendar head: cached unless a push/take dirtied it ----
            if self._cal_dirty or cal is None or \
                    (calev is not None and calev.cancelled):
                if self._discards > 4096:
                    self._maybe_purge()
                self._cal_dirty = False
                cal = None
                count = self._bucket_count
                if count:
                    cursor = self._cursor
                    while cursor < _NBUCKETS:
                        bucket = buckets[cursor]
                        while bucket:
                            cal = bucket[0]
                            o = cal[2]
                            if o.__class__ is _Event and o.cancelled:
                                pop(bucket)
                                count -= 1
                                self._discards += 1
                                cal = None
                            else:
                                break
                        if cal is not None:
                            break
                        cursor += 1
                    self._cursor = cursor
                    self._bucket_count = count
                if cal is None:
                    while far:
                        cal = far[0]
                        o = cal[2]
                        if o.__class__ is _Event and o.cancelled:
                            pop(far)
                            self._discards += 1
                            cal = None
                        else:
                            break
                    bucket = None
                if cal is not None:
                    cal0 = cal[0]
                    cal1 = cal[1]
                    o = cal[2]
                    calev = o if o.__class__ is _Event else None
            # -- choose: ready head vs calendar head --------------------
            if h is not None:
                # Ready entries sit at the current clock (≤ horizon); only
                # a same-instant calendar entry with a smaller seq preempts.
                if cal is None or cal0 != self.now or cal1 > \
                        (h[0] if h.__class__ is tuple else h.seq):
                    popleft()
                    self.events_processed += 1
                    if h.__class__ is tuple:
                        self._resume(h[1], h[2])
                    else:
                        fn = h.fn
                        args = h.args
                        if h.recyclable:
                            free.append(h)
                        fn(*args)
                    continue
            elif cal is None or cal0 > horizon:
                return
            # -- take + fire the calendar head --------------------------
            if bucket is not None:
                pop(bucket)
                self._bucket_count -= 1
            else:
                self._cal_take(cal)        # far head: rotate the window
            if cal0 != self.now:
                self.now = cal0
            self.events_processed += 1
            entry = cal
            cal = None                     # consumed: re-peek next round
            o = entry[2]
            c = o.__class__
            if c is Task:
                self._resume(o, None)
            elif c is _Event:
                o.fn(*o.args)
            else:
                o(*entry[3])

    def run_task(self, gen: Generator, name: str = "") -> Any:
        """Spawn a task, drive the simulation until it completes, return its
        result (or raise its failure).

        Raises :class:`DeadlockError` if the event queue drains while the
        task is still blocked — i.e. it waits on something nothing will ever
        deliver.
        """
        task = self.spawn(gen, name=name)
        while not task.finished:
            if not self.step():
                raise DeadlockError(
                    f"event queue drained while {task!r} still blocked")
        return task.result()

    def _peek_time(self) -> float:
        """Timestamp of the earliest live entry (inf when drained)."""
        ready = self._ready
        while ready:
            h = ready[0]
            if h.__class__ is tuple or not h.cancelled:
                # Ready entries always sit at the current clock: the clock
                # only advances through calendar takes, which require an
                # empty ready deque.
                return self.now
            ready.popleft()
        head = self._cal_peek()
        return head[0] if head is not None else _INF

    def pending(self) -> int:
        """True count of scheduled-but-unfired entries, excluding cancelled
        tombstones (``len`` of the old heap counted those)."""
        live = 0
        for h in self._ready:
            if h.__class__ is tuple or not h.cancelled:
                live += 1
        for bucket in self._buckets:
            for entry in bucket:
                o = entry[2]
                if o.__class__ is not _Event or not o.cancelled:
                    live += 1
        for entry in self._far:
            o = entry[2]
            if o.__class__ is not _Event or not o.cancelled:
                live += 1
        return live

    # -- timeouts ---------------------------------------------------------

    def with_timeout(self, fut: Future, timeout: float,
                     label: str = "") -> Future:
        """Return a future that mirrors ``fut`` but fails with
        :class:`SimTimeout` if it does not complete within ``timeout``."""
        out = Future(label=f"timeout:{label or fut.label}")
        ev = self.schedule(
            timeout, lambda: out.fail(SimTimeout(label or fut.label)))

        def _mirror(f: Future) -> None:
            ev.cancel()
            exc = f.exception()
            if exc is not None:
                out.fail(exc)
            else:
                out.resolve(f.result())

        fut.add_callback(_mirror)
        return out

    def sleep_future(self, delay: float) -> Future:
        """A future that resolves after ``delay`` virtual time units."""
        fut = Future(label=f"sleep:{delay}")
        self.schedule(delay, fut.resolve, None)
        return fut

    def gather(self, futures: List[Future], label: str = "gather") -> Future:
        """A future resolving with the list of results once all complete.

        Fails fast with the first failure.
        """
        out = Future(label=label)
        remaining = len(futures)
        results: List[Any] = [None] * len(futures)
        if remaining == 0:
            out.resolve([])
            return out

        def _one(i: int, f: Future) -> None:
            nonlocal remaining
            exc = f.exception()
            if exc is not None:
                out.fail(exc)
                return
            results[i] = f.result()
            remaining -= 1
            if remaining == 0:
                out.resolve(results)

        for i, f in enumerate(futures):
            f.add_callback(lambda fu, i=i: _one(i, fu))
        return out

    def __repr__(self) -> str:
        return (f"<Simulator t={self.now:.3f} queued={self.pending()} "
                f"processed={self.events_processed}>")
