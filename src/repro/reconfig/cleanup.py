"""The cleanup procedure (paper section 5.6).

"Even before the partition has been reestablished, there is considerable
work that each node can do to clean up its internal data structures":

=====================================  =====================================
Resource                               Failure action
=====================================  =====================================
Local file in use remotely (update)    discard pages, close and abort
Local file in use remotely (read)      close
Remote file in use locally (update)    discard pages, error in descriptor
Remote file in use locally (read)      internal close, attempt reopen
Remote fork/exec, remote site fails    return error to caller
Fork/exec, calling site fails          notify process
Distributed transaction                abort related subtransactions
=====================================  =====================================
"""

from __future__ import annotations

from typing import Generator, Set

from repro.errors import ESTALE, FsError, NetworkError


def run_cleanup(site, lost: Set[int], members: Set[int]) -> Generator:
    """Apply the failure-action table at one site after a topology change."""
    # New epoch: CSS peer-version knowledge gathered before this change is
    # suspect (a rejoined site may carry commits nobody here has heard of).
    site.fs.topology_epoch += 1
    yield from _cleanup_fs(site, lost, members)
    if site.proc is not None:
        site.proc.on_partition_change(lost)
    if site.tx is not None:
        yield from site.tx.on_partition_change(lost)
    return None


def _cleanup_fs(site, lost: Set[int], members: Set[int]) -> Generator:
    fs = site.fs
    # --- SS role: local resources in use remotely -----------------------
    for gfile, so in list(fs.ss.items()):
        lost_users = [us for us in set(list(so.users) + list(so.unsync_users))
                      if us in lost]
        for us in lost_users:
            if so.writer == us:
                # "Discard pages, close file and abort updates."
                so.shadow.abort()
                site.cache.invalidate_file(*gfile)
            so.drop_site(us)
        fs._maybe_drop_ss(gfile, so)
    # --- CSS role: forget state for departed sites -----------------------
    for entry in list(fs.css_entries.values()):
        for us in list(entry.readers) + ([entry.writer] if entry.writer
                                         else []):
            if us in lost:
                entry.drop_site(us)
        if not entry.in_use:
            fs.css_entries.pop(entry.gfile, None)
    # --- US role: remote resources in use locally --------------------------
    for handle in list(fs.us.values()):
        if handle.closed or handle.ss_site not in lost:
            continue
        site.cache.invalidate_file(*handle.gfile)
        if handle.mode.writable:
            cost = fs.cost
            if cost.exactly_once_writes and cost.supervise_remote_ops:
                # Write-path failover: the open's uncommitted operations
                # are still staged on the handle, so instead of erroring
                # the descriptor we re-home it to a surviving replica and
                # replay them there.  Falls back to the paper's failure
                # action when no copy survives.
                site.spawn(_rehome_writer(site, handle),
                           name=f"rehome:{handle.gfile}@{site.site_id}")
            else:
                # "Discard pages, set error in local file descriptor."
                handle.attrs["error"] = f"storage site {handle.ss_site} lost"
                handle.dirty = False
                handle.closed = True
                fs.us.pop(handle.hid, None)
        else:
            # "Internal close, attempt to reopen at other site" — the system
            # substitutes a different copy of the same version if possible.
            # Spawned as its own kernel task: reconfiguration re-elects the
            # CSS only after this cleanup returns, and the reopen must be
            # able to wait that re-election out (the handle stays open
            # meanwhile; concurrent reads queue behind the failover).
            site.spawn(_reopen_elsewhere(site, handle),
                       name=f"reopen:{handle.gfile}@{site.site_id}")
    return None
    yield  # pragma: no cover -- keeps this a generator for run_cleanup


def _rehome_writer(site, handle) -> Generator:
    """Exactly-once write failover from reconfiguration cleanup: reopen
    the file at a surviving pack copy and re-stage the handle's
    uncommitted pages / truncate / attribute patches there.  If nothing
    survives the descriptor gets the paper's error instead."""
    fs = site.fs
    try:
        yield from fs._failover_write(handle)
    except (FsError, NetworkError):
        if not handle.closed:
            handle.attrs["error"] = f"storage site {handle.ss_site} lost"
            handle.dirty = False
            handle.closed = True
            fs.us.pop(handle.hid, None)
    return None


def _reopen_elsewhere(site, handle) -> Generator:
    """Substitute another copy under the old handle id, or mark the
    descriptor in error.  The adopt-a-replacement mechanics are shared with
    the mid-call read failover (``FsManager.failover_handle``)."""
    fs = site.fs
    try:
        yield from fs.failover_handle(handle)
    except ESTALE:
        # A copy exists but it is older than what the process was reading;
        # substituting it silently would run time backwards.
        handle.attrs["error"] = "remaining copies are stale"
        handle.closed = True
        fs.us.pop(handle.hid, None)
    except (FsError, NetworkError):
        handle.attrs["error"] = "no surviving copy reachable"
        handle.closed = True
        fs.us.pop(handle.hid, None)
    return None
