"""Dynamic reconfiguration (paper section 5).

Transparency applies to configuration changes themselves: the partition
protocol finds maximal fully-connected sub-networks by iterative
intersection of partition sets; the merge protocol polls the whole network
asynchronously and rebuilds the site and mount tables; the cleanup procedure
applies the section 5.6 failure-action table; and protocol stages are
ordered so passive sites can watch active ones without circular waits.
"""

from repro.reconfig.topology import TopologyService
from repro.reconfig.cleanup import run_cleanup

__all__ = ["TopologyService", "run_cleanup"]
