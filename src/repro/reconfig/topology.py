"""Site tables, the partition protocol, and the merge protocol.

Partition protocol (section 5.4): "the sites must reach a consensus on the
state of the network ... for every a,b in P, Pa == Pb.  This state can be
reached from any initial condition by taking successive intersections of the
partition sets of a group of sites."  A single communications failure must
not split the network into three or more parts, so the active site polls and
intersects iteratively until its partition set and new-partition set agree.

Merge protocol (section 5.5): centralized and asynchronous — "the site
initiating the protocol sends a request for information to all sites in the
network ... after a suitable time, the initiating site gives up on the other
sites, declares a new partition, and broadcasts its composition to the
world."  Contention between concurrent initiators is resolved with the
paper's actsite/fsite arbitration pseudocode; the timeout is two-level (long
while sites believed up by some respondent are still missing, short after).

Synchronization (section 5.7): no ACK lock-stepping; passive sites
periodically check on the active site and restart the protocol if it died.
Waits are ordered by protocol stage then site number, so no circular waits.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Set

from repro.errors import EBUSY, NetworkError, TaskCancelled
from repro.reconfig.cleanup import run_cleanup


class TopologyService:
    """Per-site membership state and reconfiguration protocols."""

    # Protocol stage ordering for the section 5.7 wait rule.
    STAGE_IDLE = 0
    STAGE_PARTITION = 1
    STAGE_MERGE = 2

    def __init__(self, site, n_sites: int):
        self.site = site
        self.all_sites: Set[int] = set(range(n_sites))
        self.partition_set: Set[int] = {site.site_id}
        self.epoch = 0
        self.stage = self.STAGE_IDLE
        self.actsite: Optional[int] = None   # merge arbitration state
        self._merge_task = None
        self._partition_task = None
        self._partition_requested = False
        self._rejoin_requested = False
        # A virtual circuit closed since the last reconciliation: some
        # message — possibly a commit notification — was lost.  The next
        # merge must run filegroup recovery even if the membership tables
        # never changed (transient loss repairs itself before the
        # partition becomes official, but the dropped update does not).
        self._lossy = False
        self.stats = {"partition_runs": 0, "merge_runs": 0,
                      "announces_received": 0}
        reg = site.register_handler
        reg("topo.part_poll", self.h_part_poll)
        reg("topo.part_announce", self.h_part_announce)
        reg("topo.merge_poll", self.h_merge_poll)
        reg("topo.merge_announce", self.h_merge_announce)
        reg("topo.status", self.h_status)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def sid(self) -> int:
        return self.site.site_id

    def boot(self, all_sites: Set[int]) -> None:
        """Cold boot with pre-agreed tables (every site comes up together)."""
        self.all_sites = set(all_sites)
        self.partition_set = set(all_sites)
        self.epoch = 1

    def reset_volatile(self) -> None:
        self.partition_set = {self.sid}
        self.stage = self.STAGE_IDLE
        self.actsite = None
        self._merge_task = None
        self._partition_task = None
        self._partition_requested = False
        self._rejoin_requested = False

    def on_restart(self) -> None:
        self.epoch += 1

    # ------------------------------------------------------------------
    # Failure detection entry point
    # ------------------------------------------------------------------

    def on_circuit_closed(self, peer: int, reason: str) -> None:
        """A virtual circuit failed: the peer must leave the partition."""
        self._lossy = True
        if reason == "removed from partition":
            # The peer deliberately reconfigured without us while still able
            # to deliver the close notification: our membership belief is
            # stale, not the wire.  Running the partition protocol here can
            # livelock — successive intersections only poll sites we already
            # believe in, so a member both halves share keeps answering and
            # being re-included while the halves exclude each other forever.
            # Rejoin through the merge protocol instead (section 5.5), which
            # polls *all* sites and declares a partition from whoever
            # actually answers.
            self._schedule_rejoin(peer)
            return
        if peer not in self.partition_set:
            return
        # React immediately and locally (conservative single-site removal),
        # then run the partition protocol to reach network-wide consensus.
        if not self._partition_requested:
            self._partition_requested = True
            self._partition_task = self.site.spawn(
                self._run_partition(), name=f"partition@{self.sid}")

    def _schedule_rejoin(self, peer: int) -> None:
        if self._rejoin_requested:
            return
        self._rejoin_requested = True
        self.site.spawn(self._rejoin(peer), name=f"rejoin@{self.sid}")

    def _rejoin(self, peer: int) -> Generator:
        """Bounded rejoin loop: while the excluding peer stays physically
        reachable but outside our partition, keep initiating merges — a
        single attempt's polls can all be eaten by a loss burst, and with
        every site in a singleton partition no other protocol ever fires
        again.  Stops as soon as the peer is back in the tables, the
        moment it becomes genuinely unreachable (the heal-time merge owns
        that case), or after a handful of attempts (sustained loss; the
        next close notification re-arms us)."""
        yield 2.0  # debounce a burst of removal notifications
        self._rejoin_requested = False
        for attempt in range(6):
            if not self.site.up or peer in self.partition_set:
                return None
            if not self.site.net.reachable(self.sid, peer):
                return None
            if self.stage == self.STAGE_IDLE:
                self.request_merge()
            yield self.site.cost.poll_timeout * (attempt + 1)
        return None

    def request_merge(self) -> None:
        if self.stage == self.STAGE_IDLE:
            self._merge_task = self.site.spawn(
                self._run_merge(), name=f"merge@{self.sid}")

    # ------------------------------------------------------------------
    # The partition protocol (section 5.4)
    # ------------------------------------------------------------------

    def _run_partition(self) -> Generator:
        yield 1.0  # debounce: batch multiple circuit failures
        self._partition_requested = False
        if self.stage != self.STAGE_IDLE:
            return None
        self.stage = self.STAGE_PARTITION
        self.stats["partition_runs"] += 1
        try:
            p_a: Set[int] = set(self.partition_set)
            p_new: Set[int] = {self.sid}
            while p_a != p_new:
                pending = sorted(p_a - p_new)
                target = pending[0]
                try:
                    reply = yield from self.site.rpc(
                        target, "topo.part_poll",
                        {"active": self.sid},
                        timeout=self.site.cost.poll_timeout)
                    p_target = set(reply["partition"])
                except NetworkError:
                    p_a.discard(target)
                    continue
                except TaskCancelled:
                    raise
                p_a &= p_target
                p_a.add(self.sid)
                p_new = (p_new | {target}) & p_a
                p_new.add(self.sid)
            yield from self._announce_partition(p_a)
        finally:
            self.stage = self.STAGE_IDLE
        return None

    def _announce_partition(self, members: Set[int]) -> Generator:
        self.epoch += 1
        payload = {"members": sorted(members), "epoch": self.epoch,
                   "active": self.sid}
        for s in sorted(members - {self.sid}):
            try:
                yield from self.site.rpc(s, "topo.part_announce", payload,
                                         timeout=self.site.cost.poll_timeout)
            except NetworkError:
                # It will re-run the protocol on its own; consensus converges.
                pass
        yield from self._apply_membership(members)
        return None

    def h_part_poll(self, src: int, p: dict) -> Generator:
        # Stage-and-site ordering (section 5.7): a lower-ordered active site
        # wins; if we are also actively partitioning with a higher site
        # number, our run will discover the result via the announce.
        if self.stage == self.STAGE_PARTITION and src > self.sid:
            raise EBUSY(f"site {self.sid} is the lower-numbered active site")
        self._watch_active(src)
        return {"partition": sorted(self.partition_set)}
        yield  # pragma: no cover

    def h_part_announce(self, src: int, p: dict) -> Generator:
        self.stats["announces_received"] += 1
        self.epoch = max(self.epoch, p["epoch"])
        yield from self._apply_membership(set(p["members"]))
        return None

    def _watch_active(self, active: int) -> None:
        """Passive-site failure detection: check on the active site later;
        restart the protocol if it died before announcing."""
        epoch_then = self.epoch

        def _check() -> None:
            if self.epoch != epoch_then or not self.site.up:
                return  # an announce arrived; nothing to do
            if not self.site.net.reachable(self.sid, active):
                self.on_circuit_closed(active, "active site died")

        self.site.sim.schedule(self.site.cost.watchdog_interval, _check)

    # ------------------------------------------------------------------
    # The merge protocol (section 5.5)
    # ------------------------------------------------------------------

    def _run_merge(self) -> Generator:
        if self.stage != self.STAGE_IDLE:
            return None
        self.stage = self.STAGE_MERGE
        self.actsite = self.sid
        self.stats["merge_runs"] += 1
        try:
            targets = sorted(self.all_sites - {self.sid})
            replies: Dict[int, dict] = {}
            if self.site.cost.merge_sequential_poll:
                # Ablation: "in a large network, sequential polling results
                # in a large additive delay because of the timeouts and
                # retransmissions" (section 5.5).
                for s in targets:
                    reply = yield from self._poll_one(s)
                    if reply:
                        replies[s] = reply
                yield from self._merge_conclude(replies)
                return None
            tasks = {s: self.site.spawn(self._poll_one(s),
                                        name=f"merge-poll:{s}")
                     for s in targets}
            # Two-level timeout: wait long while some site believed up by a
            # respondent has not answered, then only a short grace period.
            deadline = self.site.sim.now + self.site.cost.merge_long_timeout
            while True:
                pending = {s: t for s, t in tasks.items() if not t.finished}
                for s, t in tasks.items():
                    if t.finished and s not in replies:
                        result = t.done.exception() is None and t.result()
                        if result:
                            replies[s] = result
                if not pending:
                    break
                expected = set()
                for r in replies.values():
                    expected |= set(r["partition"])
                expected &= set(pending)
                if not expected:
                    deadline = min(deadline, self.site.sim.now
                                   + self.site.cost.merge_short_timeout)
                if self.site.sim.now >= deadline:
                    break
                yield 5.0
            yield from self._merge_conclude(replies)
        finally:
            self.stage = self.STAGE_IDLE
            self.actsite = None
        return None

    def _merge_conclude(self, replies: Dict[int, dict]) -> Generator:
        """Declare the new partition and broadcast its composition."""
        if self.actsite != self.sid:
            return None  # we ceded to a lower-numbered initiator
        members = {self.sid} | set(replies)
        lossy = self._lossy or any(r.get("lossy")
                                   for r in replies.values())
        if members == self.partition_set:
            # Membership is unchanged, but circuits closed since the last
            # reconciliation: a lost message may have dropped a commit
            # notification on the floor, leaving a replica silently
            # stale.  Run recovery anyway — it is read-only when every
            # copy already converged.
            if lossy:
                self._lossy = False
                self._recovery_sweep()
            return None  # nothing changed
        max_epoch = max([self.epoch] + [r["epoch"]
                                        for r in replies.values()])
        self.epoch = max_epoch + 1
        payload = {"members": sorted(members), "epoch": self.epoch,
                   "active": self.sid}
        for s in sorted(members - {self.sid}):
            try:
                yield from self.site.rpc(
                    s, "topo.merge_announce", payload,
                    timeout=self.site.cost.poll_timeout)
            except NetworkError:
                pass
        yield from self._apply_membership(members)
        return None

    def _poll_one(self, target: int) -> Generator:
        try:
            reply = yield from self.site.rpc(
                target, "topo.merge_poll", {"fsite": self.sid},
                timeout=self.site.cost.poll_timeout)
            return reply
        except (NetworkError, EBUSY):
            return None

    def h_merge_poll(self, src: int, p: dict) -> Generator:
        """The paper's arbitration pseudocode, verbatim in structure."""
        fsite = p["fsite"]
        if self.stage == self.STAGE_IDLE or self.actsite is None:
            self.actsite = fsite
        elif self.actsite == self.sid:              # we are actively merging
            if fsite < self.sid:
                self.actsite = fsite                # cede to the lower site
                if self._merge_task is not None:
                    self._merge_task.cancel("ceding merge to lower site")
                    self._merge_task = None
                self.stage = self.STAGE_IDLE
            else:
                raise EBUSY("decline to merge")     # it will retry or cede
        else:
            self.actsite = fsite
        self._watch_active(fsite)
        # Report (and hand off) local circuit-loss state: the initiator
        # takes responsibility for running recovery after it concludes.
        lossy, self._lossy = self._lossy, False
        return {"partition": sorted(self.partition_set),
                "epoch": self.epoch, "lossy": lossy}
        yield  # pragma: no cover

    def h_merge_announce(self, src: int, p: dict) -> Generator:
        self.stats["announces_received"] += 1
        self.epoch = max(self.epoch, p["epoch"])
        self.actsite = None
        yield from self._apply_membership(set(p["members"]))
        return None

    def h_status(self, src: int, p: dict) -> Generator:
        return {"stage": self.stage, "epoch": self.epoch,
                "partition": sorted(self.partition_set)}
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # Applying a new membership: cleanup, CSS re-election, recovery
    # ------------------------------------------------------------------

    def _apply_membership(self, members: Set[int]) -> Generator:
        old = set(self.partition_set)
        if members == old:
            # Note: a pending circuit-loss flag is NOT acted on here — a
            # re-announce can arrive mid-disturbance, and a recovery sweep
            # racing live traffic creates avoidable residue.  The flag
            # survives until an explicit merge concludes at quiescence.
            return None
        lost = old - members
        gained = members - old
        lossy = self._lossy
        if gained:
            # Sites joined: the merge-time recovery below accounts for any
            # earlier loss.  On a pure shrink the flag is preserved — the
            # lost message's peer is gone, and the sweep runs when it
            # rejoins.
            self._lossy = False
        self.partition_set = set(members)
        if lost:
            self.site.net.close_circuits_to(
                self.sid, lost, "removed from partition")
        yield from run_cleanup(self.site, lost, members)
        self._reelect_css(members)
        # "Finally, the recovery procedure described in section 4 is run for
        # each filegroup to which it is necessary" — at that filegroup's CSS,
        # whenever sites joined (their packs may hold divergent copies); a
        # pending circuit-loss flag widens the sweep to every local-CSS
        # filegroup (a lost message may have dropped a commit notification
        # for a filegroup whose packs did not change hands).
        if gained and self.site.recovery is not None:
            for gfs, info in self.site.fs.mount.groups.items():
                if self.site.fs.mount.css_for(gfs) == self.sid and \
                        (lossy or set(info.pack_sites) & gained):
                    self.site.recovery.schedule_filegroup(gfs)
                    if self.site.scrub is not None:
                        # Anti-entropy backstop: delayed digest rounds
                        # catch divergence the one-shot sweep races past.
                        self.site.scrub.schedule(gfs)
        return None

    def _recovery_sweep(self) -> None:
        """Schedule filegroup recovery for every filegroup this site
        synchronizes.  Used after a merge that followed circuit loss with
        unchanged membership: the sweep is read-only when every copy
        already converged, and re-seeds any replica whose commit
        notification was lost."""
        if self.site.recovery is None:
            return
        mount = self.site.fs.mount
        for gfs in list(mount.groups):
            if mount.css_for(gfs) == self.sid:
                self.site.recovery.schedule_filegroup(gfs)
                if self.site.scrub is not None:
                    self.site.scrub.schedule(gfs)

    def _reelect_css(self, members: Set[int]) -> None:
        """Select a synchronization site for each filegroup (section 5.6),
        then rebuild its lock table from the partition's open files."""
        mount = self.site.fs.mount
        for gfs in list(mount.groups):
            new_css = mount.elect_css(gfs, members)
            if new_css is None:
                continue
            old_css = mount.css.get(gfs)
            mount.set_css(gfs, new_css)
            if new_css == self.sid and old_css != self.sid:
                self.site.spawn(self._rebuild_css(gfs, members),
                                name=f"css-rebuild:{gfs}@{self.sid}")

    def _rebuild_css(self, gfs: int, members: Set[int]) -> Generator:
        """New CSS reconstructs the lock table "from the information
        remaining in the partition" (section 5.6)."""
        from repro.fs.handles import CssEntry
        fs = self.site.fs
        for s in sorted(members):
            try:
                if s == self.sid:
                    report = yield from fs.h_css_rebuild(
                        self.sid, {"gfs": gfs})
                else:
                    report = yield from self.site.rpc(
                        s, "fs.css_rebuild", {"gfs": gfs},
                        timeout=self.site.cost.poll_timeout)
            except NetworkError:
                continue
            for item in report:
                if item["ss"] not in members:
                    # The open was routed through a storage site that left
                    # the partition.  Its US is closing or substituting the
                    # handle in cleanup; resurrecting the lock would pin
                    # future opens to the departed SS.
                    continue
                gfile = item["gfile"]
                entry = fs.css_entries.get(gfile)
                if entry is None:
                    try:
                        attrs = yield from fs._css_local_attrs(gfile)
                    except Exception:  # noqa: BLE001
                        continue
                    entry = CssEntry(
                        gfile=gfile,
                        storage_sites=list(attrs["storage_sites"]),
                        latest_vv=attrs["version"].copy())
                    fs.css_entries[gfile] = entry
                entry.note_open(item["us"], item["mode"], item["ss"])
        return None
