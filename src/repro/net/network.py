"""Partitionable message transport with virtual circuits.

Physical connectivity (who *can* exchange packets) lives here; logical
partition membership (who each kernel *believes* is up — the site tables of
paper section 5.4) lives in each site's topology service.  The merge protocol
relies on this distinction: it polls sites "thought to be down" and succeeds
once the physical fault heals.

The send path is tiered for throughput: when no fault hook, loss rate,
per-pair extra latency or live tracer is armed — the overwhelmingly common
case in large storms — a message goes from ``send`` to a scheduled delivery
with a handful of dict operations on tuple keys and no intermediate
allocations beyond the delivery event.  Arming any hook falls back to the
full bookkeeping path; both paths charge identical virtual time and record
identical message statistics, so the fast path is observationally invisible.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple  # noqa: F401

from repro.config import CostModel
from repro.errors import SiteDown, Unreachable
from repro.net.message import Message, MsgKind, payload_size
from repro.net.stats import NetStats
from repro.obs.registry import MetricsRegistry
from repro.sim.simulator import Simulator

DeliverFn = Callable[[Message], None]
CircuitClosedFn = Callable[[int, str], None]

Pair = Tuple[int, int]          # canonical (low, high) site pair


def _pair_key(a: int, b: int) -> Pair:
    return (a, b) if a < b else (b, a)


class _Circuit:
    """A virtual circuit between two sites.

    The circuits deliver messages in the order sent; if a message is lost the
    circuit is closed (section 5.1 footnote).  We track only open/closed
    state — ordering is guaranteed because per-pair latency is constant and
    the event queue is FIFO at equal timestamps.
    """

    __slots__ = ("pair", "open")

    def __init__(self, pair: Pair):
        self.pair = pair
        self.open = True


class Network:
    """All sites, their physical connectivity, and in-flight messages."""

    def __init__(self, sim: Simulator, cost: Optional[CostModel] = None):
        self.sim = sim
        self.cost = cost or CostModel()
        self.stats = NetStats()
        self._deliver_fns: Dict[int, DeliverFn] = {}
        self._closed_fns: Dict[int, CircuitClosedFn] = {}
        self._up: Set[int] = set()
        self._group: Dict[int, int] = {}     # site -> physical segment id
        self._circuits: Dict[Pair, _Circuit] = {}
        # Virtual circuits deliver in the order sent (section 5.1): a small
        # message must never overtake a large one on the same circuit.
        self._last_delivery: Dict[tuple, float] = {}
        # Extra one-way latency per (src, dst) pair, for asymmetric topologies.
        self.extra_latency: Dict[tuple, float] = {}
        # Random per-message loss probability.  A lost message closes the
        # virtual circuit (section 5.1 footnote: "If a message is lost, the
        # circuit is closed"), so loss surfaces as failure detection, never
        # as silent reordering.
        self.loss_rate: float = 0.0
        # Fault-engine hooks (repro.faults).  Taps observe every send
        # attempt (message-count triggers); drop filters may claim a message
        # as scripted loss — the circuit closes exactly as for random loss.
        self.taps: List[Callable[[Message], None]] = []
        self.drop_filters: List[Callable[[Message], bool]] = []
        # Flight recorder (repro.obs): the cluster builder attaches the
        # shared tracer; the registry records the wire-time vs queue-wait
        # split per message.  Both are observational only.
        self.tracer = None
        self.metrics = MetricsRegistry("net")
        # Hot-path handles: the wire-time histogram is resolved once, and
        # deliveries go through the slab-recycled scheduling path.
        self._wire_hist = self.metrics.hist("net.wire")

    # -- membership -----------------------------------------------------

    def register_site(self, site_id: int, deliver: DeliverFn,
                      circuit_closed: CircuitClosedFn) -> None:
        if site_id in self._deliver_fns:
            raise ValueError(f"site {site_id} already registered")
        self._deliver_fns[site_id] = deliver
        self._closed_fns[site_id] = circuit_closed
        self._up.add(site_id)
        self._group[site_id] = 0

    @property
    def site_ids(self) -> List[int]:
        return sorted(self._deliver_fns)

    def is_up(self, site_id: int) -> bool:
        return site_id in self._up

    def reachable(self, a: int, b: int) -> bool:
        """Physical reachability: both up and on the same segment."""
        if a == b:
            return a in self._up
        return (a in self._up and b in self._up
                and self._group.get(a) == self._group.get(b))

    # -- topology control (test/benchmark harness API) -------------------

    def set_partitions(self, groups: Iterable[Iterable[int]]) -> None:
        """Physically split the network into the given segments.

        Sites not mentioned keep their current segment.  Every previously
        reachable pair that the split separates is notified at both ends
        (kernels notice broken connectivity promptly: LOCUS sites exchange
        traffic constantly, so a break surfaces as a failed circuit).
        """
        old_pairs = self._reachable_pairs()
        for gid, members in enumerate(groups, start=1 + max(
                self._group.values(), default=0)):
            for site in members:
                if site not in self._deliver_fns:
                    raise ValueError(f"unknown site {site}")
                self._group[site] = gid
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant("net.partition", attrs={
                "groups": sorted(sorted(g) for g in
                                 self._segment_members().values())})
        self._notify_broken(old_pairs, "network partitioned")

    def heal(self) -> None:
        """Rejoin every site onto one physical segment (cable repaired).

        Kernels do not learn about this directly — the merge protocol
        discovers it by polling (section 5.5).
        """
        for site in self._group:
            self._group[site] = 0
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant("net.heal")

    def _segment_members(self) -> Dict[int, list]:
        members: Dict[int, list] = {}
        for site, gid in self._group.items():
            members.setdefault(gid, []).append(site)
        return members

    def fail_site(self, site_id: int) -> None:
        """Crash a site: it stops receiving and all its circuits close."""
        old_pairs = self._reachable_pairs()
        self._up.discard(site_id)
        self._notify_broken(old_pairs, f"site {site_id} failed")

    def restore_site(self, site_id: int) -> None:
        """Power the site back on (its storage survived the crash)."""
        if site_id not in self._deliver_fns:
            raise ValueError(f"unknown site {site_id}")
        self._up.add(site_id)

    # -- sending ----------------------------------------------------------

    def latency(self, src: int, dst: int, size: int) -> float:
        return (self.cost.message_delay(size)
                + self.extra_latency.get((src, dst), 0.0))

    def send(self, src: int, dst: int, msg: Message) -> None:
        """Send a message over the (auto-opened) virtual circuit.

        Raises :class:`Unreachable` immediately when no circuit can be opened
        — this models the sender-side circuit failure the kernel would see.
        """
        if src == dst:
            raise ValueError("local operations must not use the network")
        up = self._up
        if src not in up:
            raise SiteDown(src)
        if src != dst and not (dst in up
                               and self._group[src] == self._group[dst]):
            raise Unreachable(src, dst)
        circuit = self._circuits.get((src, dst) if src < dst else (dst, src))
        if circuit is None:
            self._ensure_circuit(src, dst)
        elif not circuit.open:
            circuit.open = True
            self.stats.circuits_opened += 1
        stats = self.stats
        key = msg.stat_key()
        stats.sent[key] += 1
        stats.bytes_sent[key] += msg.size
        if (self.taps or self.drop_filters or self.loss_rate
                or self.extra_latency
                or (self.tracer is not None and self.tracer.enabled)):
            self._send_hooked(src, dst, msg)
            return
        # Fast path: no fault hook, loss, asymmetric latency or live tracer
        # armed — one dict-free dispatch to the delivery event.  Virtual
        # time and statistics are identical to the hooked path.
        wire = self.cost.message_delay(msg.size)
        arrival = self.sim.now + wire
        dkey = (src, dst)
        last = self._last_delivery
        floor = last.get(dkey)
        if floor is not None and arrival <= floor:
            queue_wait = floor + 1e-9 - arrival
            arrival = floor + 1e-9      # FIFO: queue behind the predecessor
            self.metrics.observe("net.queue_wait", queue_wait)
        last[dkey] = arrival
        self._wire_hist.observe(wire)
        self.sim._schedule_recycled(arrival - self.sim.now,
                                    self._deliver, (msg,))

    def _send_hooked(self, src: int, dst: int, msg: Message) -> None:
        """Full-bookkeeping send: fault taps, scripted and random loss,
        asymmetric latency, and flight-recorder queue-wait events."""
        for tap in self.taps:
            tap(msg)
        if self.drop_filters and any(f(msg) for f in self.drop_filters):
            self.stats.dropped += 1
            self._close_circuit((src, dst), "message lost (fault)")
            return
        if self.loss_rate and self.sim.rng.random() < self.loss_rate:
            self.stats.dropped += 1
            self._close_circuit((src, dst), "message lost")
            return
        wire = self.latency(src, dst, msg.size)
        arrival = self.sim.now + wire
        key = (src, dst)
        floor = self._last_delivery.get(key, 0.0)
        queue_wait = 0.0
        if arrival <= floor:
            arrival = floor + 1e-9      # FIFO: queue behind the predecessor
            queue_wait = arrival - self.sim.now - wire
        self._last_delivery[key] = arrival
        # Flight recorder: split transit into pure wire time and the FIFO
        # queue wait behind circuit predecessors (observational only).
        self._wire_hist.observe(wire)
        if queue_wait > 0.0:
            self.metrics.observe("net.queue_wait", queue_wait)
            if self.tracer is not None and msg.trace_ctx is not None:
                self.tracer.event_on(msg.trace_ctx, "queue_wait",
                                     {"delay": queue_wait,
                                      "mtype": msg.stat_key()})
        self.sim._schedule_recycled(arrival - self.sim.now,
                                    self._deliver, (msg,))

    def _deliver(self, msg: Message) -> None:
        """Delivery-time reachability check: a break in flight drops the
        message and closes the circuit, which is how kernels detect the
        failure (lost message => closed circuit)."""
        src = msg.src
        dst = msg.dst
        up = self._up
        if src not in up or dst not in up \
                or self._group[src] != self._group[dst]:
            self.stats.dropped += 1
            self._close_circuit((src, dst), "message lost in flight")
            return
        self.stats.delivered += 1
        self._deliver_fns[dst](msg)

    def make_message(self, src: int, dst: int, mtype: str, kind: MsgKind,
                     payload, reqid: int = 0, trace_ctx=None) -> Message:
        return Message(src, dst, mtype, kind, payload,
                       payload_size(payload), reqid, trace_ctx)

    # -- circuits ----------------------------------------------------------

    def _ensure_circuit(self, a: int, b: int) -> _Circuit:
        pair = _pair_key(a, b)
        circuit = self._circuits.get(pair)
        if circuit is None:
            circuit = _Circuit(pair)
            self._circuits[pair] = circuit
            self.stats.circuits_opened += 1
        return circuit

    def _reachable_pairs(self) -> Set[Pair]:
        up = sorted(self._up)
        return {(a, b)
                for i, a in enumerate(up) for b in up[i + 1:]
                if self.reachable(a, b)}

    def _notify_broken(self, old_pairs: Set[Pair], reason: str) -> None:
        for pair in old_pairs:
            a, b = tuple(pair)
            if self.reachable(a, b):
                continue
            circuit = self._circuits.get(_pair_key(a, b))
            if circuit is not None and circuit.open:
                self._close_circuit(pair, reason)
                continue
            # No circuit existed; still tell both live endpoints the peer
            # became unreachable so the partition protocol runs.
            for end, peer in ((a, b), (b, a)):
                if end in self._up:
                    notify = self._closed_fns.get(end)
                    if notify is not None:
                        self.sim.call_soon(notify, peer, reason)

    def _close_circuit(self, pair: Iterable[int], reason: str) -> None:
        """Close the circuit between a site pair (any 2-iterable — ordered
        tuple or the historical frozenset — is accepted)."""
        a, b = tuple(pair)
        key = _pair_key(a, b)
        circuit = self._circuits.get(key)
        if circuit is None or not circuit.open:
            return
        circuit.open = False
        self.stats.circuits_closed += 1
        self.metrics.count("net.circuits_closed")
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant("net.circuit_closed",
                                attrs={"pair": list(key),
                                       "reason": reason})
        # The FIFO floor only orders messages within one circuit incarnation;
        # dropping it here keeps _last_delivery from growing without bound
        # across partitions and crashes (a fresh circuit starts fresh).
        self._last_delivery.pop((a, b), None)
        self._last_delivery.pop((b, a), None)
        for end, peer in ((a, b), (b, a)):
            if end in self._up:
                notify = self._closed_fns.get(end)
                if notify is not None:
                    # Notify asynchronously: kernels react on their own clock.
                    self.sim.call_soon(notify, peer, reason)

    def close_circuits_to(self, site_id: int, peers: Iterable[int],
                          reason: str) -> None:
        """Explicitly close circuits (logical partition removal, section 5.1:
        "removal from a partition closes all relevant virtual circuits")."""
        for peer in peers:
            self._close_circuit((site_id, peer), reason)
