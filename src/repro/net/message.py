"""Wire messages exchanged between LOCUS kernels."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any


class MsgKind(enum.Enum):
    REQUEST = "req"       # expects a RESPONSE with the same reqid
    RESPONSE = "resp"
    ONEWAY = "oneway"     # low-level ack only; no protocol-level response


_msg_ids = itertools.count(1)


@dataclass
class Message:
    """One kernel-to-kernel message.

    ``mtype`` names the protocol operation (e.g. ``fs.open``); statistics are
    aggregated by mtype so benchmarks can assert on the paper's message
    counts (Figure 2: the general open is exactly four messages).
    """

    src: int
    dst: int
    mtype: str
    kind: MsgKind
    payload: Any = None
    size: int = 0                     # payload bytes for the wire-time model
    reqid: int = 0                    # request/response correlation
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    # Flight-recorder context (trace_id, span_id) of the span this message
    # serves.  Rides the header, not the payload: excluded from the
    # wire-size model so message counts and virtual time are identical
    # with tracing on or off.
    trace_ctx: Any = None

    def stat_key(self) -> str:
        """Aggregation key: responses are counted under ``mtype.resp``."""
        if self.kind is MsgKind.RESPONSE:
            return f"{self.mtype}.resp"
        return self.mtype

    def __repr__(self) -> str:
        return (f"<Msg #{self.msg_id} {self.src}->{self.dst} {self.mtype} "
                f"{self.kind.value} {self.size}B>")


def payload_size(payload: Any) -> int:
    """Rough serialized size of a payload for the wire-time model.

    Counts bytes/str content at face value, containers structurally, and
    charges a small fixed size for scalars.  This only drives wire *time*;
    protocol correctness never depends on it.
    """
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, dict):
        # "__wire_bytes__" stands in for bulk data (e.g. a process image
        # shipped by remote fork) without materializing the bytes.
        extra = payload.get("__wire_bytes__", 0)
        return extra + sum(payload_size(k) + payload_size(v)
                           for k, v in payload.items()
                           if k != "__wire_bytes__")
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_size(v) for v in payload)
    # Fallback for small structured objects (version vectors expose to_dict).
    to_dict = getattr(payload, "to_dict", None)
    if callable(to_dict):
        return payload_size(to_dict())
    return 16
