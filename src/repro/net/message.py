"""Wire messages exchanged between LOCUS kernels."""

from __future__ import annotations

import enum
import sys
from typing import Any, Dict


class MsgKind(enum.Enum):
    REQUEST = "req"       # expects a RESPONSE with the same reqid
    RESPONSE = "resp"
    ONEWAY = "oneway"     # low-level ack only; no protocol-level response


_next_msg_id = 0

# mtype -> "mtype.resp", built lazily.  The set of protocol operations is
# small and static, so every response after the first reuses one interned
# string instead of formatting a new one per message.
_resp_keys: Dict[str, str] = {}


class Message:
    """One kernel-to-kernel message.

    ``mtype`` names the protocol operation (e.g. ``fs.open``); statistics are
    aggregated by mtype so benchmarks can assert on the paper's message
    counts (Figure 2: the general open is exactly four messages).

    A plain ``__slots__`` class rather than a dataclass: messages are the
    single most-allocated object in a storm and the dataclass ``__init__``
    (keyword plumbing plus a default_factory call) showed up in profiles.
    """

    __slots__ = ("src", "dst", "mtype", "kind", "payload", "size",
                 "reqid", "msg_id", "trace_ctx")

    def __init__(self, src: int, dst: int, mtype: str, kind: MsgKind,
                 payload: Any = None, size: int = 0, reqid: int = 0,
                 trace_ctx: Any = None):
        global _next_msg_id
        _next_msg_id += 1
        self.src = src
        self.dst = dst
        self.mtype = mtype
        self.kind = kind
        self.payload = payload
        self.size = size                  # payload bytes for wire-time model
        self.reqid = reqid                # request/response correlation
        self.msg_id = _next_msg_id
        # Flight-recorder context (trace_id, span_id) of the span this
        # message serves.  Rides the header, not the payload: excluded from
        # the wire-size model so message counts and virtual time are
        # identical with tracing on or off.
        self.trace_ctx = trace_ctx

    def stat_key(self) -> str:
        """Aggregation key: responses are counted under ``mtype.resp``."""
        if self.kind is MsgKind.RESPONSE:
            key = _resp_keys.get(self.mtype)
            if key is None:
                key = _resp_keys[self.mtype] = sys.intern(
                    self.mtype + ".resp")
            return key
        return self.mtype

    def __repr__(self) -> str:
        return (f"<Msg #{self.msg_id} {self.src}->{self.dst} {self.mtype} "
                f"{self.kind.value} {self.size}B>")


def payload_size(payload: Any) -> int:
    """Rough serialized size of a payload for the wire-time model.

    Counts bytes/str content at face value, containers structurally, and
    charges a small fixed size for scalars.  This only drives wire *time*;
    protocol correctness never depends on it.

    Exact-type checks cover the overwhelmingly common payload shapes
    without the isinstance chain; subclasses (and bool, which must charge 1
    rather than int's 8) fall through to the original chain below and
    produce identical sizes.
    """
    tp = type(payload)
    if payload is None:
        return 0
    if tp is str or tp is bytes:
        return len(payload)
    if tp is int or tp is float:
        return 8
    if tp is dict:
        # "__wire_bytes__" stands in for bulk data (e.g. a process image
        # shipped by remote fork) without materializing the bytes.  Other
        # "_"-prefixed keys ("_stamp", "_ack") are header-riding metadata
        # like trace_ctx: excluded from the wire-size model so message
        # timing is identical with exactly-once stamping on or off.
        total = payload.get("__wire_bytes__", 0)
        for k, v in payload.items():
            if type(k) is not str or not k.startswith("_"):
                total += payload_size(k) + payload_size(v)
        return total
    if tp is list or tp is tuple:
        total = 0
        for v in payload:
            total += payload_size(v)
        return total
    return _payload_size_slow(payload)


def _payload_size_slow(payload: Any) -> int:
    """Original isinstance chain, kept for subclasses and rare shapes."""
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, dict):
        extra = payload.get("__wire_bytes__", 0)
        return extra + sum(payload_size(k) + payload_size(v)
                           for k, v in payload.items()
                           if not (isinstance(k, str) and k.startswith("_")))
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_size(v) for v in payload)
    # Fallback for small structured objects (version vectors expose to_dict).
    to_dict = getattr(payload, "to_dict", None)
    if callable(to_dict):
        return payload_size(to_dict())
    return 16
