"""Network statistics: message counts and bytes, aggregated by message type.

The reproduction benchmarks assert on these counters: Figure 2's open
protocol, the two-message network read, the one-message write, and the
four-message close are all verified by counting.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class NetStats:
    sent: Counter = field(default_factory=Counter)          # mtype -> messages
    bytes_sent: Counter = field(default_factory=Counter)    # mtype -> bytes
    # mtype -> data pages carried (batched transfers move several per
    # message; pages/messages is the batching-effectiveness metric).
    pages: Counter = field(default_factory=Counter)
    delivered: int = 0
    dropped: int = 0
    circuits_opened: int = 0
    circuits_closed: int = 0

    @property
    def total_messages(self) -> int:
        return sum(self.sent.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())

    def record_send(self, stat_key: str, size: int) -> None:
        self.sent[stat_key] += 1
        self.bytes_sent[stat_key] += size

    def record_pages(self, stat_key: str, n: int) -> None:
        """Count ``n`` data pages served over the wire for ``stat_key``."""
        self.pages[stat_key] += n

    def pages_per_message(self, stat_key: str) -> float:
        msgs = self.sent.get(stat_key, 0)
        return self.pages.get(stat_key, 0) / msgs if msgs else 0.0

    def snapshot(self) -> "StatsSnapshot":
        return StatsSnapshot(
            sent=Counter(self.sent),
            bytes_sent=Counter(self.bytes_sent),
            pages=Counter(self.pages),
            delivered=self.delivered,
            dropped=self.dropped,
            circuits_opened=self.circuits_opened,
            circuits_closed=self.circuits_closed,
        )

    def by_prefix(self, prefix: str) -> Dict[str, int]:
        """Message counts for all mtypes starting with ``prefix``."""
        return {k: v for k, v in self.sent.items() if k.startswith(prefix)}


@dataclass
class StatsSnapshot:
    sent: Counter
    bytes_sent: Counter
    delivered: int
    dropped: int
    pages: Counter = field(default_factory=Counter)
    circuits_opened: int = 0
    circuits_closed: int = 0

    def diff(self, later: "StatsSnapshot") -> "StatsSnapshot":
        """Counters accumulated between ``self`` (earlier) and ``later``."""
        return StatsSnapshot(
            sent=Counter({k: v - self.sent.get(k, 0)
                          for k, v in later.sent.items()
                          if v - self.sent.get(k, 0)}),
            bytes_sent=Counter({k: v - self.bytes_sent.get(k, 0)
                                for k, v in later.bytes_sent.items()
                                if v - self.bytes_sent.get(k, 0)}),
            pages=Counter({k: v - self.pages.get(k, 0)
                           for k, v in later.pages.items()
                           if v - self.pages.get(k, 0)}),
            delivered=later.delivered - self.delivered,
            dropped=later.dropped - self.dropped,
            circuits_opened=later.circuits_opened - self.circuits_opened,
            circuits_closed=later.circuits_closed - self.circuits_closed,
        )

    @property
    def total_messages(self) -> int:
        return sum(self.sent.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())


class StatsWindow:
    """Context-manager style window over a :class:`NetStats`.

    >>> win = StatsWindow(net.stats)
    >>> ... run protocol ...
    >>> win.close().total_messages
    """

    def __init__(self, stats: NetStats):
        self.stats = stats
        self.start = stats.snapshot()
        self._result: Optional[StatsSnapshot] = None

    def close(self) -> StatsSnapshot:
        if self._result is None:
            self._result = self.start.diff(self.stats.snapshot())
        return self._result
