"""Network substrate: messages, virtual circuits, partitions, statistics.

The paper's low-level protocols are "the lowest level protocols in the
system, except for some retransmission support.  Because multilayered support
and error handling ... is not present, much higher performance has been
achieved" (section 2.3.3).  We model exactly that: messages go site-to-site
over in-order virtual circuits with a latency/bandwidth cost model, and the
network can be physically partitioned.  Closing a virtual circuit aborts the
activity in flight between the two sites (section 5.1), which is how kernels
learn about failures.
"""

from repro.net.message import Message, MsgKind
from repro.net.stats import NetStats
from repro.net.network import Network

__all__ = ["Message", "MsgKind", "NetStats", "Network"]
