"""Exception hierarchy for the LOCUS reproduction.

LOCUS folded most failures into the existing Unix interface (paper section
3.3), so filesystem and process errors carry Unix-style errno names.  Network
and simulation failures get their own branches because kernel code handles
them differently from user-visible errors.
"""

from __future__ import annotations


class LocusError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Simulation substrate errors
# ---------------------------------------------------------------------------

class SimError(LocusError):
    """Base class for simulator-level failures."""


class DeadlockError(SimError):
    """The event queue drained while tasks were still blocked."""


class TaskCancelled(SimError):
    """Raised inside a task's generator when the task is cancelled."""


# ---------------------------------------------------------------------------
# Network errors
# ---------------------------------------------------------------------------

class NetworkError(LocusError):
    """Base class for network-layer failures."""


class SimTimeout(SimError, NetworkError):
    """A timed wait expired before its future resolved.

    Deliberately also a :class:`NetworkError`: a timed-out remote operation
    is indistinguishable from a lost message or a dead peer, so every call
    site that handles communication failure with ``except NetworkError``
    handles timeouts too.  ``tests/test_exception_contract.py`` enforces
    that no kernel code catches SimTimeout separately.
    """


class Unreachable(NetworkError):
    """The destination is not in the sender's partition."""

    def __init__(self, src: int, dst: int):
        super().__init__(f"site {dst} unreachable from site {src}")
        self.src = src
        self.dst = dst


class CircuitClosed(NetworkError):
    """The virtual circuit closed while a reply was outstanding.

    Closing a circuit aborts any ongoing activity between the two sites
    (paper section 5.4 footnote), so pending RPCs fail with this error.
    """

    def __init__(self, peer: int, detail: str = ""):
        super().__init__(f"virtual circuit to site {peer} closed {detail}".rstrip())
        self.peer = peer


class SiteDown(NetworkError):
    """The target site has crashed."""

    def __init__(self, site: int):
        super().__init__(f"site {site} is down")
        self.site = site


# ---------------------------------------------------------------------------
# Filesystem errors (Unix errno flavoured)
# ---------------------------------------------------------------------------

class FsError(LocusError):
    """Base class for filesystem errors; ``errno`` holds the symbolic name."""

    errno = "EIO"

    def __init__(self, detail: str = ""):
        super().__init__(f"{self.errno}: {detail}" if detail else self.errno)
        self.detail = detail


class ENOENT(FsError):
    errno = "ENOENT"


class EEXIST(FsError):
    errno = "EEXIST"


class ENOTDIR(FsError):
    errno = "ENOTDIR"


class EISDIR(FsError):
    errno = "EISDIR"


class ENOTEMPTY(FsError):
    errno = "ENOTEMPTY"


class EACCES(FsError):
    errno = "EACCES"


class EBADF(FsError):
    errno = "EBADF"


class EBUSY(FsError):
    errno = "EBUSY"


class ENOSPC(FsError):
    errno = "ENOSPC"


class EIO(FsError):
    """A physical disk read/write failed at the storage site."""

    errno = "EIO"


class ESTALE(FsError):
    """The copy offered by a storage site is not the latest version."""

    errno = "ESTALE"


class ECONFLICT(FsError):
    """The file has unreconciled divergent copies (paper section 4.6).

    Normal attempts to access a conflicted file fail, although that control
    may be overridden via ``allow_conflict``.
    """

    errno = "ECONFLICT"


class EWOULDCONFLICT(FsError):
    """Writer open refused while the file is queued for reconciliation.

    With exactly-once writes on, the CSS closes the merge conflict window
    by refusing to hand out a write token for a file whose copies still
    await reconciliation after a partition heal; the open is retried under
    supervision until the (concurrently scheduled) merge completes.  The
    refusal happens before any state changes, so it is always retryable.
    """

    errno = "EWOULDCONFLICT"


class EWRITELOST(FsError):
    """Commit refused: the storage site received fewer one-way page
    writes than the using site shipped (a lost write closed the circuit,
    and the commit reopened it).  The SS drops its staged state before
    raising, so the refusal is always retryable: the using site replays
    its retained page images and commits again.
    """

    errno = "EWRITELOST"


class EXDEV(FsError):
    errno = "EXDEV"


class EINVAL(FsError):
    errno = "EINVAL"


class EPIPE(FsError):
    errno = "EPIPE"


class EMFILE(FsError):
    errno = "EMFILE"


class EROFS(FsError):
    errno = "EROFS"


class ENAMETOOLONG(FsError):
    errno = "ENAMETOOLONG"


# ---------------------------------------------------------------------------
# Process errors
# ---------------------------------------------------------------------------

class ProcessError(LocusError):
    """Base class for process-management errors."""


class ESRCH(ProcessError):
    """No such process."""


class ECHILD(ProcessError):
    """No waitable children."""


class RemoteProcessError(ProcessError):
    """A cooperating process's site failed (paper section 3.3).

    Additional information about the nature of the error is deposited in the
    surviving process's structure and interrogated via ``proc_errinfo``.
    """

    def __init__(self, pid: int, site: int, role: str):
        super().__init__(f"{role} process {pid} lost: site {site} failed")
        self.pid = pid
        self.site = site
        self.role = role


# ---------------------------------------------------------------------------
# Transaction errors
# ---------------------------------------------------------------------------

class TxError(LocusError):
    """Base class for transaction failures."""


class TxAborted(TxError):
    """The transaction (or an ancestor) was aborted."""

    def __init__(self, tid: int, reason: str = ""):
        super().__init__(f"transaction {tid} aborted: {reason}" if reason
                         else f"transaction {tid} aborted")
        self.tid = tid
        self.reason = reason


class TxConflict(TxError):
    """A lock request conflicted with another active transaction."""

    def __init__(self, tid: int, holder: int, resource):
        super().__init__(
            f"transaction {tid} blocked by transaction {holder} on {resource}")
        self.tid = tid
        self.holder = holder
        self.resource = resource
