"""Chaos fuzzing: randomized workload+fault scenarios, auto-shrinking.

The loop (``python -m repro.cli fuzz``):

1. :func:`~repro.fuzz.generate.generate_plan` turns a seed into a
   :class:`~repro.fuzz.plan.FuzzPlan` — a replayable JSON scenario
   combining a Zipf-weighted workload schedule with a randomized fault
   schedule;
2. :func:`~repro.fuzz.runner.run_plan` executes it deterministically and
   the :class:`~repro.fuzz.oracle.FuzzOracle` judges the merged end
   state (invariant audit, byte convergence, session guarantees, model
   read-back, liveness);
3. on failure, :func:`~repro.fuzz.shrink.shrink_plan` minimizes the
   scenario splintercat-style and the survivor is committed under
   ``tests/regressions/`` as a permanent ratchet.
"""

from repro.fuzz.generate import generate_plan
from repro.fuzz.oracle import FuzzOracle, FuzzResult, SyntheticOracle
from repro.fuzz.plan import FuzzPlan, WorkloadOp, payload
from repro.fuzz.runner import NamespaceModel, PlanRunner, run_plan
from repro.fuzz.shrink import (ShrinkOutcome, Shrinker, shrink_failing_result,
                               shrink_plan)
from repro.fuzz.soak import SoakStats, soak

__all__ = [
    "FuzzOracle", "FuzzPlan", "FuzzResult", "NamespaceModel",
    "PlanRunner", "ShrinkOutcome", "Shrinker", "SoakStats",
    "SyntheticOracle", "WorkloadOp", "generate_plan", "payload",
    "run_plan", "shrink_failing_result", "shrink_plan", "soak",
]
