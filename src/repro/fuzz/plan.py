"""Fuzz plans: one replayable JSON artifact = workload + faults + topology.

A :class:`FuzzPlan` extends the idea of :class:`repro.faults.FaultPlan`
from "scripted faults" to "scripted *scenario*": it carries the cluster
shape, the initial file tree, a timed schedule of workload operations and
a timed schedule of fault events.  Everything needed to re-run the exact
scenario fits in one JSON document, so a shrunk failing plan committed
under ``tests/regressions/`` is a complete, byte-reproducible bug report.

All times are offsets from ``t0`` — the virtual time at which setup
(tree build + settle) finished — so a plan replays identically even if a
code change shifts how long setup takes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional

from repro.faults.plan import FaultEvent

# Workload operation kinds the runner knows how to execute.
OPS = ("read", "write", "mkdir", "rename", "unlink", "link",
       "readdir", "stat")


def payload(seed: int, tag: int, size: int) -> bytes:
    """Deterministic file content derived from plan fields alone (no RNG
    state needed), so replaying from JSON reproduces every byte."""
    base = (seed * 1000003 + tag * 8191) & 0xFFFFFFFF
    return bytes((base + i * 131) % 256 for i in range(size))


@dataclass
class WorkloadOp:
    """One scheduled syscall.  ``at`` is the offset from t0; ``site`` is
    the issuing (client) site; ``dest`` is the second path for rename and
    link; ``tag``/``size`` derive the write payload."""

    at: float
    site: int
    op: str
    path: str
    dest: Optional[str] = None
    size: int = 0
    tag: int = 0

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown workload op {self.op!r}")

    def to_dict(self) -> dict:
        out = {k: v for k, v in asdict(self).items() if v is not None}
        if self.op != "write":
            out.pop("size", None)
            out.pop("tag", None)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadOp":
        return cls(**data)


@dataclass
class FuzzPlan:
    """A complete randomized scenario, serialisable to one JSON document.

    ``tree_dirs``/``tree_files``/``file_size`` describe the initial tree
    built under ``/w`` before the clock starts; ``ops`` and ``faults``
    fire at their offsets from t0.  ``crashable`` lists the sites fault
    events may take down — client sites (every ``op.site``) must stay
    out of it so the workload drivers survive the storm.
    """

    seed: int = 0
    name: str = "fuzz"
    n_sites: int = 3
    root_pack_sites: Optional[List[int]] = None
    copies: int = 2
    tree_dirs: int = 2
    tree_files: int = 2
    file_size: int = 512
    check_after_heal: bool = True
    # Pinned run digest for committed regression plans: replay compares
    # the run's actual digest against this and fails on any drift (the
    # fault interleaving no longer reproduces what the plan was minimised
    # for).  Optional so legacy plans round-trip unchanged.
    expect_digest: Optional[str] = None
    ops: List[WorkloadOp] = field(default_factory=list)
    faults: List[FaultEvent] = field(default_factory=list)

    # -- derived ---------------------------------------------------------

    def tree_paths(self) -> List[str]:
        return [f"/w/d{d}/f{f}"
                for d in range(self.tree_dirs)
                for f in range(self.tree_files)]

    def span(self) -> float:
        """Last scheduled offset (0.0 for an empty plan)."""
        times = [op.at for op in self.ops] + \
                [ev.at for ev in self.faults if ev.at is not None]
        return max(times) if times else 0.0

    def event_count(self) -> int:
        return len(self.ops) + len(self.faults)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        out = {"seed": self.seed, "name": self.name,
               "n_sites": self.n_sites, "copies": self.copies,
               "tree_dirs": self.tree_dirs, "tree_files": self.tree_files,
               "file_size": self.file_size,
               "check_after_heal": self.check_after_heal,
               "ops": [op.to_dict() for op in self.ops],
               "faults": [ev.to_dict() for ev in self.faults]}
        if self.root_pack_sites is not None:
            out["root_pack_sites"] = list(self.root_pack_sites)
        if self.expect_digest is not None:
            out["expect_digest"] = self.expect_digest
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzPlan":
        return cls(
            seed=data.get("seed", 0), name=data.get("name", "fuzz"),
            n_sites=data.get("n_sites", 3),
            root_pack_sites=data.get("root_pack_sites"),
            copies=data.get("copies", 2),
            tree_dirs=data.get("tree_dirs", 2),
            tree_files=data.get("tree_files", 2),
            file_size=data.get("file_size", 512),
            check_after_heal=data.get("check_after_heal", True),
            expect_digest=data.get("expect_digest"),
            ops=[WorkloadOp.from_dict(o) for o in data.get("ops", [])],
            faults=[FaultEvent.from_dict(e)
                    for e in data.get("faults", [])])

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FuzzPlan":
        return cls.from_dict(json.loads(text))

    def replace(self, **kwargs) -> "FuzzPlan":
        """A copy with fields swapped (shrinker candidates); event lists
        are shallow-copied so candidates never alias each other."""
        clone = FuzzPlan.from_dict(self.to_dict())
        for key, value in kwargs.items():
            setattr(clone, key, value)
        return clone

    def __repr__(self) -> str:
        return (f"<FuzzPlan {self.name!r} seed={self.seed} "
                f"ops={len(self.ops)} faults={len(self.faults)} "
                f"span={self.span():.0f}>")
