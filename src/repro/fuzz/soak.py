"""The soak loop: run seeds until a count or wall-clock budget runs out.

Each iteration is generate → run → judge; a failing iteration is
shrunk (when enabled) and both the original and the minimal plan are
written to the output directory, named by seed, so a CI job can upload
them as artifacts and a developer can replay them byte-for-byte::

    python -m repro.cli fuzz --seed 20260808 --soak 10 --shrink --out x/

Seeds advance ``base_seed, base_seed+1, ...`` so a calendar-date base
seed gives every nightly run a fresh, disjoint, reproducible slice of
scenario space.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.fuzz.generate import generate_plan
from repro.fuzz.runner import run_plan
from repro.fuzz.shrink import shrink_failing_result


@dataclass
class SoakStats:
    runs: int = 0
    ops_executed: int = 0
    fault_events: int = 0
    failed_seeds: List[int] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed_seeds

    def report(self) -> str:
        verdict = "clean" if self.ok else \
            f"FAILURES on seeds {self.failed_seeds}"
        lines = [f"soak: {self.runs} runs, {self.ops_executed} ops, "
                 f"{self.fault_events} fault events in "
                 f"{self.elapsed:.1f}s — {verdict}"]
        lines += [f"  wrote {path}" for path in self.artifacts]
        return "\n".join(lines)


def soak(base_seed: int, runs: Optional[int] = None,
         minutes: Optional[float] = None, n_ops: int = 60,
         n_faults: int = 8, n_sites: int = 3, shrink: bool = True,
         out_dir: Optional[str] = None, oracle=None,
         log: Callable[[str], None] = lambda line: None) -> SoakStats:
    """Run fuzz iterations until ``runs`` or ``minutes`` is exhausted
    (whichever comes first; at least one iteration always runs)."""
    stats = SoakStats()
    started = time.monotonic()
    deadline = None if minutes is None else started + minutes * 60.0
    seed = base_seed
    while True:
        plan = generate_plan(seed, n_ops=n_ops, n_faults=n_faults,
                             n_sites=n_sites)
        result = run_plan(plan, oracle=oracle)
        stats.runs += 1
        stats.ops_executed += len(result.run.oplog)
        stats.fault_events += len(result.run.injector.trace)
        if result.ok:
            log(f"seed {seed}: ok ({len(result.run.oplog)} ops)")
        else:
            stats.failed_seeds.append(seed)
            log(f"seed {seed}: {len(result.violations)} violations")
            for line in result.report().splitlines():
                log(f"  {line}")
            if out_dir is not None:
                stats.artifacts.append(
                    _dump(out_dir, f"fuzz-{seed}.json", plan.to_json()))
            if shrink:
                outcome = shrink_failing_result(result, oracle=oracle)
                log(outcome.report())
                if out_dir is not None:
                    stats.artifacts.append(_dump(
                        out_dir, f"fuzz-{seed}-shrunk.json",
                        outcome.plan.to_json()))
        seed += 1
        if runs is not None and stats.runs >= runs:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        if runs is None and deadline is None:
            break
    stats.elapsed = time.monotonic() - started
    return stats


def _dump(out_dir: str, name: str, text: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, name)
    with open(path, "w") as fh:
        fh.write(text)
    return path
