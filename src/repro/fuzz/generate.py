"""Seeded scenario generator: one integer → one :class:`FuzzPlan`.

Generation randomness is its own ``random.Random(seed)`` — independent of
the simulator RNG the plan's *execution* draws from — so the JSON the
generator emits is a pure function of the seed and the knob values.

Shape of a generated storm:

* client sites (where workload ops issue) and crash targets are disjoint,
  so the drivers survive the storm they are measuring;
* crash/restart and partition/heal always come in pairs, every plan ends
  with all sites up and the network whole — the final audit then judges a
  *merged* store, the paper's §4 claim;
* fault kinds are drawn from a weighted mix of the whole
  :mod:`repro.faults` vocabulary (crashes, partitions, loss bursts,
  latency spikes, disk write errors, scripted protocol-message drops).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.faults.plan import FaultEvent
from repro.fuzz.plan import FuzzPlan, WorkloadOp
from repro.workloads.generators import op_mix_schedule

# Message types worth dropping: each loss lands mid-protocol on a
# different layer (page reads, the open handshake, the commit fan-out).
DROPPABLE_MTYPES = ("fs.read_page", "fs.open", "fs.commit",
                    "fs.write_page", "fs.css_open")

# Weighted fault vocabulary; paired kinds inject two events each.
FAULT_MIX = (
    ("crash_restart", 0.30), ("partition_heal", 0.22),
    ("loss_burst", 0.14), ("latency_spike", 0.12),
    ("disk_errors", 0.10), ("drop", 0.12),
)


def generate_plan(seed: int, n_ops: int = 60, n_faults: int = 8,
                  n_sites: int = 3, span: float = 3000.0,
                  name: Optional[str] = None) -> FuzzPlan:
    """Compose a randomized workload schedule with a randomized fault
    schedule into one replayable plan."""
    rng = random.Random(seed)
    plan = FuzzPlan(seed=seed, name=name or f"fuzz-{seed}",
                    n_sites=n_sites,
                    copies=rng.choice((2, min(3, n_sites))),
                    tree_dirs=rng.choice((2, 3)),
                    tree_files=rng.choice((2, 3)),
                    file_size=rng.choice((256, 512, 1024)))

    # Crash targets never include site 0 (the primary client) so at least
    # one workload driver always survives.
    crashable = list(range(1, n_sites))
    crash_targets = sorted(rng.sample(
        crashable, rng.randint(0, min(2, len(crashable)))))
    client_sites = [s for s in range(n_sites) if s not in crash_targets]

    plan.faults = _fault_schedule(rng, plan, span, crash_targets, n_faults)
    entries = op_mix_schedule(rng, plan.tree_paths(), n_ops, span,
                              sites=client_sites)
    plan.ops = [WorkloadOp(**entry) for entry in entries]
    return plan


def _fault_schedule(rng: random.Random, plan: FuzzPlan, span: float,
                    crash_targets: List[int],
                    n_faults: int) -> List[FaultEvent]:
    kinds = [k for k, __ in FAULT_MIX]
    weights = [w for __, w in FAULT_MIX]
    crash_pool = list(crash_targets)
    events: List[FaultEvent] = []
    while len(events) < n_faults:
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        if kind == "crash_restart":
            if not crash_pool:
                continue
            site = crash_pool.pop(rng.randrange(len(crash_pool)))
            t_down = round(rng.uniform(0.05, 0.6) * span, 1)
            t_up = round(rng.uniform(t_down + 0.1 * span, 0.85 * span), 1)
            events.append(FaultEvent("crash", at=t_down, site=site))
            events.append(FaultEvent("restart", at=t_up, site=site,
                                     merge=True))
        elif kind == "partition_heal":
            if plan.n_sites < 2 or any(e.kind == "partition"
                                       for e in events):
                continue    # at most one split per plan: splits can't nest
            sites = list(range(plan.n_sites))
            left_n = rng.randint(1, plan.n_sites - 1)
            left = sorted(rng.sample(sites, left_n))
            right = sorted(s for s in sites if s not in left)
            t_split = round(rng.uniform(0.05, 0.55) * span, 1)
            t_heal = round(rng.uniform(t_split + 0.1 * span,
                                       0.9 * span), 1)
            events.append(FaultEvent("partition", at=t_split,
                                     groups=[left, right]))
            events.append(FaultEvent("heal", at=t_heal, merge=True))
        elif kind == "loss_burst":
            events.append(FaultEvent(
                "loss_burst", at=round(rng.uniform(0.0, 0.8) * span, 1),
                rate=round(rng.uniform(0.02, 0.15), 3),
                duration=round(rng.uniform(0.03, 0.15) * span, 1)))
        elif kind == "latency_spike":
            pair = rng.sample(range(plan.n_sites), 2) \
                if plan.n_sites >= 2 and rng.random() < 0.7 else (None,
                                                                  None)
            events.append(FaultEvent(
                "latency_spike",
                at=round(rng.uniform(0.0, 0.8) * span, 1),
                delta=round(rng.uniform(1.0, 8.0), 1),
                duration=round(rng.uniform(0.05, 0.2) * span, 1),
                src=pair[0], dst=pair[1]))
        elif kind == "disk_errors":
            events.append(FaultEvent(
                "disk_errors", at=round(rng.uniform(0.0, 0.8) * span, 1),
                site=rng.randrange(plan.n_sites),
                count=rng.randint(1, 3)))
        elif kind == "drop":
            events.append(FaultEvent(
                "drop", at=round(rng.uniform(0.0, 0.8) * span, 1),
                mtype=rng.choice(DROPPABLE_MTYPES),
                count=rng.randint(1, 2)))
    events.sort(key=lambda e: (e.at if e.at is not None else 0.0, e.kind))
    return events
