"""Execute a :class:`FuzzPlan` against a live cluster and record the run.

The runner is the deterministic middle of the fuzz loop: build the
cluster and initial tree, arm the fault schedule through the ordinary
:class:`repro.faults.FaultInjector`, drive the workload schedule from
per-site client tasks, then reconcile (restart every down site, heal,
merge, settle) and hand the whole record to the oracle.

While ops execute the runner maintains a :class:`NamespaceModel` — the
expected path → content mapping given which ops *reported* success.  A
mutation that fails with a :class:`~repro.errors.NetworkError` has an
unknown outcome (the request may have committed before the circuit
closed), so the involved paths become *ambiguous* and drop out of
content checking; a clean filesystem error (ENOENT, EIO...) guarantees
no effect.  Reads additionally snapshot what the model expected and
whether the cluster was disturbed (mid-storm), so the oracle can judge
session guarantees offline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro import LocusCluster
from repro.errors import LocusError, NetworkError
from repro.faults.plan import FaultEvent, FaultPlan
from repro.fuzz.plan import FuzzPlan, WorkloadOp, payload

MISSING = "missing"
AMBIGUOUS = "ambiguous"
UNSTABLE = "unstable"       # model changed / in-flight writes overlapped

# Injector trace kinds that disturb session-guarantee checking; the
# cluster is considered clean again once a post-heal invariant check has
# run at quiescence.
_DISTURBING = {"crash", "partition", "heal", "restart", "dropped",
               "loss_burst"}

# Trace kinds opening a split-brain window: each side runs its own CSS,
# so the merge's type-specific resolution (update beats remove, union of
# directory entries, §4.4) — not wall-clock op order — decides the final
# namespace.  Mutations completing inside the window have model-unknown
# outcomes; the window closes at the audited post-heal quiescence.
_SPLITTING = {"partition"}

# Ops that mutate the namespace; reads racing one of these on the same
# path (or file id, for hard-link aliases) are not judged — Unix lets a
# concurrent reader observe a truncating write's intermediate state.
_MUTATING = {"write", "mkdir", "rename", "unlink", "link"}


def _digest(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()[:16]


class NamespaceModel:
    """Expected namespace state, updated only by ops that completed.

    Hard links share one file id, so a write through either name updates
    the expectation for both.  ``ambiguous`` paths (NetworkError'd
    mutations) and ``ambiguous_fids`` (unknown content) are excluded
    from checks but still tracked for existence bookkeeping.
    """

    def __init__(self) -> None:
        self.files: Dict[str, int] = {}
        self.content: Dict[int, bytes] = {}
        self.dirs: Set[str] = {"/", "/w"}
        self.removed: Set[str] = set()
        self.ambiguous: Set[str] = set()
        self.ambiguous_fids: Set[int] = set()
        self._next_fid = 0

    def bind(self, path: str, data: bytes) -> None:
        fid = self.files.get(path)
        if fid is None:
            fid = self._next_fid
            self._next_fid += 1
            self.files[path] = fid
        self.content[fid] = data
        self.removed.discard(path)

    # -- op outcomes -----------------------------------------------------

    def apply_success(self, op: WorkloadOp, seed: int) -> None:
        if op.op == "write":
            self.bind(op.path, payload(seed, op.tag, op.size))
        elif op.op == "mkdir":
            self.dirs.add(op.path)
        elif op.op == "unlink":
            self.files.pop(op.path, None)
            self.removed.add(op.path)
            self.ambiguous.discard(op.path)
        elif op.op == "rename":
            if op.path in self.files:
                self.files[op.dest] = self.files.pop(op.path)
            self.removed.add(op.path)
            self.removed.discard(op.dest)
            if op.path in self.ambiguous:
                self.ambiguous.discard(op.path)
                self.ambiguous.add(op.dest)
        elif op.op == "link":
            if op.path in self.files:
                self.files[op.dest] = self.files[op.path]
                self.removed.discard(op.dest)

    def apply_unknown(self, op: WorkloadOp) -> None:
        """NetworkError: the op may or may not have taken effect."""
        self.ambiguous.add(op.path)
        if op.dest is not None:
            self.ambiguous.add(op.dest)
        if op.op == "write":
            fid = self.files.get(op.path)
            if fid is not None:
                self.ambiguous_fids.add(fid)

    # -- queries ---------------------------------------------------------

    def expectation(self, path: str) -> str:
        """What a read of ``path`` should see right now: a content digest,
        ``missing``, or ``ambiguous``."""
        if path in self.ambiguous:
            return AMBIGUOUS
        fid = self.files.get(path)
        if fid is None:
            return MISSING
        if fid in self.ambiguous_fids:
            return AMBIGUOUS
        return _digest(self.content[fid])


@dataclass
class OpRecord:
    """One executed workload op, with everything the oracle judges."""

    idx: int
    op: WorkloadOp
    start: float
    end: float
    ok: bool
    error: Optional[str] = None
    result: Optional[str] = None        # read: content digest
    expected: Optional[str] = None      # read: model expectation
    clean: bool = False                 # no disturbance across the op

    def summary(self) -> tuple:
        o = self.op
        return (self.idx, o.op, o.path, o.dest, round(self.start, 2),
                round(self.end, 2), self.ok, self.error, self.result,
                self.expected, self.clean)


@dataclass
class FuzzRun:
    """The complete record of one executed plan."""

    plan: FuzzPlan
    cluster: object
    injector: object
    model: NamespaceModel
    oplog: List[OpRecord] = field(default_factory=list)
    unfinished_drivers: List[int] = field(default_factory=list)
    t0: float = 0.0

    def digest(self) -> str:
        """Byte-determinism fingerprint: same plan ⇒ same digest."""
        h = hashlib.sha1()
        for rec in self.oplog:
            h.update(repr(rec.summary()).encode())
        for entry in self.injector.trace:
            h.update(repr(entry).encode())
        return h.hexdigest()


class PlanRunner:

    def __init__(self, plan: FuzzPlan):
        self.plan = plan
        self.cluster = LocusCluster(n_sites=plan.n_sites, seed=plan.seed,
                                    root_pack_sites=plan.root_pack_sites)
        self.model = NamespaceModel()
        self.oplog: List[OpRecord] = []
        self._trace_cursor = 0
        self._disturbed = False
        self._split = False
        self._done: Dict[int, int] = {}     # site -> ops completed
        self._inflight: Dict[object, int] = {}   # path/fid -> open muts
        self._mut_epoch: Dict[object, int] = {}  # path/fid -> changes

    # -- phases ----------------------------------------------------------

    def setup(self) -> float:
        """Build the initial tree; returns t0 (workload clock zero)."""
        plan, cluster = self.plan, self.cluster
        sh = cluster.shell(0)
        sh.setcopies(min(plan.copies, plan.n_sites))
        sh.mkdir("/w")
        tag = 0
        for d in range(plan.tree_dirs):
            sh.mkdir(f"/w/d{d}")
            self.model.dirs.add(f"/w/d{d}")
            for f in range(plan.tree_files):
                tag -= 1
                path = f"/w/d{d}/f{f}"
                data = payload(plan.seed, tag, plan.file_size)
                sh.write_file(path, data)
                self.model.bind(path, data)
        cluster.settle()
        return cluster.sim.now

    def arm_faults(self, t0: float):
        events = []
        for ev in self.plan.faults:
            data = ev.to_dict()
            if data.get("at") is not None:
                data["at"] = t0 + data["at"]
            events.append(FaultEvent.from_dict(data))
        fault_plan = FaultPlan(seed=self.plan.seed, name=self.plan.name,
                               check_after_heal=self.plan.check_after_heal,
                               events=events)
        return self.cluster.inject(fault_plan)

    def run(self) -> FuzzRun:
        plan, cluster = self.plan, self.cluster
        t0 = self.setup()
        injector = self.arm_faults(t0)
        self._injector = injector

        by_site: Dict[int, List[WorkloadOp]] = {}
        for op in plan.ops:
            by_site.setdefault(op.site, []).append(op)
        idx_of = {id(op): i for i, op in enumerate(plan.ops)}
        for site_id, ops in sorted(by_site.items()):
            api = cluster.shell(site_id).api
            cluster.spawn(site_id, self._driver(api, ops, t0, idx_of),
                          name=f"fuzz-driver@{site_id}")

        # Storm phase: drivers + faults; generous horizon so slow heals
        # and retry backoffs still finish inside it.
        cluster.settle(max_time=plan.span() + 30_000.0)

        # Reconciliation phase: the paper's §4 promise is judged on a
        # merged network, so end every scenario whole.
        for site in cluster.sites:
            if not site.up:
                site.restart()
                site.topology.request_merge()
        cluster.net.heal()
        up = [s.site_id for s in cluster.sites if s.up]
        cluster.site(min(up)).topology.request_merge()
        cluster.settle(max_time=30_000.0)

        unfinished = [site_id for site_id, ops in sorted(by_site.items())
                      if self._done.get(site_id, 0) < len(ops)]
        return FuzzRun(plan=plan, cluster=cluster, injector=injector,
                       model=self.model, oplog=self.oplog,
                       unfinished_drivers=unfinished, t0=t0)

    # -- the per-site client ---------------------------------------------

    def _driver(self, api, ops: List[WorkloadOp], t0: float, idx_of):
        sim = self.cluster.sim
        site_id = api.site.site_id
        self._done[site_id] = 0
        for op in ops:
            delay = t0 + op.at - sim.now
            if delay > 0:
                yield delay
            start = sim.now
            clean_start = not self._currently_disturbed()
            keys = self._touch_keys(op)
            if op.op == "read":
                clean_start = clean_start and not any(
                    self._inflight.get(k, 0) for k in keys)
                epochs = {k: self._mut_epoch.get(k, 0) for k in keys}
            elif op.op in _MUTATING:
                self._mark_mutation(keys, +1)
            expected = self.model.expectation(op.path) \
                if op.op == "read" else None
            record = OpRecord(idx=idx_of[id(op)], op=op, start=start,
                              end=start, ok=False, expected=expected)
            try:
                result = yield from self._execute(api, op)
                record.ok = True
                record.result = result
            except NetworkError as exc:
                record.error = type(exc).__name__
                self.model.apply_unknown(op)
            except LocusError as exc:
                record.error = type(exc).__name__
            finally:
                if op.op in _MUTATING:
                    self._mark_mutation(keys, -1)
            record.end = sim.now
            if record.ok:
                self._currently_disturbed()     # refresh window state
                if self._split and op.op != "read":
                    # Split-brain: the merge decides the real outcome.
                    self.model.apply_success(op, self.plan.seed)
                    self.model.apply_unknown(op)
                else:
                    self.model.apply_success(op, self.plan.seed)
            # A read is judged only if nothing moved under it: no fault
            # disturbed the cluster since the last audited quiescence,
            # no mutation of the same path/file overlapped the read
            # window, and the model expectation is unchanged.
            if op.op == "read":
                record.clean = (clean_start
                                and not self._currently_disturbed()
                                and all(self._mut_epoch.get(k, 0)
                                        == epochs[k] for k in keys)
                                and self.model.expectation(op.path)
                                == expected)
            self.oplog.append(record)
            self._done[site_id] += 1

    def _touch_keys(self, op: WorkloadOp) -> tuple:
        """Conflict-detection keys for ``op``: the named paths plus the
        model file ids behind them (hard links alias one id)."""
        keys = {op.path}
        if op.dest is not None:
            keys.add(op.dest)
        for path in tuple(keys):
            fid = self.model.files.get(path)
            if fid is not None:
                keys.add(("fid", fid))
        return tuple(sorted(keys, key=repr))

    def _mark_mutation(self, keys: tuple, delta: int) -> None:
        for k in keys:
            self._inflight[k] = self._inflight.get(k, 0) + delta
            self._mut_epoch[k] = self._mut_epoch.get(k, 0) + 1

    def _execute(self, api, op: WorkloadOp):
        if op.op == "read":
            data = yield from api.read_file(op.path)
            return _digest(data)
        if op.op == "write":
            yield from api.write_file(
                op.path, payload(self.plan.seed, op.tag, op.size))
        elif op.op == "mkdir":
            yield from api.mkdir(op.path)
        elif op.op == "rename":
            yield from api.rename(op.path, op.dest)
        elif op.op == "unlink":
            yield from api.unlink(op.path)
        elif op.op == "link":
            yield from api.link(op.path, op.dest)
        elif op.op == "readdir":
            names = yield from api.readdir(op.path.rsplit("/", 1)[0]
                                           or "/")
            return str(len(names))
        elif op.op == "stat":
            yield from api.stat(op.path)
        return None

    # -- disturbance tracking --------------------------------------------

    def _currently_disturbed(self) -> bool:
        """Scan new injector-trace entries: faults disturb, an audited
        post-heal quiescence (invariant_check) restores confidence."""
        trace = self._injector.trace
        while self._trace_cursor < len(trace):
            __, kind, __detail = trace[self._trace_cursor]
            self._trace_cursor += 1
            if kind in _DISTURBING:
                self._disturbed = True
            if kind in _SPLITTING:
                self._split = True
            elif kind == "invariant_check":
                self._disturbed = False
                self._split = False
        return self._disturbed


def run_plan(plan: FuzzPlan, oracle=None) -> "FuzzResult":
    """Run a plan end-to-end and judge it.  Returns a
    :class:`repro.fuzz.oracle.FuzzResult` whose ``failures`` list is
    empty on a healthy run."""
    from repro.fuzz.oracle import FuzzOracle
    run = PlanRunner(plan).run()
    return (oracle or FuzzOracle()).judge(run)
