"""Auto-shrinking: turn a failing plan into a *minimal* failing plan.

Splintercat-style (SNIPPETS.md): start with the aggressive strategy —
subdivide the whole timeline and retry halves, keeping whichever half
still fails — and, on repeated non-reproduction (neither half fails: the
bug needs events from both), escalate to progressively more conservative
strategies:

1. ``halves``      — bisect the combined op+fault timeline;
2. ``drop_ops``    — ddmin over workload ops (chunks, then singles);
3. ``drop_faults`` — ddmin over fault events;
4. ``simplify``    — shorten vtime spans (rescale the schedule) and
   shrink the initial tree.

After any conservative strategy makes progress the shrinker rewinds to
the aggressive end of the ladder — a smaller plan may well bisect where
the original would not.  The predicate is memoized on the candidate's
canonical JSON, so rewinds never re-run a scenario, and the whole loop
is deterministic: same failing plan + same predicate ⇒ same minimal
plan, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.fuzz.plan import FuzzPlan

Predicate = Callable[[FuzzPlan], bool]


@dataclass
class ShrinkStep:
    """One strategy application, for reports and escalation tests."""

    strategy: str
    before: int         # event count going in
    after: int          # event count coming out
    attempts: int       # predicate runs this step
    reproduced: bool    # did the strategy reduce the plan at all?


@dataclass
class ShrinkOutcome:
    plan: FuzzPlan
    steps: List[ShrinkStep] = field(default_factory=list)
    attempts: int = 0

    @property
    def escalations(self) -> List[str]:
        """Strategies tried after an earlier one stopped reproducing."""
        return [s.strategy for s in self.steps if not s.reproduced]

    def report(self) -> str:
        lines = [f"shrunk to {self.plan.event_count()} events "
                 f"({len(self.plan.ops)} ops + {len(self.plan.faults)} "
                 f"faults) in {self.attempts} runs"]
        lines += [f"  {s.strategy:12s} {s.before:4d} -> {s.after:4d} "
                  f"events ({s.attempts} runs"
                  f"{'' if s.reproduced else ', no reproduction'})"
                  for s in self.steps]
        return "\n".join(lines)


class Shrinker:

    STRATEGIES = ("halves", "drop_ops", "drop_faults", "simplify")

    def __init__(self, fails: Predicate, max_attempts: int = 800):
        self._fails_raw = fails
        self.max_attempts = max_attempts
        self.attempts = 0
        self._cache = {}

    # -- predicate -------------------------------------------------------

    def _fails(self, plan: FuzzPlan) -> bool:
        key = plan.to_json()
        if key in self._cache:
            return self._cache[key]
        if self.attempts >= self.max_attempts:
            return False        # budget exhausted: treat as non-repro
        self.attempts += 1
        verdict = bool(self._fails_raw(plan))
        self._cache[key] = verdict
        return verdict

    # -- entry point -----------------------------------------------------

    def shrink(self, plan: FuzzPlan) -> ShrinkOutcome:
        if not self._fails(plan):
            raise ValueError("plan does not fail; nothing to shrink")
        outcome = ShrinkOutcome(plan=plan)
        current = plan
        while True:
            progressed = False
            for strategy in self.STRATEGIES:
                before = current.event_count()
                start_attempts = self.attempts
                reduced = getattr(self, f"_{strategy}")(current)
                after = (reduced or current).event_count()
                outcome.steps.append(ShrinkStep(
                    strategy=strategy, before=before, after=after,
                    attempts=self.attempts - start_attempts,
                    reproduced=reduced is not None))
                if reduced is not None:
                    current = reduced
                    progressed = True
                    if strategy != self.STRATEGIES[0]:
                        break   # rewind the ladder: re-try aggressive
            if not progressed or self.attempts >= self.max_attempts:
                break
        renamed = current.replace(name=f"{plan.name}-shrunk")
        outcome.plan = renamed
        outcome.attempts = self.attempts
        return outcome

    # -- combined-timeline helpers ---------------------------------------

    @staticmethod
    def _timeline(plan: FuzzPlan) -> List[Tuple[str, object]]:
        merged = [("op", op) for op in plan.ops] + \
                 [("fault", ev) for ev in plan.faults]
        merged.sort(key=lambda item: (
            item[1].at if item[1].at is not None else 0.0,
            0 if item[0] == "op" else 1))
        return merged

    @staticmethod
    def _rebuild(plan: FuzzPlan,
                 timeline: List[Tuple[str, object]]) -> FuzzPlan:
        return plan.replace(
            ops=[item for kind, item in timeline if kind == "op"],
            faults=[item for kind, item in timeline if kind == "fault"])

    # -- strategies ------------------------------------------------------

    def _halves(self, plan: FuzzPlan) -> Optional[FuzzPlan]:
        """Bisect the combined timeline; keep a failing half, repeat."""
        timeline = self._timeline(plan)
        if len(timeline) < 2:
            return None
        current = None
        while len(timeline) >= 2:
            mid = len(timeline) // 2
            for half in (timeline[:mid], timeline[mid:]):
                candidate = self._rebuild(plan, half)
                if self._fails(candidate):
                    timeline = half
                    current = candidate
                    break
            else:
                break       # neither half reproduces: escalate
        return current

    def _drop_ops(self, plan: FuzzPlan) -> Optional[FuzzPlan]:
        ops = self._ddmin(plan.ops,
                          lambda items: plan.replace(ops=list(items)))
        return None if ops is None else plan.replace(ops=ops)

    def _drop_faults(self, plan: FuzzPlan) -> Optional[FuzzPlan]:
        faults = self._ddmin(
            plan.faults, lambda items: plan.replace(faults=list(items)))
        return None if faults is None else plan.replace(faults=faults)

    def _ddmin(self, items: list, rebuild) -> Optional[list]:
        """Remove chunks (halving down to singles); None if irreducible."""
        if not items:
            return None
        best = list(items)
        chunk = max(1, len(best) // 2)
        reduced = False
        while True:
            removed_any = False
            i = 0
            while i < len(best):
                candidate = best[:i] + best[i + chunk:]
                if self._fails(rebuild(candidate)):
                    best = candidate
                    removed_any = reduced = True
                else:
                    i += chunk
            if chunk == 1:
                if not removed_any:
                    break
            else:
                chunk = max(1, chunk // 2)
        return best if reduced else None

    def _simplify(self, plan: FuzzPlan) -> Optional[FuzzPlan]:
        """Conservative last resort: compress the schedule's vtime span
        and shrink the initial tree."""
        current, reduced = plan, False
        for transform in (self._scale_times(0.5), self._scale_times(0.25),
                          self._smaller_tree):
            candidate = transform(current)
            if candidate is None:
                continue
            if self._fails(candidate):
                current, reduced = candidate, True
        return current if reduced else None

    @staticmethod
    def _scale_times(factor: float):
        def transform(plan: FuzzPlan) -> Optional[FuzzPlan]:
            if plan.span() <= 0:
                return None
            clone = plan.replace()
            for op in clone.ops:
                op.at = round(op.at * factor, 1)
            for ev in clone.faults:
                if ev.at is not None:
                    ev.at = round(ev.at * factor, 1)
                if ev.duration is not None:
                    ev.duration = max(1.0, round(ev.duration * factor, 1))
            return clone
        return transform

    @staticmethod
    def _smaller_tree(plan: FuzzPlan) -> Optional[FuzzPlan]:
        if plan.tree_dirs <= 1 and plan.tree_files <= 1 \
                and plan.file_size <= 64:
            return None
        return plan.replace(tree_dirs=max(1, plan.tree_dirs // 2),
                            tree_files=max(1, plan.tree_files // 2),
                            file_size=max(64, plan.file_size // 2))


def shrink_plan(plan: FuzzPlan, fails: Predicate,
                max_attempts: int = 800) -> ShrinkOutcome:
    """Convenience wrapper: minimize ``plan`` under ``fails``."""
    return Shrinker(fails, max_attempts=max_attempts).shrink(plan)


def shrink_failing_result(result, oracle=None, max_attempts: int = 200,
                          pin_kinds=None) -> ShrinkOutcome:
    """Minimize the plan behind a failing :class:`FuzzResult`, re-running
    the full cluster for every candidate (the expensive, real-world
    path; tests use :func:`shrink_plan` with synthetic predicates).

    The predicate is *kind-pinned*: a candidate only counts as failing
    if it reproduces one of the original violation kinds (or
    ``pin_kinds``, when given).  Without pinning a shrink can slide onto
    a different, easier-to-trigger bug and the committed regression
    would no longer guard the one it was minimizing."""
    from repro.fuzz.runner import run_plan

    if pin_kinds is None:
        pin_kinds = {v.kind for v in result.violations}
    pin_kinds = frozenset(pin_kinds)

    def fails(candidate: FuzzPlan) -> bool:
        res = run_plan(candidate, oracle=oracle)
        return any(v.kind in pin_kinds for v in res.violations)

    return shrink_plan(result.plan, fails, max_attempts=max_attempts)
