"""Oracles: judge a finished :class:`~repro.fuzz.runner.FuzzRun`.

The default :class:`FuzzOracle` layers four families of checks on top of
whatever the mid-storm invariant audits already caught:

* **invariant audit** — the full :class:`repro.faults.InvariantChecker`
  sweep (fsck + version-vector replica divergence) on the merged store.
  Orphan inodes are excluded by default: a crash between allocation and
  the directory commit legitimately strands an inode for fsck to reap
  (classic UNIX semantics the paper keeps); every other category is a
  real violation.
* **byte convergence** — stricter than version vectors: two copies that
  *claim* the same version must carry identical page bytes.
* **session guarantees** — every read the runner marked ``clean`` (no
  fault disturbance, stable model expectation) must have returned the
  content of the last successful write; reads mid-storm are exempt, the
  merged end state is not.
* **model read-back + liveness** — after reconciliation, every
  unambiguous path the model tracks must resolve to the expected bytes
  (flagged conflicts are legitimate pending states and are skipped),
  every successfully unlinked path must stay gone, every workload driver
  must have finished its schedule, and no syscall span on a never-crashed
  client site may be left open in the flight recorder.

A failing run's :class:`FuzzResult` carries the violations and the plan;
``repro.fuzz.shrink`` turns it into a minimal reproduction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import LocusError
from repro.faults.invariants import InvariantChecker, Violation
from repro.fuzz.runner import (AMBIGUOUS, FuzzRun, MISSING, NamespaceModel,
                               _digest)

# fsck categories that are always violations.  "orphan_inodes" is off by
# default (see module docstring); strict oracles can add it back.
DEFAULT_AUDIT = ("fsck:dangling_entries", "fsck:placement_errors",
                 "fsck:content_mismatch", "fsck:unflagged_conflicts",
                 "fsck:nlink_errors", "replica_divergence")


@dataclass
class FuzzResult:
    """What one fuzz iteration produced: the run record plus verdicts."""

    run: FuzzRun
    violations: List[Violation] = field(default_factory=list)

    @property
    def plan(self):
        return self.run.plan

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def failures(self) -> List[str]:
        return [f"[{v.kind}] {v.detail}" for v in self.violations]

    def digest(self) -> str:
        return self.run.digest()

    def report(self) -> str:
        run = self.run
        ops_ok = sum(1 for r in run.oplog if r.ok)
        lines = [f"plan {self.plan.name!r} seed={self.plan.seed}: "
                 f"{len(run.oplog)} ops ({ops_ok} ok), "
                 f"{len(run.injector.trace)} fault events, "
                 f"{len(self.violations)} violations"]
        lines += [f"  VIOLATION [{v.kind}] {v.detail}"
                  for v in self.violations]
        return "\n".join(lines)


class FuzzOracle:
    """The default end-of-run judge."""

    def __init__(self, audit=DEFAULT_AUDIT, check_sessions: bool = True,
                 check_liveness: bool = True):
        self.audit = tuple(audit)
        self.check_sessions = check_sessions
        self.check_liveness = check_liveness

    # -- entry point -----------------------------------------------------

    def judge(self, run: FuzzRun) -> FuzzResult:
        violations: List[Violation] = []
        violations += self._filter(run.injector.violations)
        violations += self._filter(
            InvariantChecker(run.cluster, run.plan).check())
        violations += self._byte_convergence(run)
        if self.check_sessions:
            violations += self._session_guarantees(run)
        violations += self._model_readback(run)
        if self.check_liveness:
            violations += self._liveness(run)
        return FuzzResult(run=run, violations=violations)

    # -- helpers ---------------------------------------------------------

    def _make(self, run: FuzzRun, kind: str, detail: str) -> Violation:
        return Violation(kind=kind, detail=detail, seed=run.plan.seed,
                         plan_json=run.plan.name)

    def _filter(self, violations) -> List[Violation]:
        return [v for v in violations
                if not v.kind.startswith("fsck:")
                or v.kind in self.audit]

    # -- byte convergence ------------------------------------------------

    def _byte_convergence(self, run: FuzzRun) -> List[Violation]:
        """Copies with equal version vectors must be byte-identical —
        silent data divergence that vv comparison cannot see."""
        out: List[Violation] = []
        cluster = run.cluster
        mount = cluster.sites[0].fs.mount
        for gfs in sorted(mount.groups):
            packs = {}
            for site_id in mount.pack_sites(gfs):
                site = cluster.site(site_id)
                if site.up and gfs in site.packs:
                    packs[site_id] = site.packs[gfs]
            inos = sorted({ino for pack in packs.values()
                           for ino in pack.inodes})
            for ino in inos:
                copies = [(s, p, p.inodes[ino])
                          for s, p in sorted(packs.items())
                          if ino in p.inodes]
                data = [(s, p, i) for s, p, i in copies
                        if i.has_data and not i.deleted and not i.conflict]
                if len(data) < 2:
                    continue
                first = data[0][2].version
                if any(i.version != first for __, __p, i in data[1:]):
                    continue    # vv divergence: InvariantChecker's case
                images = {s: _digest(self._image(p, i))
                          for s, p, i in data}
                if len(set(images.values())) > 1:
                    out.append(self._make(
                        run, "data_divergence",
                        f"gfile=({gfs},{ino}) equal versions, "
                        f"different bytes: {images}"))
        return out

    @staticmethod
    def _image(pack, inode) -> bytes:
        parts = []
        for block in inode.pages:
            parts.append(b"" if block is None else pack.read_block(block))
        return b"".join(parts)[:inode.size]

    # -- session guarantees ----------------------------------------------

    def _session_guarantees(self, run: FuzzRun) -> List[Violation]:
        out: List[Violation] = []
        for rec in run.oplog:
            if rec.op.op != "read" or not rec.ok or not rec.clean:
                continue
            if rec.expected in (AMBIGUOUS, None):
                continue
            if rec.expected == MISSING:
                # A clean successful read of a path the model says is
                # absent: the namespace resurrected something.
                out.append(self._make(
                    run, "session:phantom_read",
                    f"op#{rec.idx} read {rec.op.path!r} at "
                    f"t={rec.start:.1f} succeeded but the path should "
                    f"not exist"))
            elif rec.result != rec.expected:
                out.append(self._make(
                    run, "session:stale_read",
                    f"op#{rec.idx} read {rec.op.path!r} at "
                    f"t={rec.start:.1f} returned {rec.result} expected "
                    f"{rec.expected}"))
        return out

    # -- model read-back -------------------------------------------------

    def _model_readback(self, run: FuzzRun) -> List[Violation]:
        out: List[Violation] = []
        model: NamespaceModel = run.model
        sh = run.cluster.shell(0)
        for path in sorted(model.files):
            if path in model.ambiguous:
                continue
            fid = model.files[path]
            if fid in model.ambiguous_fids:
                continue
            try:
                attrs = sh.stat(path)
            except LocusError as exc:
                out.append(self._make(
                    run, "model:lost_path",
                    f"{path!r} should exist after reconciliation, "
                    f"stat raised {type(exc).__name__}"))
                continue
            if attrs.get("conflict"):
                continue    # flagged conflict: legitimate pending state
            try:
                got = _digest(sh.read_file(path))
            except LocusError as exc:
                out.append(self._make(
                    run, "model:unreadable_path",
                    f"{path!r} stat ok but read raised "
                    f"{type(exc).__name__}"))
                continue
            want = _digest(model.content[fid])
            if got != want:
                out.append(self._make(
                    run, "model:content_mismatch",
                    f"{path!r} content {got} != last committed write "
                    f"{want}"))
        for path in sorted(model.removed - set(model.files)
                           - model.ambiguous):
            try:
                sh.stat(path)
            except LocusError:
                continue
            out.append(self._make(
                run, "model:resurrected_path",
                f"{path!r} was unlinked but exists after "
                f"reconciliation"))
        return out

    # -- liveness --------------------------------------------------------

    def _liveness(self, run: FuzzRun) -> List[Violation]:
        out: List[Violation] = []
        for site_id in run.unfinished_drivers:
            out.append(self._make(
                run, "liveness:driver_stuck",
                f"workload driver at site {site_id} never finished its "
                f"schedule"))
        tracer = getattr(run.cluster, "tracer", None)
        if tracer is not None and tracer.enabled:
            crashed = set()
            for __, kind, detail in run.injector.trace:
                if kind == "crash":
                    crashed.add(json.loads(detail).get("site"))
            for span in tracer.open_spans(kind="syscall"):
                if span.site in crashed:
                    continue
                out.append(self._make(
                    run, "liveness:leaked_span",
                    f"syscall span {span.name!r} on site {span.site} "
                    f"opened t={span.start:.1f} never finished"))
        return out


class SyntheticOracle(FuzzOracle):
    """A deliberately planted bug for shrinker demos and tests: trips
    when the run contains a successful workload op of ``op_kind`` AND a
    fired fault of ``fault_kind``.  The minimal reproduction is exactly
    one of each — what the shrinker must converge to."""

    def __init__(self, op_kind: str = "rename",
                 fault_kind: str = "crash"):
        super().__init__(check_sessions=False, check_liveness=False)
        self.op_kind = op_kind
        self.fault_kind = fault_kind

    def judge(self, run: FuzzRun) -> FuzzResult:
        ops = [r for r in run.oplog if r.op.op == self.op_kind and r.ok]
        faults = [t for t, k, __ in run.injector.trace
                  if k == self.fault_kind]
        violations: List[Violation] = []
        if ops and faults:
            violations.append(self._make(
                run, "synthetic:conjunction",
                f"successful {self.op_kind!r} (op#{ops[0].idx}) and "
                f"fired {self.fault_kind!r} (t={faults[0]:.1f}) "
                f"coexist"))
        return FuzzResult(run=run, violations=violations)
