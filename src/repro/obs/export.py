"""Trace export: JSONL for machines, Chrome trace format for humans.

Both formats are byte-deterministic for a given tracer state: spans are
written in span-id order, instants in sequence order, every JSON object is
serialized with sorted keys and compact separators, and all timestamps are
virtual-time floats produced by deterministic arithmetic.  Replaying the
same seed and fault plan therefore produces byte-identical files — the
property the determinism tests assert with plain file equality.

The Chrome file loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: spans become complete ("X") slices grouped by site
(pid) and trace (tid); fault, partition, and recovery instants become
global instant ("i") events.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

_SPAN_KEYS = {"type", "span_id", "trace_id", "parent_id", "name", "kind",
              "site", "start", "end", "status", "attrs", "events"}
_INSTANT_KEYS = {"type", "seq", "ts", "name", "site", "attrs"}
# Load-accounting records (ISSUE 10): one per site, appended after the
# instants, plus the convergence monitor's detection/repair records.
_LOAD_KEYS = {"type", "site", "ts", "window", "syscalls", "syscall_rate",
              "rpcs", "rpc_rate", "rpc_ops", "hot_inodes", "css",
              "queues", "replication"}
_DETECTION_KEYS = {"type", "seq", "ts", "event", "kind", "site", "gfile",
                   "fault_ts", "latency"}


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def trace_records(tracer) -> List[Dict]:
    """All trace records in deterministic order: meta, spans, instants."""
    records: List[Dict] = [{
        "type": "meta",
        "spans": len(tracer.spans),
        "instants": len(tracer.instants),
        "vtime": tracer.sim.now,
    }]
    records += [span.to_dict() for span in tracer.spans]
    records += list(tracer.instants)
    return records


def export_jsonl(tracer, path: str,
                 extra: Optional[List[Dict]] = None) -> int:
    """Write one JSON object per line; returns the record count.

    ``extra`` appends additional deterministic records after the trace
    stream — the ``load`` / ``detection`` records built by
    :func:`repro.obs.load.load_records`.
    """
    records = trace_records(tracer)
    if extra:
        records = records + list(extra)
    with open(path, "w") as fh:
        for rec in records:
            fh.write(_dumps(rec))
            fh.write("\n")
    return len(records)


def export_chrome(tracer, path: str) -> int:
    """Write a Chrome-trace JSON file; returns the event count."""
    events: List[Dict] = []
    for span in tracer.spans:
        end = span.end if span.end is not None else tracer.sim.now
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.kind,
            "pid": span.site if span.site is not None else -1,
            "tid": span.trace_id,
            "ts": span.start,
            "dur": end - span.start,
            "args": {"span_id": span.span_id,
                     "parent_id": span.parent_id,
                     "status": span.status,
                     **span.attrs},
        })
        for ts, name, attrs in span.events:
            events.append({
                "ph": "i", "s": "t",
                "name": f"{span.name}:{name}",
                "cat": span.kind,
                "pid": span.site if span.site is not None else -1,
                "tid": span.trace_id,
                "ts": ts,
                "args": dict(attrs),
            })
    for inst in tracer.instants:
        events.append({
            "ph": "i", "s": "g",
            "name": inst["name"],
            "cat": "instant",
            "pid": inst["site"] if inst["site"] is not None else -1,
            "tid": 0,
            "ts": inst["ts"],
            "args": dict(inst["attrs"]),
        })
    with open(path, "w") as fh:
        fh.write(_dumps({"traceEvents": events,
                         "displayTimeUnit": "ms"}))
    return len(events)


def validate_trace_jsonl(path: str) -> List[str]:
    """Validate an exported JSONL trace against the span schema.

    Returns a list of human-readable problems (empty = valid).  Checks the
    record shapes, referential integrity of the parent links, and that
    every finished span has ``end >= start``.
    """
    errors: List[str] = []
    span_ids = set()
    parents: List[tuple] = []
    meta_seen = False
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as exc:
                errors.append(f"line {lineno}: not JSON ({exc})")
                continue
            rtype = rec.get("type")
            if rtype == "meta":
                meta_seen = True
            elif rtype == "span":
                missing = _SPAN_KEYS - set(rec)
                if missing:
                    errors.append(
                        f"line {lineno}: span missing {sorted(missing)}")
                    continue
                span_ids.add(rec["span_id"])
                if rec["parent_id"] is not None:
                    parents.append((lineno, rec["parent_id"]))
                if rec["end"] is not None and rec["end"] < rec["start"]:
                    errors.append(f"line {lineno}: span #{rec['span_id']} "
                                  f"ends before it starts")
            elif rtype == "instant":
                missing = _INSTANT_KEYS - set(rec)
                if missing:
                    errors.append(
                        f"line {lineno}: instant missing {sorted(missing)}")
            elif rtype == "load":
                missing = _LOAD_KEYS - set(rec)
                if missing:
                    errors.append(
                        f"line {lineno}: load missing {sorted(missing)}")
            elif rtype == "detection":
                missing = _DETECTION_KEYS - set(rec)
                if missing:
                    errors.append(
                        f"line {lineno}: detection missing "
                        f"{sorted(missing)}")
                elif rec["event"] not in ("detect", "repair"):
                    errors.append(
                        f"line {lineno}: detection event "
                        f"{rec['event']!r} not detect/repair")
            else:
                errors.append(f"line {lineno}: unknown record type {rtype!r}")
    if not meta_seen:
        errors.append("no meta record")
    for lineno, parent_id in parents:
        if parent_id not in span_ids:
            errors.append(f"line {lineno}: dangling parent_id {parent_id}")
    return errors


def causal_chains(tracer, leaf_kind: str = "handler") -> List[List]:
    """Root→leaf span paths ending in a span of ``leaf_kind``.

    The acceptance check for the fault-storm trace: at least one chain
    must run syscall → rpc → handler across sites.
    """
    chains: List[List] = []
    for leaf in tracer.spans:
        if leaf.kind != leaf_kind:
            continue
        chain = [leaf]
        node: Optional[object] = leaf
        while node is not None and node.parent_id is not None:
            node = tracer.span(node.parent_id)
            if node is not None:
                chain.append(node)
        chains.append(list(reversed(chain)))
    return chains
