"""Trace-driven critical-path analysis: where a syscall's latency went.

The flight recorder (PR 4) captures *what happened* — causal span trees
for every syscall's US→CSS→SS journey.  This module answers *what
limited it*: each root span's end-to-end latency is partitioned, exactly
and deterministically, into per-hop segments:

* ``local``    — time inside syscall/fs work on the using site (CPU,
  disk, buffer-cache);
* ``queue``    — virtual time a request or response message sat behind
  earlier traffic on a network link (the ``queue_wait`` events the
  network attaches to the owning rpc span);
* ``wire``     — message propagation and serialization delay plus the
  per-message CPU at both ends (the remainder of an rpc span's self
  time once queueing is removed);
* ``remote_service`` — handler execution at the serving site (the CSS
  running its open policy, the SS reading disk...);
* ``retry_wait``     — supervision backoff: the deterministic
  exponential sleeps a supervised call (``srpc:*``) spends between
  attempts while a fault is in progress;
* ``repair``   — recovery/scrub work a span waited on;
* ``other``    — anything not covered above (rare; kept explicit so the
  decomposition always sums to 100%).

The decomposition is a recursive interval partition: a span's window is
split between its children's windows (clipped to the parent, overlap
counted once) and the gaps between them, which are the span's *self
time* and take the span's own category.  Because every instant of the
root window is attributed to exactly one segment, the blame table
accounts for 100% of measured latency by construction — the T21
benchmark asserts the ≥95% acceptance bound with margin.

Used by ``python -m repro.cli trace --critical-path`` and the T21
benchmark; `analyze_spans` takes any span list, so hand-built trees
(tests) and live tracers both work.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

SEGMENTS: Tuple[str, ...] = ("local", "queue", "wire", "remote_service",
                             "retry_wait", "repair", "other")

_LOCAL_KINDS = ("syscall", "fs", "proc")
_REPAIR_KINDS = ("recovery", "scrub")


def _category(span) -> str:
    """The segment a span's *self time* belongs to."""
    if span.kind in _LOCAL_KINDS:
        return "local"
    if span.kind == "handler":
        return "remote_service"
    if span.kind == "rpc":
        # srpc self time is the supervision wrapper: its rpc children
        # cover the attempts, so what remains is backoff sleeps.
        return "retry_wait" if span.name.startswith("srpc:") else "wire"
    if span.kind in _REPAIR_KINDS:
        return "repair"
    return "other"


class Blame:
    """Aggregated attribution for one span name: count, total latency,
    and the per-segment split."""

    __slots__ = ("name", "count", "total", "segments")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.segments: Dict[str, float] = {s: 0.0 for s in SEGMENTS}

    def add(self, duration: float, segs: Dict[str, float]) -> None:
        self.count += 1
        self.total += duration
        for key, val in segs.items():
            self.segments[key] += val

    @property
    def attributed(self) -> float:
        return sum(self.segments.values())

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "count": self.count,
            "total": round(self.total, 6),
            "segments": {s: round(v, 6)
                         for s, v in sorted(self.segments.items()) if v},
        }


class CritPathReport:
    """Blame tables per root syscall kind and per RPC operation."""

    def __init__(self):
        self.syscalls: Dict[str, Blame] = {}
        self.rpcs: Dict[str, Blame] = {}
        self.segment_totals: Dict[str, float] = {s: 0.0 for s in SEGMENTS}
        self.root_count = 0
        self.root_total = 0.0

    @property
    def coverage(self) -> float:
        """Fraction of measured root latency the segments account for
        (1.0 by construction; the acceptance criterion is >= 0.95)."""
        if not self.root_total:
            return 1.0
        return sum(self.segment_totals.values()) / self.root_total

    def to_dict(self) -> Dict:
        return {
            "roots": self.root_count,
            "total_latency": round(self.root_total, 6),
            "coverage": round(self.coverage, 6),
            "segment_totals": {s: round(v, 6) for s, v
                               in sorted(self.segment_totals.items()) if v},
            "syscalls": [self.syscalls[n].to_dict()
                         for n in sorted(self.syscalls)],
            "rpcs": [self.rpcs[n].to_dict() for n in sorted(self.rpcs)],
        }


class _Analyzer:
    def __init__(self, spans: Iterable, now: Optional[float]):
        self.spans = list(spans)
        ends = [s.end for s in self.spans if s.end is not None]
        self.now = now if now is not None \
            else (max(ends) if ends else 0.0)
        self.children: Dict[int, List] = {}
        for span in self.spans:
            if span.parent_id is not None:
                self.children.setdefault(span.parent_id, []).append(span)
        for kids in self.children.values():
            kids.sort(key=lambda s: (s.start, s.span_id))

    def _end(self, span) -> float:
        # An unfinished span (its site crashed mid-call) is clipped at
        # analysis time; its parent's window clips it further.
        return span.end if span.end is not None else self.now

    def decompose(self, span, lo: Optional[float] = None,
                  hi: Optional[float] = None,
                  segs: Optional[Dict[str, float]] = None) -> Dict[str, float]:
        """Partition ``span``'s window (clipped to [lo, hi]) into
        segments.  Every instant is attributed exactly once: gaps not
        covered by a child are the span's self time; children are
        recursed into over the part of their window not already covered
        by an earlier sibling."""
        if segs is None:
            segs = {s: 0.0 for s in SEGMENTS}
        lo = span.start if lo is None else max(lo, span.start)
        hi = self._end(span) if hi is None else min(hi, self._end(span))
        if hi <= lo:
            return segs
        cursor = lo
        self_time = 0.0
        for child in self.children.get(span.span_id, ()):
            if child.start >= hi:
                break              # children sorted by start
            child_end = self._end(child)
            if child_end <= cursor:
                continue           # fully covered by an earlier sibling
            gap_end = min(max(child.start, cursor), hi)
            self_time += gap_end - cursor
            self.decompose(child, max(cursor, child.start), hi, segs)
            cursor = min(max(cursor, child_end), hi)
        self_time += hi - cursor
        self._attribute_self(span, lo, hi, self_time, segs)
        return segs

    def _attribute_self(self, span, lo: float, hi: float,
                        self_time: float, segs: Dict[str, float]) -> None:
        if self_time <= 0.0:
            return
        cat = _category(span)
        if span.kind == "rpc" and not span.name.startswith("srpc:"):
            # The network attaches queue_wait events to the rpc span as
            # each message (request and response) is delivered; what the
            # events cover is head-of-line blocking, the rest of the
            # self time is wire propagation + per-message CPU.
            queued = sum(attrs.get("delay", 0.0)
                         for ts, name, attrs in span.events
                         if name == "queue_wait" and lo <= ts <= hi)
            queued = min(queued, self_time)
            segs["queue"] += queued
            segs["wire"] += self_time - queued
        else:
            segs[cat] += self_time


def analyze_spans(spans: Iterable, now: Optional[float] = None,
                  root_prefix: str = "syscall.") -> CritPathReport:
    """Build the blame tables from a span list.

    Roots matching ``root_prefix`` feed the per-syscall table and the
    coverage figure; every plain ``rpc:*`` span additionally feeds the
    per-RPC table (decomposed independently, so its queue/wire/service
    split is visible regardless of nesting depth).
    """
    analyzer = _Analyzer(spans, now)
    report = CritPathReport()
    for span in analyzer.spans:
        if span.parent_id is None and span.name.startswith(root_prefix):
            segs = analyzer.decompose(span)
            duration = analyzer._end(span) - span.start
            blame = report.syscalls.get(span.name)
            if blame is None:
                blame = report.syscalls[span.name] = Blame(span.name)
            blame.add(duration, segs)
            report.root_count += 1
            report.root_total += duration
            for key, val in segs.items():
                report.segment_totals[key] += val
        if span.kind == "rpc" and span.name.startswith("rpc:"):
            segs = analyzer.decompose(span)
            blame = report.rpcs.get(span.name)
            if blame is None:
                blame = report.rpcs[span.name] = Blame(span.name)
            blame.add(analyzer._end(span) - span.start, segs)
    return report


def analyze(tracer, root_prefix: str = "syscall.") -> CritPathReport:
    """Analyze a live tracer's recording."""
    return analyze_spans(tracer.spans, now=tracer.sim.now,
                         root_prefix=root_prefix)


def _pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.1f}" if whole else "0.0"


def format_blame(report: CritPathReport) -> str:
    """Deterministic text rendering of the blame tables."""
    lines: List[str] = [
        f"critical path: {report.root_count} syscalls, "
        f"{report.root_total:.1f} vtime, "
        f"{100.0 * report.coverage:.1f}% attributed",
    ]
    short = {"remote_service": "remote", "retry_wait": "retry"}
    header = (f"  {'span':<28} {'count':>6} {'total':>12}"
              + "".join(f" {short.get(s, s) + '%':>9}" for s in SEGMENTS))
    for title, table in (("syscalls", report.syscalls),
                         ("rpcs", report.rpcs)):
        if not table:
            continue
        lines.append(f"-- blame by {title} --")
        lines.append(header)
        for name in sorted(table):
            blame = table[name]
            lines.append(
                f"  {name:<28} {blame.count:>6} {blame.total:>12.1f}"
                + "".join(f" {_pct(blame.segments[s], blame.total):>9}"
                          for s in SEGMENTS))
    return "\n".join(lines)
