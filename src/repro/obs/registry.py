"""Per-site metrics registry: latency histograms, counters, gauge sources.

One registry hangs off every :class:`~repro.core.site.Site` (and one off the
network).  Instrumented code reports durations with :meth:`observe` and event
counts with :meth:`count`; subsystems that already keep their own counters
(buffer cache, name cache, propagation) register a *gauge source* — a
zero-argument callable returning a flat dict — so ``tools/inspect`` and the
benchmark harness read everything through one interface instead of reaching
into private attributes.

All methods are cheap and side-effect-free with respect to the simulation:
recording never charges virtual time, sends messages, or consumes simulator
randomness, so metrics collection can stay always-on without perturbing a
run.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Optional

from repro.obs.histogram import HistSnapshot, Histogram

GaugeSource = Callable[[], Dict]


class MetricsRegistry:

    def __init__(self, owner: str = ""):
        self.owner = owner
        self.hists: Dict[str, Histogram] = {}
        self.counters: Counter = Counter()
        self._sources: Dict[str, GaugeSource] = {}

    # -- recording -------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = Histogram()
        hist.observe(value)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def hist(self, name: str) -> Histogram:
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = Histogram()
        return hist

    # -- gauge sources ---------------------------------------------------

    def register_source(self, name: str, fn: GaugeSource) -> None:
        self._sources[name] = fn

    def gauges(self) -> Dict[str, Dict]:
        """Evaluate every registered source (live subsystem counters)."""
        return {name: fn() for name, fn in sorted(self._sources.items())}

    # -- reading ---------------------------------------------------------

    def percentiles(self, name: str) -> Optional[Dict]:
        hist = self.hists.get(name)
        return hist.to_dict() if hist is not None else None

    def latency_summary(self, prefix: str = "") -> Dict[str, Dict]:
        return {name: hist.to_dict()
                for name, hist in sorted(self.hists.items())
                if name.startswith(prefix)}

    def summary(self) -> Dict:
        return {
            "owner": self.owner,
            "counters": dict(sorted(self.counters.items())),
            "latency": self.latency_summary(),
            "gauges": self.gauges(),
        }

    def snapshot(self) -> "RegistrySnapshot":
        return RegistrySnapshot(
            hists={name: h.snapshot() for name, h in self.hists.items()},
            counters=Counter(self.counters),
        )


class RegistrySnapshot:
    """Point-in-time copy of a registry's histograms and counters."""

    def __init__(self, hists: Dict[str, HistSnapshot], counters: Counter):
        self.hists = hists
        self.counters = counters

    def diff(self, later: "RegistrySnapshot") -> "RegistrySnapshot":
        empty = None
        hists = {}
        for name, snap in later.hists.items():
            before = self.hists.get(name)
            if before is None:
                if empty is None:
                    empty = Histogram().snapshot()
                before = empty
            hists[name] = before.diff(snap)
        return RegistrySnapshot(
            hists=hists,
            counters=Counter({k: v - self.counters.get(k, 0)
                              for k, v in later.counters.items()
                              if v - self.counters.get(k, 0)}),
        )
