"""The flight recorder: builds the causal span tree for a whole cluster.

One tracer is shared by every site of a cluster (spans from all sites land
in one ordered list, ids from one counter).  Recording is observational
only — it never charges CPU, sends messages, adds yield points, or touches
the simulator RNG — so a run's virtual-time behaviour and message counts
are identical with tracing on or off, and identical seeds yield identical
span trees.

Instrumented code uses the begin/finish pair around a timed region::

    span = prev = None
    if tracer is not None and tracer.enabled:
        span, prev = tracer.begin("rpc:fs.open", "rpc", self.site_id)
    try:
        ...
    finally:
        if span is not None:
            tracer.finish(span, prev, status=status)

``begin`` parents the new span under the running task's context (or an
explicit ``parent_ctx``, e.g. a message header) and re-points the task at
the new span so nested work nests in the tree; ``finish`` restores it.
"""

from __future__ import annotations

import functools
import itertools
from typing import Dict, List, Optional, Tuple

from repro.obs.span import Span, SpanCtx


class Tracer:

    def __init__(self, sim, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.spans: List[Span] = []
        self.instants: List[Dict] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._instant_seq = itertools.count(1)
        self._by_id: Dict[int, Span] = {}

    # -- task context ----------------------------------------------------

    def current_ctx(self) -> Optional[SpanCtx]:
        task = self.sim.current_task
        return task.span_ctx if task is not None else None

    def set_ctx(self, ctx: Optional[SpanCtx]) -> None:
        task = self.sim.current_task
        if task is not None:
            task.span_ctx = ctx

    # -- spans -----------------------------------------------------------

    def begin(self, name: str, kind: str, site: Optional[int],
              parent_ctx: Optional[SpanCtx] = None,
              attrs: Optional[Dict] = None,
              inherit: bool = True) -> Tuple[Optional[Span],
                                             Optional[SpanCtx]]:
        """Open a span and make it the running task's context.

        Returns ``(span, previous_ctx)`` — pass both to :meth:`finish`.
        With ``parent_ctx`` unset the span parents under the current task
        context (``inherit=False`` forces a fresh root trace instead).
        """
        if not self.enabled:
            return (None, None)
        prev = self.current_ctx()
        if parent_ctx is None and inherit:
            parent_ctx = prev
        if parent_ctx is not None:
            trace_id, parent_id = parent_ctx
        else:
            trace_id, parent_id = next(self._trace_ids), None
        span = Span(span_id=next(self._span_ids), trace_id=trace_id,
                    parent_id=parent_id, name=name, kind=kind, site=site,
                    start=self.sim.now, attrs=dict(attrs) if attrs else {})
        self.spans.append(span)
        self._by_id[span.span_id] = span
        self.set_ctx(span.ctx)
        return (span, prev)

    def finish(self, span: Optional[Span], prev: Optional[SpanCtx],
               status: str = "ok") -> None:
        if span is None:
            return
        if span.end is None:
            span.end = self.sim.now
            span.status = status
        self.set_ctx(prev)

    def annotate(self, span: Optional[Span], key: str, value) -> None:
        if span is not None:
            span.attrs[key] = value

    def event(self, span: Optional[Span], name: str,
              attrs: Optional[Dict] = None) -> None:
        if span is not None:
            span.events.append((self.sim.now, name, attrs or {}))

    def event_on(self, ctx: Optional[SpanCtx], name: str,
                 attrs: Optional[Dict] = None) -> None:
        """Annotate the span a context names (e.g. from a message header)."""
        if not self.enabled or ctx is None:
            return
        span = self._by_id.get(ctx[1])
        if span is not None:
            span.events.append((self.sim.now, name, attrs or {}))

    # -- instants --------------------------------------------------------

    def instant(self, name: str, site: Optional[int] = None,
                attrs: Optional[Dict] = None) -> None:
        """A zero-duration timeline event (fault fired, epoch changed...)."""
        if not self.enabled:
            return
        self.instants.append({
            "type": "instant",
            "seq": next(self._instant_seq),
            "ts": self.sim.now,
            "name": name,
            "site": site,
            "attrs": attrs or {},
        })

    # -- queries (tests, export, inspection) -----------------------------

    def span(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def children(self, span_id: int) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def trace_spans(self, trace_id: int) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def roots(self, name_prefix: str = "") -> List[Span]:
        return [s for s in self.spans
                if s.parent_id is None and s.name.startswith(name_prefix)]

    def open_spans(self, site: Optional[int] = None,
                   kind: Optional[str] = None) -> List[Span]:
        """Spans begun but never finished.  At quiescence on a healthy
        site these are stuck work — the fuzz oracle's liveness signal
        (spans on a site that crashed die legitimately unfinished)."""
        return [s for s in self.spans if s.end is None
                and (site is None or s.site == site)
                and (kind is None or s.kind == kind)]


def traced_syscall(name: str, fn):
    """Wrap a ProcApi generator method with a syscall span + latency sample.

    Pure ``yield from`` delegation: no extra yield points, no CPU charges —
    the wrapped syscall's virtual-time behaviour is unchanged.
    """
    label = f"syscall.{name}"

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        site = self.site
        metrics = getattr(site, "metrics", None)
        tracer = getattr(site, "tracer", None)
        start = site.sim.now
        span = prev = None
        if tracer is not None and tracer.enabled:
            span, prev = tracer.begin(label, "syscall", site.site_id)
        status = "ok"
        try:
            result = yield from fn(self, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
            status = type(exc).__name__
            raise
        finally:
            if metrics is not None:
                metrics.observe(label, site.sim.now - start)
            load = getattr(site, "load", None)
            if load is not None and load.enabled:
                load.note_syscall(name, site.sim.now - start)
            if span is not None:
                tracer.finish(span, prev, status=status)
        return result

    return wrapper
