"""Cluster load and hotspot accounting: the measurement layer for CSS
sharding.

The ROADMAP's headline item — shard the CSS and hand the
synchronization-site role off on load — needs the system to *measure*
load first: which filegroup is hot, which inodes draw the traffic,
where each site's service demand goes, and how long divergence goes
undetected.  This module provides exactly those gauges:

* :class:`LoadAccountant` — one per site, fed from the syscall wrapper,
  the RPC serve path, and the CSS open/close handlers.  Keeps
  rolling-window syscall/RPC rates, per-RPC-op service demand,
  per-filegroup CSS-role utilization, and per-inode hotness through a
  bounded top-K *space-saving* sketch (Metwally et al.) so memory stays
  O(K) no matter how many files a workload touches.
* :class:`ConvergenceMonitor` — one per cluster, fed by the fault
  injector (fault vtimes) and the scrub/recovery managers (detection
  and repair vtimes); the difference is the divergence
  detection-latency metric that the steady-state scrub scheduling item
  will optimize.
* :func:`load_records` — deterministic ``load`` / ``detection`` records
  appended to the JSONL export stream (validated by
  ``cli trace --check``).
* :func:`format_top` — the byte-deterministic cluster status report
  behind ``python -m repro.cli top``.

Like the rest of ``repro.obs``, accounting is observational only: it
never charges CPU, sends messages, adds yield points, or touches the
simulator RNG, so virtual time and message counts are byte-identical
with ``CostModel.load_accounting`` on or off (held to exactly zero
delta by the T21 benchmark).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.histogram import Histogram


class SpaceSaving:
    """Bounded top-K heavy-hitter sketch (the *space-saving* algorithm).

    Tracks at most ``capacity`` keys.  A new key beyond capacity evicts
    the current minimum and inherits its count as the new entry's error
    bound, so every reported count over-estimates by at most ``error``.
    All tie-breaks are on the key itself, keeping the sketch — and the
    ``cli top`` tables built from it — deterministic for a given
    observation sequence.
    """

    __slots__ = ("capacity", "counts", "errors")

    def __init__(self, capacity: int = 32):
        self.capacity = max(1, capacity)
        self.counts: Dict = {}
        self.errors: Dict = {}

    def observe(self, key, weight: int = 1) -> None:
        counts = self.counts
        if key in counts:
            counts[key] += weight
            return
        if len(counts) < self.capacity:
            counts[key] = weight
            self.errors[key] = 0
            return
        victim = min(counts, key=lambda k: (counts[k], k))
        floor = counts.pop(victim)
        self.errors.pop(victim)
        counts[key] = floor + weight
        self.errors[key] = floor

    def top(self, k: Optional[int] = None) -> List[Tuple]:
        """``[(key, count, error), ...]`` sorted by count desc, key asc."""
        ranked = sorted(self.counts,
                        key=lambda key: (-self.counts[key], key))
        if k is not None:
            ranked = ranked[:k]
        return [(key, self.counts[key], self.errors[key]) for key in ranked]

    def __len__(self) -> int:
        return len(self.counts)


def merge_sketches(sketches: Iterable["SpaceSaving"],
                   capacity: int = 32) -> "SpaceSaving":
    """Cluster-wide hotness: sum per-key counts across per-site sketches
    (error bounds add, staying a valid over-estimate bound)."""
    merged = SpaceSaving(capacity)
    totals: Dict = {}
    errors: Dict = {}
    for sketch in sketches:
        for key, count in sketch.counts.items():
            totals[key] = totals.get(key, 0) + count
            errors[key] = errors.get(key, 0) + sketch.errors[key]
    for key in sorted(totals, key=lambda k: (-totals[k], k))[:capacity]:
        merged.counts[key] = totals[key]
        merged.errors[key] = errors[key]
    return merged


class RollingWindow:
    """Virtual-time-bucketed event counter: a rate over the last
    ``buckets * width`` vtime, computed purely from the deterministic
    clock (no wall time, no decay constants)."""

    __slots__ = ("sim", "width", "buckets", "_counts", "total")

    def __init__(self, sim, width: float = 2000.0, buckets: int = 8):
        self.sim = sim
        self.width = width
        self.buckets = buckets
        self._counts: Dict[int, float] = {}
        self.total = 0.0

    def add(self, amount: float = 1.0) -> None:
        idx = int(self.sim.now // self.width)
        self._counts[idx] = self._counts.get(idx, 0.0) + amount
        self.total += amount
        if len(self._counts) > self.buckets:
            floor = idx - self.buckets + 1
            for stale in [i for i in self._counts if i < floor]:
                del self._counts[stale]

    def windowed(self) -> float:
        """Total over the live window ending now."""
        floor = int(self.sim.now // self.width) - self.buckets + 1
        return sum(v for i, v in self._counts.items() if i >= floor)

    def rate(self) -> float:
        """Events per vtime unit over the live window."""
        span = min(max(self.sim.now, self.width),
                   self.width * self.buckets)
        return self.windowed() / span


class LoadAccountant:
    """Per-site load accounting; attached as ``site.load`` and exposed
    through the site registry's ``load`` gauge source."""

    def __init__(self, site, hot_capacity: int = 32):
        self.site = site
        self.enabled = site.cost.load_accounting
        sim = site.sim
        self.syscall_window = RollingWindow(sim)
        self.rpc_window = RollingWindow(sim)
        # op -> [served count, service vtime] (server-side demand).
        self.rpc_demand: Dict[str, List[float]] = {}
        self.hot_inodes = SpaceSaving(hot_capacity)
        # gfs -> [css ops handled, busy vtime] while this site holds the
        # CSS role for the filegroup.
        self.css_demand: Dict[int, List[float]] = {}

    # -- recording (call sites gate on ``enabled``) ----------------------

    def note_syscall(self, name: str, duration: float) -> None:
        self.syscall_window.add()

    def note_rpc_served(self, op: str, service_time: float) -> None:
        self.rpc_window.add()
        cell = self.rpc_demand.get(op)
        if cell is None:
            cell = self.rpc_demand[op] = [0, 0.0]
        cell[0] += 1
        cell[1] += service_time

    def note_inode(self, gfile, weight: int = 1) -> None:
        self.hot_inodes.observe(tuple(gfile), weight)

    def note_css(self, gfs: int, service_time: float) -> None:
        cell = self.css_demand.get(gfs)
        if cell is None:
            cell = self.css_demand[gfs] = [0, 0.0]
        cell[0] += 1
        cell[1] += service_time

    # -- reading ---------------------------------------------------------

    def _queues(self) -> Dict[str, int]:
        fs = getattr(self.site, "fs", None)
        return {
            "rpc_outstanding": len(self.site._pending),
            "propagation": len(fs.propagator.pending())
            if fs is not None else 0,
            "staged_pages": sum(len(h.pending_writes)
                                for h in fs.us.values())
            if fs is not None else 0,
        }

    def _replication(self) -> Dict[str, float]:
        fs = getattr(self.site, "fs", None)
        if fs is None:
            return {"pending": 0, "oldest_lag": 0.0, "pulled": 0}
        prop = fs.propagator
        ages = prop.lag_ages()
        return {
            "pending": len(ages),
            "oldest_lag": round(max(ages), 6) if ages else 0.0,
            "pulled": prop.stats.pulls,
        }

    def gauges(self) -> Dict:
        """Flat scalars for the registry gauge source."""
        queues = self._queues()
        repl = self._replication()
        return {
            "syscalls": int(self.syscall_window.total),
            "syscall_rate": round(self.syscall_window.rate(), 6),
            "rpcs_served": int(self.rpc_window.total),
            "rpc_rate": round(self.rpc_window.rate(), 6),
            "css_busy": round(sum(c[1]
                                  for c in self.css_demand.values()), 6),
            "hot_tracked": len(self.hot_inodes),
            "prop_backlog": queues["propagation"],
            "replication_lag": repl["oldest_lag"],
        }

    def snapshot(self) -> Dict:
        """The full per-site load record exported into the JSONL
        stream.  Deterministic: every mapping is key-sorted."""
        now = max(self.site.sim.now, 1.0)
        return {
            "window": [self.syscall_window.width,
                       self.syscall_window.buckets],
            "syscalls": int(self.syscall_window.total),
            "syscall_rate": round(self.syscall_window.rate(), 6),
            "rpcs": int(self.rpc_window.total),
            "rpc_rate": round(self.rpc_window.rate(), 6),
            "rpc_ops": {op: {"count": int(cell[0]),
                             "busy": round(cell[1], 6)}
                        for op, cell in sorted(self.rpc_demand.items())},
            "hot_inodes": [[list(key), int(count), int(err)]
                           for key, count, err in self.hot_inodes.top(10)],
            "css": {str(gfs): {"opens": int(cell[0]),
                               "busy": round(cell[1], 6),
                               "util": round(cell[1] / now, 6)}
                    for gfs, cell in sorted(self.css_demand.items())},
            "queues": self._queues(),
            "replication": self._replication(),
        }


class ConvergenceMonitor:
    """Divergence detection latency: fault-injection vtime to the vtime
    the scrub or recovery machinery detected / repaired the divergence.

    One monitor per cluster (like the tracer): the injector notes every
    fault action, the scrub notes each classified mismatch, and recovery
    notes each repair it performs.  The latency of an event is measured
    from the most recent fault at or before it — the deterministic
    analogue of "how long did the damage go unnoticed".
    """

    def __init__(self, sim, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.faults: List[Tuple[float, str]] = []
        self.events: List[Dict] = []
        self.detection_latency = Histogram()
        self._seq = itertools.count(1)

    def note_fault(self, kind: str) -> None:
        if self.enabled:
            self.faults.append((self.sim.now, kind))

    def _note(self, event: str, kind: str, site: Optional[int],
              gfile) -> None:
        if not self.enabled:
            return
        fault_ts = self.faults[-1][0] if self.faults else None
        latency = None
        if fault_ts is not None:
            latency = round(self.sim.now - fault_ts, 6)
            if event == "detect":
                self.detection_latency.observe(latency)
        self.events.append({
            "type": "detection",
            "seq": next(self._seq),
            "ts": self.sim.now,
            "event": event,
            "kind": kind,
            "site": site,
            "gfile": list(gfile) if gfile is not None else None,
            "fault_ts": fault_ts,
            "latency": latency,
        })

    def note_detection(self, kind: str, site: Optional[int] = None,
                       gfile=None) -> None:
        """Scrub/recovery classified a divergence."""
        self._note("detect", kind, site, gfile)

    def note_repair(self, kind: str, site: Optional[int] = None,
                    gfile=None) -> None:
        """A divergence was actually repaired (pull installed, conflict
        flagged, copy retired...)."""
        self._note("repair", kind, site, gfile)

    def detections(self) -> List[Dict]:
        return [e for e in self.events if e["event"] == "detect"]

    def repairs(self) -> List[Dict]:
        return [e for e in self.events if e["event"] == "repair"]

    def records(self) -> List[Dict]:
        return [dict(e) for e in self.events]

    def summary(self) -> Dict:
        return {
            "faults": len(self.faults),
            "detections": len(self.detections()),
            "repairs": len(self.repairs()),
            "detection_latency": self.detection_latency.to_dict(),
        }


def load_records(cluster) -> List[Dict]:
    """Deterministic ``load`` + ``detection`` records for the JSONL
    export stream (appended after the span/instant records)."""
    records: List[Dict] = []
    for site in cluster.sites:
        acct = getattr(site, "load", None)
        if acct is None or not acct.enabled:
            continue
        record = {"type": "load", "site": site.site_id,
                  "ts": cluster.sim.now}
        record.update(acct.snapshot())
        records.append(record)
    monitor = getattr(cluster, "convergence", None)
    if monitor is not None and monitor.enabled:
        records.extend(monitor.records())
    return records


# ----------------------------------------------------------------------
# The ``cli top`` report
# ----------------------------------------------------------------------

def cluster_load_report(cluster) -> Dict:
    """Aggregate the per-site accountants into one cluster view."""
    accts = [getattr(s, "load", None) for s in cluster.sites]
    accts = [a for a in accts if a is not None and a.enabled]
    hot = merge_sketches([a.hot_inodes for a in accts])
    css_rank: Dict[int, Dict] = {}
    now = max(cluster.sim.now, 1.0)
    for site in cluster.sites:
        acct = getattr(site, "load", None)
        if acct is None or not acct.enabled:
            continue
        for gfs, cell in acct.css_demand.items():
            entry = css_rank.setdefault(
                gfs, {"gfs": gfs, "site": site.site_id,
                      "opens": 0, "busy": 0.0})
            entry["opens"] += int(cell[0])
            entry["busy"] += cell[1]
    for entry in css_rank.values():
        entry["busy"] = round(entry["busy"], 6)
        entry["util"] = round(entry["busy"] / now, 6)
    conflicts = sorted({
        (gfs, ino)
        for site in cluster.sites
        for gfs, pack in site.packs.items()
        for ino, inode in pack.inodes.items()
        if inode.conflict and not inode.deleted})
    scrub_backlog = sum(len(s.scrub._active) for s in cluster.sites
                        if s.scrub is not None)
    recovery_backlog = sum(
        len(inos) for s in cluster.sites if s.recovery is not None
        for inos in s.recovery.pending.values())
    prop_backlog = sum(len(s.fs.propagator.pending())
                       for s in cluster.sites if s.fs is not None)
    monitor = getattr(cluster, "convergence", None)
    return {
        "vtime": round(cluster.sim.now, 2),
        "messages": cluster.stats.total_messages,
        "sites": [dict(site=s.site_id,
                       up=s.up,
                       cpu_used=round(s.cpu_used, 2),
                       **(s.load.gauges() if getattr(s, "load", None)
                          is not None and s.load.enabled else {}))
                  for s in cluster.sites],
        "hot_inodes": [[list(key), int(count), int(err)]
                       for key, count, err in hot.top(10)],
        "css": sorted(css_rank.values(),
                      key=lambda e: (-e["opens"], e["gfs"])),
        "backlog": {
            "conflicts": len(conflicts),
            "scrub_active": scrub_backlog,
            "recovery_pending": recovery_backlog,
            "propagation": prop_backlog,
        },
        "convergence": monitor.summary() if monitor is not None else {},
    }


def format_top(cluster) -> str:
    """Byte-deterministic cluster status report (``python -m repro.cli
    top``): per-site rates, hottest inodes, CSS load ranking, backlog."""
    report = cluster_load_report(cluster)
    lines: List[str] = [
        f"LOCUS top — vtime={report['vtime']} "
        f"sites={len(report['sites'])} msgs={report['messages']}",
        "-- sites --",
        f"  {'site':<5} {'state':<5} {'syscalls':>9} {'sc_rate':>9} "
        f"{'rpcs_srv':>9} {'rpc_rate':>9} {'cpu_used':>10} {'prop_q':>6}",
    ]
    for s in report["sites"]:
        lines.append(
            f"  {s['site']:<5} {'up' if s['up'] else 'DOWN':<5} "
            f"{s.get('syscalls', 0):>9} {s.get('syscall_rate', 0.0):>9.4f} "
            f"{s.get('rpcs_served', 0):>9} {s.get('rpc_rate', 0.0):>9.4f} "
            f"{s['cpu_used']:>10.1f} {s.get('prop_backlog', 0):>6}")
    lines.append("-- hottest inodes (space-saving top-K) --")
    lines.append(f"  {'rank':<5} {'gfile':<12} {'opens':>6} {'err':>4}")
    for rank, (key, count, err) in enumerate(
            ((tuple(k), c, e) for k, c, e in report["hot_inodes"]),
            start=1):
        lines.append(f"  {rank:<5} {str(key):<12} {count:>6} {err:>4}")
    lines.append("-- CSS load by filegroup --")
    lines.append(f"  {'gfs':<4} {'css':<4} {'opens':>6} {'busy':>10} "
                 f"{'util':>8}")
    for entry in report["css"]:
        lines.append(f"  {entry['gfs']:<4} {entry['site']:<4} "
                     f"{entry['opens']:>6} {entry['busy']:>10.1f} "
                     f"{entry['util']:>8.4f}")
    backlog = report["backlog"]
    lines.append(
        f"backlog: conflicts={backlog['conflicts']} "
        f"scrub_active={backlog['scrub_active']} "
        f"recovery_pending={backlog['recovery_pending']} "
        f"propagation={backlog['propagation']}")
    conv = report["convergence"]
    if conv:
        lat = conv["detection_latency"]
        lines.append(
            f"convergence: faults={conv['faults']} "
            f"detections={conv['detections']} repairs={conv['repairs']} "
            f"detect_p50={lat['p50']} detect_p99={lat['p99']}")
    return "\n".join(lines)
