"""Fixed-bucket latency histograms for the flight recorder.

The bucket ladder is a 1-2-5 geometric series over virtual-time units.
Percentiles are reported as the upper edge of the smallest bucket whose
cumulative count reaches the requested rank — a pure function of the
bucket counts, so the same run always reports the same p50/p95/p99 no
matter the platform or insertion order.  That determinism is the whole
point: replaying a seed must produce byte-identical exports.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


def _ladder() -> Tuple[float, ...]:
    """1-2-5 series from 0.1 to 100000 virtual-time units."""
    edges: List[float] = []
    scale = 0.1
    while scale <= 10000.0:
        for mult in (1.0, 2.0, 5.0):
            edges.append(scale * mult)
        scale *= 10.0
    edges.append(100000.0)
    return tuple(edges)


BUCKET_EDGES: Tuple[float, ...] = _ladder()   # upper edges; +1 overflow bucket


class Histogram:
    """Counts of observations per fixed bucket, plus running aggregates."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self):
        self.counts: List[int] = [0] * (len(BUCKET_EDGES) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        idx = bisect_left(BUCKET_EDGES, value)
        self.counts[idx] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper edge of the bucket holding the p-th percentile (0 < p <= 100).

        The overflow bucket reports the top finite edge — observations past
        the ladder are already pathological enough to flag at that value.
        """
        return percentile_of(self.counts, self.count, p)

    def snapshot(self) -> "HistSnapshot":
        return HistSnapshot(counts=tuple(self.counts), count=self.count,
                            total=self.total)

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


def percentile_of(counts: Sequence[int], count: int, p: float) -> float:
    if count <= 0:
        return 0.0
    rank = max(1, -(-int(p * count) // 100))   # ceil(p*count/100), >= 1
    seen = 0
    for idx, n in enumerate(counts):
        seen += n
        if seen >= rank:
            return BUCKET_EDGES[min(idx, len(BUCKET_EDGES) - 1)]
    return BUCKET_EDGES[-1]


@dataclass(frozen=True)
class HistSnapshot:
    """Immutable point-in-time copy; ``diff`` gives the window between two."""

    counts: Tuple[int, ...]
    count: int
    total: float

    def diff(self, later: "HistSnapshot") -> "HistSnapshot":
        return HistSnapshot(
            counts=tuple(b - a for a, b in zip(self.counts, later.counts)),
            count=later.count - self.count,
            total=later.total - self.total,
        )

    def percentile(self, p: float) -> float:
        return percentile_of(self.counts, self.count, p)

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "mean": round(self.total / self.count, 6) if self.count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


def merge_snapshots(snaps: Sequence[HistSnapshot]) -> HistSnapshot:
    """Sum bucket counts across sites (cluster-wide percentile view).

    An empty sequence merges to an empty snapshot; snapshots whose bucket
    ladders disagree (counts tuples of different length — e.g. mixing
    exports from different builds) are rejected rather than silently
    zipped short.
    """
    counts = [0] * (len(BUCKET_EDGES) + 1)
    count = 0
    total = 0.0
    for s in snaps:
        if len(s.counts) != len(counts):
            raise ValueError(
                f"mismatched bucket ladder: snapshot has {len(s.counts)} "
                f"buckets, expected {len(counts)}")
        for i, n in enumerate(s.counts):
            counts[i] += n
        count += s.count
        total += s.total
    return HistSnapshot(counts=tuple(counts), count=count, total=total)


def merge_windows(windows: Sequence[Mapping[str, HistSnapshot]],
                  prefix: str = "") -> Dict[str, Dict]:
    """Cluster-wide windowed percentile merge: the public form of what the
    benchmark harness does around every measured block.

    ``windows`` is one mapping per site of metric name → windowed
    :class:`HistSnapshot` (typically ``RegistrySnapshot.diff(...).hists``);
    the result maps each name matching ``prefix`` to the merged
    ``to_dict()`` summary.  Sites missing a metric contribute nothing for
    it (an empty site list or all-empty windows merge to ``{}``);
    mismatched bucket ladders raise like :func:`merge_snapshots`.
    """
    names = sorted({name for w in windows for name in w
                    if name.startswith(prefix)})
    out: Dict[str, Dict] = {}
    for name in names:
        merged = merge_snapshots([w[name] for w in windows if name in w])
        if merged.count:
            out[name] = merged.to_dict()
    return out
