"""Causal spans: one timed region of kernel work on one site.

A span's context is the ``(trace_id, span_id)`` pair.  The context rides
along three transports to form the causal tree:

* task-level — every :class:`~repro.sim.task.Task` carries ``span_ctx``,
  inherited at spawn time, so nested kernel procedures parent correctly;
* message headers — :class:`~repro.net.message.Message.trace_ctx` carries
  the caller's context to the serving site (and back on the response);
* explicit hand-off — failover and recovery paths re-anchor work onto the
  span that caused it.

Span ids are allocated from one monotonic counter per tracer, so the same
seed and fault plan always numbers the tree identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# (trace_id, span_id) — what tasks and message headers actually carry.
SpanCtx = Tuple[int, int]


@dataclass
class Span:
    span_id: int
    trace_id: int
    parent_id: Optional[int]       # span_id of the parent, None at a root
    name: str                      # e.g. "syscall.open", "rpc:fs.read_page"
    kind: str                      # syscall | rpc | handler | fs | recovery
    site: Optional[int]            # executing site (None for cluster-level)
    start: float
    end: Optional[float] = None
    status: str = "ok"
    attrs: Dict = field(default_factory=dict)
    # Timed annotations within the span: (vtime, name, attrs).
    events: List[Tuple[float, str, Dict]] = field(default_factory=list)

    @property
    def ctx(self) -> SpanCtx:
        return (self.trace_id, self.span_id)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict:
        return {
            "type": "span",
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "site": self.site,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": self.attrs,
            "events": [list(e) for e in self.events],
        }

    def __repr__(self) -> str:
        return (f"<Span #{self.span_id} trace={self.trace_id} {self.name} "
                f"site={self.site} [{self.start}..{self.end}] {self.status}>")
