"""Cluster-wide flight recorder: causal tracing, latency histograms, export.

See docs/OBSERVABILITY.md for the span model and export formats.
"""

from repro.obs.histogram import (BUCKET_EDGES, HistSnapshot, Histogram,
                                 merge_snapshots)
from repro.obs.registry import MetricsRegistry, RegistrySnapshot
from repro.obs.span import Span, SpanCtx
from repro.obs.tracer import Tracer, traced_syscall
from repro.obs.export import (causal_chains, export_chrome, export_jsonl,
                              trace_records, validate_trace_jsonl)

__all__ = [
    "BUCKET_EDGES", "Histogram", "HistSnapshot", "merge_snapshots",
    "MetricsRegistry", "RegistrySnapshot", "Span", "SpanCtx", "Tracer",
    "traced_syscall", "causal_chains", "export_chrome", "export_jsonl",
    "trace_records", "validate_trace_jsonl",
]
