"""Cluster-wide flight recorder: causal tracing, latency histograms,
critical-path analysis, load/hotspot accounting, export.

See docs/OBSERVABILITY.md for the span model, the blame-table
decomposition, the load gauges and the export formats.
"""

from repro.obs.histogram import (BUCKET_EDGES, HistSnapshot, Histogram,
                                 merge_snapshots, merge_windows)
from repro.obs.registry import MetricsRegistry, RegistrySnapshot
from repro.obs.span import Span, SpanCtx
from repro.obs.tracer import Tracer, traced_syscall
from repro.obs.export import (causal_chains, export_chrome, export_jsonl,
                              trace_records, validate_trace_jsonl)
from repro.obs.critpath import (CritPathReport, analyze, analyze_spans,
                                format_blame)
from repro.obs.load import (ConvergenceMonitor, LoadAccountant, SpaceSaving,
                            cluster_load_report, format_top, load_records,
                            merge_sketches)

__all__ = [
    "BUCKET_EDGES", "Histogram", "HistSnapshot", "merge_snapshots",
    "merge_windows", "MetricsRegistry", "RegistrySnapshot", "Span",
    "SpanCtx", "Tracer", "traced_syscall", "causal_chains", "export_chrome",
    "export_jsonl", "trace_records", "validate_trace_jsonl",
    "CritPathReport", "analyze", "analyze_spans", "format_blame",
    "ConvergenceMonitor", "LoadAccountant", "SpaceSaving",
    "cluster_load_report", "format_top", "load_records", "merge_sketches",
]
