"""Cost model and tunables for the simulated LOCUS network.

All costs are in abstract microsecond-like time units charged to the virtual
clock.  The default calibration reproduces the comparative claims of the
paper rather than absolute VAX-11/750 timings:

* Local page access (buffer miss) costs ``cpu_syscall + disk_read``.
* Remote page access adds two message sends and two receives, calibrated so
  the total *CPU* overhead is about twice the local case (paper section
  2.2.1, footnote: "the cpu overhead of accessing a remote page is twice
  local access").  Packet disassembly/reassembly being the dominant software
  cost is explicitly called out in section 6.
* A remote open costs significantly more than a local one because it runs the
  four-message US/CSS/SS protocol of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class CostModel:
    """Virtual-time costs charged by the kernel and network layers."""

    # CPU costs (charged to the executing site's clock and cpu accounting)
    cpu_syscall: float = 1.0        # base cost of syscall entry/processing
    cpu_msg: float = 2.5            # packet (dis)assembly per message send/recv
    cpu_page_copy: float = 0.2      # copying one page kernel<->user space
    cpu_dir_entry: float = 0.02     # scanning one directory entry
    cpu_process_page: float = 0.5   # copying one image page during fork/exec

    # Disk costs (charged at the storage site)
    disk_read: float = 10.0         # read one block from the storage medium
    disk_write: float = 10.0        # write one block to the storage medium
    buffer_hit: float = 0.1         # buffer-cache hit

    # Network costs (elapsed wire time; not CPU)
    net_latency: float = 2.0        # per-message propagation delay
    net_per_byte: float = 0.002     # serialization delay per payload byte

    # Geometry
    page_size: int = 1024           # bytes per logical page / disk block
    buffer_pages: int = 256         # per-site buffer cache capacity (pages)

    # Protocol behaviour
    readahead: bool = True          # one-page readahead on sequential reads
    delta_propagation: bool = True  # pull only changed pages when sound
    # Hot-path optimizations (each one a measurable ablation; the defaults
    # keep the paper's exact per-message protocols, like pathname_shipping):
    # cache decoded directory entries keyed by committed version vector so
    # repeat pathname components skip the open/read/decode/close cycle.
    name_cache: bool = False
    name_cache_entries: int = 256   # per-site name cache capacity (dirs)
    # Batched page transfer: up to this many pages per fs.read_pages /
    # fs.pull_read_range message (1 = the paper's one-page-per-message
    # protocol).  Message size stays the sum of payload bytes, so the wire
    # model keeps charging honestly for the data moved.
    batch_pages: int = 1
    readahead_window: int = 1       # minimum pages fetched ahead (floor)
    # Adaptive readahead cap: the window grows with the observed sequential
    # run length of each open file (1, 2, 3, ... pages ahead) up to this
    # many pages, and collapses back to the floor on any non-sequential
    # access.  Random workloads therefore never over-fetch while long scans
    # converge to full-window prefetch.
    readahead_max: int = 8
    pull_pipeline: int = 1          # concurrent propagation-pull requests
    # Batched write/commit flush: stage dirty pages at the US and ship them
    # to a remote SS in fs.write_pages messages of up to batch_pages pages
    # (one-way, like fs.write_page), flushing before every ordering point
    # (commit, truncate, attribute change, close).  The commit request then
    # carries the number of page writes shipped so a partially delivered
    # batch can never half-commit.  Single-page flushes keep the paper's
    # exact fs.write_page message.
    batch_writes: bool = False
    # Manifest-based heal pull: when the propagation queue holds several
    # requests (a recovery sweep notifies once per behind file), ask each
    # source for all of its files' attributes in one fs.pull_manifest RPC
    # instead of one fs.pull_open round trip per file, then run up to
    # pull_pipeline per-file pulls concurrently.  Files the manifest cannot
    # vouch for fall back to the paper's per-file protocol.
    pull_manifest: bool = False
    merge_sequential_poll: bool = False  # ablation: poll sites one by one
    # Ablation: disable the CSS single-open-for-modification policy; with
    # replication and no global synchronization, concurrent writers diverge
    # (why the CSS exists, section 2.2.1).
    enforce_single_writer: bool = True
    # Extension the paper was investigating (section 2.3.4): "ship partial
    # pathnames to foreign sites so they can do the expansion locally,
    # avoiding remote directory opens and network transmission of directory
    # pages" — resuming at each site-change, since "the SS for each
    # intermediate directory could be different".
    pathname_shipping: bool = False
    msg_header_bytes: int = 64      # wire overhead per message

    # Remote-operation supervision (ISSUE 3).  With the flag on, idempotent
    # remote calls get a per-op timeout plus bounded deterministic
    # exponential backoff, and the US read path fails over to another pack
    # copy when its SS dies mid-call (paper sections 2.3.2 and 5.6: "the
    # system will substitute a different copy").  Off reproduces the paper's
    # unsupervised calls: any mid-call failure surfaces to the caller.
    # Fault-free runs are identical either way — no retry ever fires and
    # timeout events are cancelled without advancing the clock.
    supervise_remote_ops: bool = True
    rpc_timeout: float = 400.0      # per-op backstop for idempotent RPCs
    rpc_retries: int = 3            # bounded retry / failover attempts
    rpc_backoff: float = 8.0        # base of the exponential retry backoff
    # Exactly-once mutating syscalls (ISSUE 8).  With the flag on, every
    # mutating RPC (commit, create, css_open/close) carries a
    # ``(client_id, op_seq)`` stamp and the CSS and SS keep a bounded
    # per-client idempotency ledger: a retried or failed-over request whose
    # first attempt already applied replays the recorded reply instead of
    # re-executing.  That makes the non-idempotent write path safe to retry
    # under supervision, lets open-for-write re-home to a surviving replica
    # mid-storm (staged shadow pages are re-staged at the new SS), and
    # retires the merge conflict window: the CSS refuses writer opens with
    # EWOULDCONFLICT while a file is queued for reconciliation.  Stamps
    # ride the header slots excluded from the wire-size model, and on
    # fault-free runs no retry, replay, or refusal ever fires, so flag-off
    # post-state is byte-identical.
    exactly_once_writes: bool = True
    ledger_window: int = 16         # memoized replies retained per client
    # Adaptive flush sizing for batch_writes: staged dirty pages also flush
    # when they have been sitting for this much virtual time, so a slow
    # writer's pages are not hostage to the next ordering point (0 = only
    # full batches and ordering points flush).
    write_flush_deadline: float = 0.0

    # Flight recorder (ISSUE 5).  With the flag on, every syscall, RPC and
    # message handler records a causal span and a virtual-time latency
    # sample (repro.obs); trace context rides message headers in a field
    # excluded from the wire-size model, recording charges no CPU and adds
    # no yield points, so virtual time and message counts are identical
    # with tracing on or off.  Off leaves only the always-on metrics
    # registry (plain counter/histogram updates).
    trace_enabled: bool = True

    # Load / hotspot accounting (ISSUE 10).  With the flag on, each site
    # keeps rolling-window syscall and RPC rates, per-RPC-op service
    # demand, per-filegroup CSS-role utilization and a bounded top-K
    # (space-saving) per-inode hotness sketch (repro.obs.load), the
    # propagator records replication lag, and the cluster-wide
    # ConvergenceMonitor measures divergence detection latency.  Like
    # tracing, accounting is purely observational — it never charges CPU,
    # sends messages, adds yield points or touches the simulator RNG —
    # so virtual time and message counts are byte-identical with the flag
    # on or off (held to zero delta by the T21 benchmark).
    load_accounting: bool = True

    # Anti-entropy scrub (ISSUE 9).  After a partition merge or recovery
    # sweep, each CSS sweeps the filegroups it synchronizes: every pack
    # holder returns a batched (version vector, content digest) summary
    # over one fs.scrub_digest RPC, and mismatches are classified and
    # repaired — a dominated copy is pulled up to date through the normal
    # propagation machinery, equal-vv digest skew is flagged as a conflict
    # (or re-merged, for directories), and a copy a pack stores without
    # advertising is retired.  The scrub only ever runs after a heal or
    # merge, never in fault-free steady state, so flag-off runs are
    # byte-identical when no fault fires.
    scrub_enabled: bool = True
    scrub_rounds: int = 4           # max sweep rounds before giving up
    scrub_interval: float = 150.0   # virtual-time delay between rounds

    # Reconfiguration timers
    poll_timeout: float = 50.0      # RPC poll timeout used by reconfiguration
    merge_long_timeout: float = 200.0   # while expected sites missing
    merge_short_timeout: float = 40.0   # after all believed-up sites replied
    watchdog_interval: float = 100.0    # passive-site check on active site

    def message_delay(self, nbytes: int) -> float:
        """Wire time for a message carrying ``nbytes`` of payload."""
        return self.net_latency + (nbytes + self.msg_header_bytes) * self.net_per_byte

    def with_overrides(self, **kw) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)


@dataclass
class ClusterConfig:
    """Static configuration for building a :class:`~repro.core.cluster.LocusCluster`."""

    n_sites: int = 3
    seed: int = 0
    cost: CostModel = field(default_factory=CostModel)
    # Event-loop scheduler: "calendar" (bucketed calendar queue, the
    # default) or "heap" (the pre-overhaul single global heap, kept as the
    # T18 benchmark's measuring stick).  Both produce the identical event
    # schedule; they differ only in wall-clock throughput.
    sim_kernel: str = "calendar"
    # Sites holding a physical container (pack) of the root filegroup.
    # ``None`` means every site stores a pack, the fully replicated default.
    root_pack_sites: "list[int] | None" = None
    blocks_per_pack: int = 1 << 16
    max_open_files: int = 64

    def resolved_root_packs(self) -> "list[int]":
        if self.root_pack_sites is None:
            return list(range(self.n_sites))
        return list(self.root_pack_sites)
