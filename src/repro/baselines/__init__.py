"""Comparison baselines.

* :mod:`repro.baselines.unixfs` — a conventional single-machine Unix
  filesystem on the same storage substrate and cost model, for the paper's
  claim that "when resources are local, access is no more expensive than on
  a conventional Unix system" (section 2.1).
* :mod:`repro.baselines.layered` — a traditional layered file-transfer
  protocol (whole-file staging, per-packet acknowledgements, a multi-layer
  protocol stack), for the claim that LOCUS remote access is "dramatically
  better than traditional layered file transfer and remote terminal
  protocols permit" (section 2.1); the footnote in 2.3.3 attributes LOCUS's
  performance to the *absence* of "multilayered support and error handling,
  such as suggested by the ISO standard".
"""

from repro.baselines.unixfs import UnixFs
from repro.baselines.layered import LayeredTransferService

__all__ = ["UnixFs", "LayeredTransferService"]
