"""Traditional layered file-transfer remote access baseline.

Models the pre-LOCUS way of using a remote file: establish a session through
a multi-layer protocol stack, *stage the whole file across*, operate on the
local copy, and (if modified) ship the whole file back.  Each packet pays
per-layer processing at both ends plus a protocol-level acknowledgement
round trip — exactly the "multilayered support and error handling, such as
suggested by the ISO standard" whose absence the paper credits for LOCUS's
performance (section 2.3.3 footnote).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.errors import ENOENT

# Session + transport + presentation round trips before any data moves.
HANDSHAKE_ROUNDTRIPS = 3
# Protocol layers each packet traverses at each end.
PROTOCOL_LAYERS = 4


@dataclass
class TransferStats:
    files_fetched: int = 0
    files_written_back: int = 0
    pages_transferred: int = 0
    handshakes: int = 0


class LayeredTransferService:
    """Installs 'layered protocol' handlers on every site of a cluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.stats = TransferStats()
        for site in cluster.sites:
            site.register_handler("lay.handshake", self._h_handshake)
            site.register_handler("lay.get_meta", self._h_get_meta)
            site.register_handler("lay.get_page", self._h_get_page)
            site.register_handler("lay.put_page", self._h_put_page)

    # -- server side --------------------------------------------------------

    def _h_handshake(self, src: int, p: dict) -> Generator:
        site = self.cluster.site(p["server"])
        yield from site.cpu(site.cost.cpu_msg * PROTOCOL_LAYERS)
        return {"session": True}

    def _meta(self, server: int, gfile):
        pack = self.cluster.site(server).packs.get(gfile[0])
        inode = pack.get_inode(gfile[1]) if pack else None
        if inode is None or not inode.has_data:
            raise ENOENT(f"{gfile} not stored at site {server}")
        return inode

    def _h_get_meta(self, src: int, p: dict) -> Generator:
        inode = self._meta(p["server"], p["gfile"])
        site = self.cluster.site(p["server"])
        yield from site.cpu(site.cost.cpu_msg * PROTOCOL_LAYERS)
        return {"size": inode.size}

    def _h_get_page(self, src: int, p: dict) -> Generator:
        site = self.cluster.site(p["server"])
        inode = self._meta(p["server"], p["gfile"])
        page = p["page"]
        blockno = inode.pages[page] if page < len(inode.pages) else None
        pack = site.packs[p["gfile"][0]]
        data = pack.read_block(blockno) if blockno is not None else b""
        yield from site.cpu(site.cost.disk_read)
        # Per-layer packetization cost at the server.
        yield from site.cpu(site.cost.cpu_msg * PROTOCOL_LAYERS)
        return data

    def _h_put_page(self, src: int, p: dict) -> Generator:
        site = self.cluster.site(p["server"])
        yield from site.cpu(site.cost.cpu_msg * PROTOCOL_LAYERS)
        # The baseline writes in place (no shadow atomicity!).
        pack = site.packs[p["gfile"][0]]
        inode = pack.get_inode(p["gfile"][1])
        page = p["page"]
        while len(inode.pages) <= page:
            inode.pages.append(None)
        if inode.pages[page] is None:
            inode.pages[page] = pack.alloc_block()
        pack.write_block(inode.pages[page], p["data"])
        inode.size = max(inode.size, p["size"])
        yield from site.cpu(site.cost.disk_write)
        site.cache.invalidate_file(*p["gfile"])
        return None

    # -- client side --------------------------------------------------------

    def fetch_file(self, us: int, server: int, gfile) -> Generator:
        """Stage a whole remote file to the using site; returns its bytes.

        The per-packet protocol ACK is a full request/response round trip,
        and every packet pays the layer stack at both ends.
        """
        site = self.cluster.site(us)
        self.stats.handshakes += 1
        for __ in range(HANDSHAKE_ROUNDTRIPS):
            yield from site.cpu(site.cost.cpu_msg * PROTOCOL_LAYERS)
            yield from site.rpc(server, "lay.handshake", {"server": server})
        meta = yield from site.rpc(server, "lay.get_meta",
                                   {"server": server, "gfile": gfile})
        psz = site.cost.page_size
        n_pages = (meta["size"] + psz - 1) // psz
        chunks = []
        for page in range(n_pages):
            yield from site.cpu(site.cost.cpu_msg * PROTOCOL_LAYERS)
            data = yield from site.rpc(server, "lay.get_page", {
                "server": server, "gfile": gfile, "page": page,
            })
            chunks.append(data.ljust(psz, b"\x00"))
            self.stats.pages_transferred += 1
        self.stats.files_fetched += 1
        return b"".join(chunks)[:meta["size"]]

    def writeback_file(self, us: int, server: int, gfile,
                       data: bytes) -> Generator:
        """Ship the (whole) modified staging copy back to the server."""
        site = self.cluster.site(us)
        psz = site.cost.page_size
        n_pages = (len(data) + psz - 1) // psz
        for page in range(max(1, n_pages)):
            yield from site.cpu(site.cost.cpu_msg * PROTOCOL_LAYERS)
            yield from site.rpc(server, "lay.put_page", {
                "server": server, "gfile": gfile, "page": page,
                "data": data[page * psz:(page + 1) * psz],
                "size": len(data),
            })
            self.stats.pages_transferred += 1
        self.stats.files_written_back += 1
        return None

    def remote_session(self, us: int, server: int, gfile,
                       touch_pages, modify: bool = False
                       ) -> Generator:
        """One complete remote-access session: stage, touch pages locally,
        optionally write back.  Returns virtual time consumed is left to
        the caller to measure."""
        data = yield from self.fetch_file(us, server, gfile)
        site = self.cluster.site(us)
        for __ in touch_pages:
            yield from site.cpu(site.cost.buffer_hit
                                + site.cost.cpu_page_copy)
        if modify:
            yield from self.writeback_file(us, server, gfile, data)
        return len(data)
