"""A conventional single-machine Unix filesystem baseline.

Runs on the same simulator, the same pack/shadow storage substrate and the
same cost model as LOCUS, but with none of the distributed machinery: no
CSS, no storage-site selection, no replication, no version vectors beyond
what the substrate keeps.  This is the yardstick for experiment T1 ("local
access is no more expensive than conventional Unix").
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

import itertools

from repro.config import CostModel
from repro.errors import (EBADF, EEXIST, EINVAL, EISDIR, ENOENT, ENOTDIR,
                          ENOTEMPTY)
from repro.fs.directory import DirEntry, DirView, check_name, \
    decode_entries, encode_entries
from repro.sim.simulator import Simulator
from repro.storage.buffer_cache import BufferCache
from repro.storage.inode import FileType
from repro.storage.pack import Pack, ROOT_INO
from repro.storage.shadow import ShadowFile


class _UnixHandle:
    __slots__ = ("hid", "ino", "writable", "shadow", "offset", "closed")

    def __init__(self, hid: int, ino: int, writable: bool,
                 shadow: ShadowFile):
        self.hid = hid
        self.ino = ino
        self.writable = writable
        self.shadow = shadow
        self.offset = 0
        self.closed = False


class UnixFs:
    """A one-machine Unix-style filesystem with a generator syscall API.

    All methods are kernel procedures; drive them with
    ``sim.run_task(fs.op(...))``.
    """

    def __init__(self, sim: Simulator, cost: Optional[CostModel] = None,
                 n_blocks: int = 1 << 16):
        self.sim = sim
        self.cost = cost or CostModel()
        self.pack = Pack(gfs=0, site_id=0, pack_index=0, n_blocks=n_blocks)
        self.cache = BufferCache(self.cost.buffer_pages)
        self.cpu_used = 0.0
        self._hids = itertools.count(1)
        self.handles: Dict[int, _UnixHandle] = {}
        root = self.pack.alloc_inode(ftype=FileType.DIRECTORY, perms=0o755)
        assert root.ino == ROOT_INO
        self._write_dir_now(root.ino, [
            DirEntry(".", ROOT_INO, FileType.DIRECTORY),
            DirEntry("..", ROOT_INO, FileType.DIRECTORY),
        ])

    # -- internals ---------------------------------------------------------

    def _cpu(self, amount: float) -> Generator:
        self.cpu_used += amount
        yield amount

    def _write_dir_now(self, ino: int, entries: List[DirEntry]) -> None:
        """Format-time direct write (mkfs), no cost accounting."""
        shadow = ShadowFile(self.pack, ino)
        shadow.truncate()
        data = encode_entries(entries)
        psz = self.cost.page_size
        for page in range((len(data) + psz - 1) // psz):
            shadow.write_page(page, data[page * psz:(page + 1) * psz])
        shadow.set_size(len(data))
        shadow.commit()

    def _read_page(self, inode, page: int) -> Generator:
        key = (0, inode.ino, page)
        cached = self.cache.get(key)
        if cached is not None:
            yield from self._cpu(self.cost.buffer_hit)
            return cached
        blockno = inode.pages[page] if page < len(inode.pages) else None
        data = self.pack.read_block(blockno) if blockno is not None else b""
        yield from self._cpu(self.cost.disk_read)
        self.cache.put(key, data)
        return data

    def _read_inode_data(self, ino: int) -> Generator:
        inode = self.pack.get_inode(ino)
        if inode is None:
            raise ENOENT(f"ino {ino}")
        psz = self.cost.page_size
        chunks = []
        for page in range((inode.size + psz - 1) // psz):
            data = yield from self._read_page(inode, page)
            chunks.append(data.ljust(psz, b"\x00"))
        return b"".join(chunks)[:inode.size]

    def _dir_view(self, ino: int) -> Generator:
        inode = self.pack.get_inode(ino)
        if inode is None:
            raise ENOENT(f"ino {ino}")
        if inode.ftype is not FileType.DIRECTORY:
            raise ENOTDIR(f"ino {ino}")
        data = yield from self._read_inode_data(ino)
        entries = decode_entries(data)
        yield from self._cpu(self.cost.cpu_dir_entry * max(1, len(entries)))
        return DirView(entries)

    def _walk(self, path: str) -> Generator:
        """Resolve; returns (parent_ino, name, child_ino or None)."""
        if not path or not path.startswith("/"):
            raise EINVAL(f"bad path {path!r}")
        comps = [c for c in path.split("/") if c and c != "."]
        current = ROOT_INO
        if not comps:
            return None, None, ROOT_INO
        for i, comp in enumerate(comps):
            view = yield from self._dir_view(current)
            entry = view.lookup(comp) if comp != ".." else view.lookup("..")
            last = i == len(comps) - 1
            if entry is None:
                if last:
                    return current, comp, None
                raise ENOENT(f"{comp!r} in {path!r}")
            if last:
                return current, comp, entry.ino
            current = entry.ino
        raise AssertionError("unreachable")

    def _mutate_dir(self, dir_ino: int, mutate) -> Generator:
        view = yield from self._dir_view(dir_ino)
        result = mutate(view)
        shadow = ShadowFile(self.pack, dir_ino)
        shadow.truncate()
        data = encode_entries(view.entries)
        psz = self.cost.page_size
        for page in range((len(data) + psz - 1) // psz):
            shadow.write_page(page, data[page * psz:(page + 1) * psz])
            yield from self._cpu(self.cost.disk_write)
        shadow.set_size(len(data))
        shadow.commit()
        yield from self._cpu(self.cost.disk_write)
        self.cache.invalidate_file(0, dir_ino)
        return result

    # -- syscalls ---------------------------------------------------------

    def open(self, path: str, mode: str = "r", create: bool = False,
             trunc: bool = False) -> Generator:
        yield from self._cpu(self.cost.cpu_syscall)
        writable = "w" in mode
        parent, name, ino = yield from self._walk(path)
        if ino is None:
            if not (create and writable):
                raise ENOENT(path)
            check_name(name)
            inode = self.pack.alloc_inode()
            ino = inode.ino
            yield from self._cpu(self.cost.disk_write)
            yield from self._mutate_dir(
                parent, lambda v: v.insert(name, ino, FileType.REGULAR))
        inode = self.pack.get_inode(ino)
        if inode.ftype is FileType.DIRECTORY and writable:
            raise EISDIR(path)
        shadow = ShadowFile(self.pack, ino)
        if trunc and writable and inode.size:
            shadow.truncate()
            self.cache.invalidate_file(0, ino)
        handle = _UnixHandle(next(self._hids), ino, writable, shadow)
        self.handles[handle.hid] = handle
        yield from self._cpu(self.cost.buffer_hit)  # incore inode setup
        return handle.hid

    def _handle(self, fd: int) -> _UnixHandle:
        handle = self.handles.get(fd)
        if handle is None or handle.closed:
            raise EBADF(f"fd {fd}")
        return handle

    def read(self, fd: int, nbytes: int,
             offset: Optional[int] = None) -> Generator:
        handle = self._handle(fd)
        pos = handle.offset if offset is None else offset
        size = handle.shadow.incore.size
        end = min(pos + nbytes, size)
        if pos >= end:
            return b""
        psz = self.cost.page_size
        chunks = []
        for page in range(pos // psz, (end - 1) // psz + 1):
            key = (0, handle.ino, page)
            cached = self.cache.get(key)
            if cached is None:
                data = handle.shadow.read_page(page)
                yield from self._cpu(self.cost.disk_read)
                self.cache.put(key, data)
            else:
                yield from self._cpu(self.cost.buffer_hit)
                data = cached
            data = data.ljust(psz, b"\x00")
            lo = max(pos, page * psz) - page * psz
            hi = min(end, (page + 1) * psz) - page * psz
            chunks.append(data[lo:hi])
            yield from self._cpu(self.cost.cpu_page_copy)
        out = b"".join(chunks)
        if offset is None:
            handle.offset = pos + len(out)
        return out

    def write(self, fd: int, data: bytes,
              offset: Optional[int] = None) -> Generator:
        handle = self._handle(fd)
        if not handle.writable:
            raise EBADF("read-only descriptor")
        pos = handle.offset if offset is None else offset
        psz = self.cost.page_size
        end = pos + len(data)
        old_size = handle.shadow.incore.size
        for page in range(pos // psz, (end - 1) // psz + 1):
            page_lo = page * psz
            lo, hi = max(pos, page_lo), min(end, page_lo + psz)
            whole = lo == page_lo and (hi == page_lo + psz or hi >= old_size)
            old = b"" if whole else handle.shadow.read_page(page)
            if not whole:
                yield from self._cpu(self.cost.disk_read)
            buf = bytearray(old.ljust(psz, b"\x00"))
            buf[lo - page_lo:hi - page_lo] = data[lo - pos:hi - pos]
            handle.shadow.write_page(page, bytes(buf[:max(hi - page_lo,
                                                          len(old))]))
            yield from self._cpu(self.cost.disk_write)
            self.cache.put((0, handle.ino, page), bytes(buf))
            yield from self._cpu(self.cost.cpu_page_copy)
        handle.shadow.set_size(max(old_size, end))
        if offset is None:
            handle.offset = end
        return len(data)

    def commit(self, fd: int) -> Generator:
        handle = self._handle(fd)
        handle.shadow.commit(mtime=self.sim.now)
        yield from self._cpu(self.cost.disk_write)
        return None

    def close(self, fd: int) -> Generator:
        handle = self._handle(fd)
        if handle.writable and handle.shadow.dirty:
            yield from self.commit(fd)
        handle.closed = True
        del self.handles[fd]
        return None

    def mkdir(self, path: str) -> Generator:
        yield from self._cpu(self.cost.cpu_syscall)
        parent, name, ino = yield from self._walk(path)
        if ino is not None or name is None:
            raise EEXIST(path)
        check_name(name)
        inode = self.pack.alloc_inode(ftype=FileType.DIRECTORY, perms=0o755)
        yield from self._cpu(self.cost.disk_write)
        self._write_dir_now(inode.ino, [
            DirEntry(".", inode.ino, FileType.DIRECTORY),
            DirEntry("..", parent, FileType.DIRECTORY),
        ])
        yield from self._mutate_dir(
            parent, lambda v: v.insert(name, inode.ino, FileType.DIRECTORY))
        return inode.ino

    def unlink(self, path: str) -> Generator:
        yield from self._cpu(self.cost.cpu_syscall)
        parent, name, ino = yield from self._walk(path)
        if ino is None:
            raise ENOENT(path)
        inode = self.pack.get_inode(ino)
        if inode.ftype is FileType.DIRECTORY:
            raise EISDIR(path)
        yield from self._mutate_dir(
            parent, lambda v: v.remove(name, inode.version))
        inode.nlink -= 1
        if inode.nlink <= 0:
            self.cache.invalidate_file(0, ino)
            self.pack.release_inode(ino)
        yield from self._cpu(self.cost.disk_write)
        return None

    def readdir(self, path: str) -> Generator:
        yield from self._cpu(self.cost.cpu_syscall)
        __, __, ino = yield from self._walk(path)
        if ino is None:
            raise ENOENT(path)
        view = yield from self._dir_view(ino)
        return view.names()

    def stat(self, path: str) -> Generator:
        yield from self._cpu(self.cost.cpu_syscall)
        __, __, ino = yield from self._walk(path)
        if ino is None:
            raise ENOENT(path)
        inode = self.pack.get_inode(ino)
        yield from self._cpu(self.cost.buffer_hit)
        return inode.attrs()

    # -- conveniences -----------------------------------------------------

    def write_file(self, path: str, data: bytes) -> Generator:
        fd = yield from self.open(path, "w", create=True, trunc=True)
        yield from self.write(fd, data)
        yield from self.close(fd)
        return None

    def read_file(self, path: str) -> Generator:
        fd = yield from self.open(path, "r")
        attrs = self.pack.get_inode(self._handle(fd).ino)
        data = yield from self.read(fd, attrs.size, offset=0)
        yield from self.close(fd)
        return data
