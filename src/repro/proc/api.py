"""The per-process system-call interface (generator style).

This is what a program running on a LOCUS site sees: the Unix system-call
set, uniformly applicable to local and remote resources.  Every method is a
kernel procedure (use with ``yield from``); the synchronous wrapper for
interactive use is :class:`repro.core.syscalls.Shell`.
"""

from __future__ import annotations

import json
from typing import Generator, List, Optional

from repro.errors import EBADF, EINVAL, EISDIR
from repro.fs.types import Mode
from repro.obs.tracer import traced_syscall
from repro.proc.process import Process, Signal
from repro.storage.inode import FileType


def _mode_of(spec: str) -> Mode:
    if spec in ("r", "rb"):
        return Mode.READ
    if spec in ("w", "wb", "rw", "r+", "w+"):
        return Mode.WRITE
    raise EINVAL(f"bad mode {spec!r}")


class ProcApi:
    """System calls bound to one process at its current site."""

    def __init__(self, site, proc: Process):
        self.site = site
        self.proc = proc

    @property
    def fs(self):
        return self.site.fs

    @property
    def pm(self):
        return self.site.proc

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------

    def open(self, path: str, mode: str = "r", create: bool = False,
             trunc: bool = False, excl: bool = False,
             allow_conflict: bool = False) -> Generator:
        """Open (optionally creating) a file; returns a descriptor."""
        m = _mode_of(mode)
        if create and m.writable:
            gfile, created = yield from self.fs.create_file(
                self.proc, path, exclusive=excl)
            attrs = yield from self.fs._fetch_attrs_anywhere(gfile)
            ftype = attrs["ftype"]
        else:
            gfile, ftype = yield from self.fs.resolve_gfile(self.proc, path)
            created = False
        if ftype is FileType.PIPE:
            fd = yield from self._open_fifo(gfile, m)
            return fd
        if ftype is FileType.DEVICE:
            fd = yield from self._open_device(gfile, m)
            return fd
        if ftype in (FileType.DIRECTORY, FileType.HIDDEN_DIR) and m.writable:
            raise EISDIR(path)
        handle = yield from self.fs.open_gfile(
            gfile, m, allow_conflict=allow_conflict)
        if trunc and m.writable and not created and handle.size:
            yield from self.fs.truncate(handle)
        ofd_id = self.pm.fdtable.create("file", gfile, m, handle=handle)
        return self.proc.alloc_fd(ofd_id)

    def _open_fifo(self, gfile, m: Mode) -> Generator:
        attrs = yield from self.fs._fetch_attrs_anywhere(gfile)
        server = attrs["storage_sites"][0]
        pipe_id = ("fifo", gfile[0], gfile[1])
        role = "w" if m.writable else "r"
        yield from self.pm.pipes.open_role(server, pipe_id, role)
        ofd_id = self.pm.fdtable.create("pipe", (server, pipe_id), m)
        return self.proc.alloc_fd(ofd_id)

    def _open_device(self, gfile, m: Mode) -> Generator:
        """Open a device node: route to the hosting site (section 2.4.2)."""
        node = yield from self._read_gfile(gfile)
        spec = json.loads(node.decode())
        host, name = spec["host"], spec["device"]
        yield from self.pm.devices.open_device(host, name)
        ofd_id = self.pm.fdtable.create("dev", (host, name), m)
        return self.proc.alloc_fd(ofd_id)

    def _read_gfile(self, gfile) -> Generator:
        handle = yield from self.fs.open_gfile(gfile, Mode.READ)
        try:
            data = yield from self.fs.read(handle, 0, handle.size)
        finally:
            yield from self.fs.close(handle)
        return data

    def mknod_device(self, path: str, host: int, device: str,
                     character: bool = True) -> Generator:
        """Create a device node in the global naming tree."""
        spec = {"host": host, "device": device, "character": character}
        gfile, created = yield from self.fs.create_file(
            self.proc, path, ftype=FileType.DEVICE, exclusive=True)
        handle = yield from self.fs.open_gfile(gfile, Mode.WRITE)
        try:
            yield from self.fs.write(handle, 0, json.dumps(spec).encode())
        finally:
            yield from self.fs.close(handle)
        return gfile

    def _ofd(self, fd: int):
        ofd_id = self.proc.fds.get(fd)
        if ofd_id is None:
            raise EBADF(f"fd {fd} not open in pid {self.proc.pid}")
        return ofd_id

    def read(self, fd: int, nbytes: int) -> Generator:
        ofd_id = self._ofd(fd)
        rep = self.pm.fdtable.replica(ofd_id)
        if rep.kind == "pipe":
            server, pipe_id, __ = self.pm._pipe_coords(rep)
            data = yield from self.pm.pipes.read(server, pipe_id, nbytes)
            return data
        if rep.kind == "dev":
            host, name = rep.target
            data = yield from self.pm.devices.read(host, name, nbytes)
            return data
        offset = yield from self.pm.fdtable.acquire_token(ofd_id)
        handle = yield from self.pm.fdtable.file_handle(ofd_id)
        data = yield from self.fs.read(handle, offset, nbytes)
        rep.offset = offset + len(data)
        return data

    def write(self, fd: int, data: bytes) -> Generator:
        if isinstance(data, str):
            data = data.encode()
        ofd_id = self._ofd(fd)
        rep = self.pm.fdtable.replica(ofd_id)
        if rep.kind == "pipe":
            server, pipe_id, __ = self.pm._pipe_coords(rep)
            n = yield from self.pm.pipes.write(server, pipe_id, data)
            return n
        if rep.kind == "dev":
            host, name = rep.target
            n = yield from self.pm.devices.write(host, name, data)
            return n
        offset = yield from self.pm.fdtable.acquire_token(ofd_id)
        handle = yield from self.pm.fdtable.file_handle(ofd_id)
        n = yield from self.fs.write(handle, offset, data)
        rep.offset = offset + n
        return n

    def pread(self, fd: int, offset: int, nbytes: int) -> Generator:
        """Positional read: no shared-offset token traffic."""
        ofd_id = self._ofd(fd)
        handle = yield from self.pm.fdtable.file_handle(ofd_id)
        data = yield from self.fs.read(handle, offset, nbytes)
        return data

    def pwrite(self, fd: int, offset: int, data: bytes) -> Generator:
        if isinstance(data, str):
            data = data.encode()
        ofd_id = self._ofd(fd)
        handle = yield from self.pm.fdtable.file_handle(ofd_id)
        n = yield from self.fs.write(handle, offset, data)
        return n

    def lseek(self, fd: int, offset: int, whence: str = "set") -> Generator:
        ofd_id = self._ofd(fd)
        rep = self.pm.fdtable.replica(ofd_id)
        if rep.kind == "pipe":
            raise EBADF("cannot seek a pipe")
        current = yield from self.pm.fdtable.acquire_token(ofd_id)
        if whence == "set":
            new = offset
        elif whence == "cur":
            new = current + offset
        elif whence == "end":
            handle = yield from self.pm.fdtable.file_handle(ofd_id)
            new = handle.size + offset
        else:
            raise EINVAL(f"bad whence {whence!r}")
        if new < 0:
            raise EINVAL("negative file position")
        rep.offset = new
        return new

    def close(self, fd: int) -> Generator:
        self._ofd(fd)
        yield from self.pm._close_fd(self.proc, fd)
        return None

    def dup(self, fd: int) -> Generator:
        ofd_id = self._ofd(fd)
        self.pm.fdtable.dup(ofd_id)
        return self.proc.alloc_fd(ofd_id)
        yield  # pragma: no cover

    def commit(self, fd: int) -> Generator:
        """Commit the file's staged changes (section 2.3.6)."""
        handle = yield from self.pm.fdtable.file_handle(self._ofd(fd))
        vv = yield from self.fs.commit(handle)
        return vv

    def abort(self, fd: int) -> Generator:
        """Undo changes back to the previous commit point."""
        handle = yield from self.pm.fdtable.file_handle(self._ofd(fd))
        yield from self.fs.abort(handle)
        return None

    def fstat(self, fd: int) -> Generator:
        handle = yield from self.pm.fdtable.file_handle(self._ofd(fd))
        return dict(handle.attrs)

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------

    def mkdir(self, path: str, perms: int = 0o755,
              hidden: bool = False) -> Generator:
        gfile = yield from self.fs.mkdir(self.proc, path, perms=perms,
                                         hidden=hidden)
        return gfile

    def rmdir(self, path: str) -> Generator:
        yield from self.fs.rmdir(self.proc, path)
        return None

    def unlink(self, path: str) -> Generator:
        yield from self.fs.unlink(self.proc, path)
        return None

    def link(self, existing: str, new: str) -> Generator:
        yield from self.fs.link(self.proc, existing, new)
        return None

    def rename(self, old: str, new: str) -> Generator:
        yield from self.fs.rename(self.proc, old, new)
        return None

    def readdir(self, path: str) -> Generator:
        names = yield from self.fs.readdir(self.proc, path)
        return names

    def stat(self, path: str) -> Generator:
        attrs = yield from self.fs.stat(self.proc, path)
        return attrs

    def chmod(self, path: str, perms: int) -> Generator:
        yield from self.fs.chmod(self.proc, path, perms)
        return None

    def chown(self, path: str, owner: str) -> Generator:
        yield from self.fs.chown(self.proc, path, owner)
        return None

    def chdir(self, path: str) -> Generator:
        gfile, ftype = yield from self.fs.resolve_gfile(self.proc, path)
        if ftype not in (FileType.DIRECTORY, FileType.HIDDEN_DIR):
            raise EINVAL(f"{path} is not a directory")
        self.proc.cwd = gfile
        return None

    def add_replica(self, path: str, site: int) -> Generator:
        yield from self.fs.add_replica(self.proc, path, site)
        return None

    def drop_replica(self, path: str, site: int) -> Generator:
        yield from self.fs.drop_replica(self.proc, path, site)
        return None

    # ------------------------------------------------------------------
    # Pipes
    # ------------------------------------------------------------------

    def pipe(self) -> Generator:
        """An anonymous pipe; returns ``(read_fd, write_fd)``."""
        pipe_id = self.pm.pipes.new_anon_id()
        server = self.site.site_id
        yield from self.pm.pipes.open_role(server, pipe_id, "r")
        yield from self.pm.pipes.open_role(server, pipe_id, "w")
        r_ofd = self.pm.fdtable.create("pipe", (server, pipe_id), Mode.READ)
        w_ofd = self.pm.fdtable.create("pipe", (server, pipe_id), Mode.WRITE)
        return self.proc.alloc_fd(r_ofd), self.proc.alloc_fd(w_ofd)

    def mkfifo(self, path: str) -> Generator:
        gfile, created = yield from self.fs.create_file(
            self.proc, path, ftype=FileType.PIPE, exclusive=True)
        return gfile

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def fork(self, child_main=None, args: tuple = (),
             dest: Optional[int] = None) -> Generator:
        pid = yield from self.pm.fork(self.proc, dest=dest,
                                      child_main=child_main, args=args)
        return pid

    def run(self, path: str, args: tuple = (),
            dest: Optional[int] = None) -> Generator:
        pid = yield from self.pm.run(self.proc, path, args=args, dest=dest)
        return pid

    def exec(self, path: str, args: tuple = (),
             dest: Optional[int] = None) -> Generator:
        pid = yield from self.pm.exec(self.proc, path, args=args, dest=dest)
        return pid

    def wait(self) -> Generator:
        result = yield from self.pm.wait(self.proc)
        return result

    def exit(self, code: int = 0) -> Generator:
        yield from self.pm.exit(self.proc, code)
        return None

    def kill(self, pid: int, sig: Signal = Signal.SIGTERM) -> Generator:
        yield from self.pm.kill(pid, sig)
        return None

    def sigwait(self) -> Generator:
        sig = yield from self.pm.sigwait(self.proc)
        return sig

    def getpid(self) -> int:
        return self.proc.pid

    def errinfo(self) -> List[dict]:
        """The new system call of section 3.3: interrogate error information
        deposited when a cooperating site failed."""
        info, self.proc.err_info = self.proc.err_info, []
        return info

    # ------------------------------------------------------------------
    # Per-process environment knobs
    # ------------------------------------------------------------------

    def setcopies(self, n: int) -> None:
        """Set the inherited default replication factor (section 2.3.7)."""
        if n < 1:
            raise EINVAL("replication factor must be >= 1")
        self.proc.default_copies = n

    def getcopies(self) -> int:
        return self.proc.default_copies

    def set_advice(self, sites: List[int]) -> None:
        """Set the execution-site advice list (section 3.1)."""
        self.proc.advice = list(sites)

    def set_hidden_context(self, names: List[str]) -> None:
        self.proc.hidden_context = list(names)

    def set_hidden_visible(self, flag: bool) -> None:
        """The escape mechanism making hidden directories visible."""
        self.proc.hidden_visible = bool(flag)

    # ------------------------------------------------------------------
    # Convenience used by examples and tests
    # ------------------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> Generator:
        fd = yield from self.open(path, "w", create=True, trunc=True)
        try:
            yield from self.write(fd, data)
        finally:
            yield from self.close(fd)
        return None

    def read_file(self, path: str) -> Generator:
        fd = yield from self.open(path, "r")
        try:
            attrs = yield from self.fstat(fd)
            data = yield from self.pread(fd, 0, attrs["size"])
        finally:
            yield from self.close(fd)
        return data

    def install_program(self, path: str, program: str, cpu: str = "vax",
                        code_pages: int = 16, data_pages: int = 8,
                        reentrant: bool = True) -> Generator:
        """Write a load module file naming a registered program."""
        spec = {"program": program, "cpu": cpu, "code_pages": code_pages,
                "data_pages": data_pages, "reentrant": reentrant}
        yield from self.write_file(path, json.dumps(spec).encode())
        return None

# ----------------------------------------------------------------------
# Flight recorder (repro.obs): every public system call records a
# virtual-time latency sample in the site's MetricsRegistry and, with
# tracing on, opens a causal span that nested RPCs and handlers parent
# under.  The wrapper is pure ``yield from`` delegation — no extra yield
# points, CPU charges, or messages — so syscall behaviour is unchanged.
# The conveniences (write_file, read_file, ...) stay unwrapped: they
# compose wrapped syscalls.  ``exit`` and ``sigwait`` stay unwrapped too —
# one unwinds the process, the other blocks indefinitely by design, so a
# latency sample would be noise.
# ----------------------------------------------------------------------

_TRACED_SYSCALLS = (
    "open", "read", "write", "pread", "pwrite", "lseek", "close", "dup",
    "commit", "abort", "fstat", "mkdir", "rmdir", "unlink", "link",
    "rename", "readdir", "stat", "chmod", "chown", "chdir", "add_replica",
    "drop_replica", "pipe", "mkfifo", "mknod_device", "fork", "run",
    "exec", "wait", "kill",
)

for _name in _TRACED_SYSCALLS:
    setattr(ProcApi, _name, traced_syscall(_name, getattr(ProcApi, _name)))
del _name
