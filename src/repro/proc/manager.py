"""Process management: transparent local and remote fork / exec / run.

"LOCUS permits one to execute programs at any site in the network, subject
to permission control, in a manner just as easy as executing the program
locally ...  The mechanism is entirely transparent, so that existing
software can be executed either locally or remotely, with no change to that
software" (paper section 3.1).

Simulation note: a real fork resumes the child mid-program.  Generators
cannot be cloned, so ``fork`` takes the child's main function explicitly
(``child_main``); ``run`` — the paper's fork+exec optimization — loads the
child's program from its load-module file exactly as LOCUS did.
"""

from __future__ import annotations

import itertools
import json
from types import SimpleNamespace
from typing import Dict, Generator, List, Optional, Set

from repro.errors import ECHILD, EINVAL, ESRCH, RemoteProcessError
from repro.fs.types import Mode, ROOT_GFS
from repro.proc.devices import DeviceService
from repro.proc.fdtable import FdTable
from repro.proc.pipes import PipeService
from repro.proc.process import (ChildRecord, Image, PID_SITE_FACTOR, Process,
                                ProcState, Signal, pid_origin)
from repro.storage.pack import ROOT_INO


class ProcManager:
    """Per-site process table, program execution, and remote-process RPC."""

    def __init__(self, site):
        self.site = site
        self.procs: Dict[int, Process] = {}
        self.forward: Dict[int, int] = {}      # migrated pid -> next site
        self.fdtable = FdTable(site)
        self.pipes = PipeService(site)
        self.devices = DeviceService(site)
        self._pid_seq = itertools.count(1)
        self._wait_futs: Dict[int, list] = {}  # parent pid -> futures
        self._sig_futs: Dict[int, list] = {}   # pid -> futures
        self._prog_tasks: Dict[int, object] = {}
        reg = site.register_handler
        reg("proc.create", self.h_create)
        reg("proc.run", self.h_run)
        reg("proc.exec_receive", self.h_exec_receive)
        reg("proc.signal", self.h_signal)
        reg("proc.child_exit", self.h_child_exit)

    # ------------------------------------------------------------------
    # Lifecycle plumbing
    # ------------------------------------------------------------------

    @property
    def sid(self) -> int:
        return self.site.site_id

    def reset_volatile(self) -> None:
        for proc in self.procs.values():
            proc.state = ProcState.GONE
        self.procs.clear()
        self.forward.clear()
        self._wait_futs.clear()
        self._sig_futs.clear()
        self._prog_tasks.clear()
        self.fdtable.reset_volatile()
        self.pipes.reset_volatile()

    def on_restart(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Process table
    # ------------------------------------------------------------------

    def _alloc_pid(self) -> int:
        return self.sid * PID_SITE_FACTOR + next(self._pid_seq)

    def make_process(self, user: str = "root",
                     program: str = "init") -> Process:
        """An origin process (what login would create)."""
        proc = Process(pid=self._alloc_pid(), ppid=0, site_id=self.sid,
                       user=user, cwd=(ROOT_GFS, ROOT_INO),
                       image=Image(program=program, cpu=self.cpu_type))
        proc.hidden_context = [self.cpu_type]
        self.procs[proc.pid] = proc
        return proc

    @property
    def cpu_type(self) -> str:
        return getattr(self.site, "cpu_type", "vax")

    def get(self, pid: int) -> Process:
        proc = self.procs.get(pid)
        if proc is None:
            raise ESRCH(f"no process {pid} at site {self.sid}")
        return proc

    # ------------------------------------------------------------------
    # fork (section 3.1)
    # ------------------------------------------------------------------

    def fork(self, parent: Process, dest: Optional[int] = None,
             child_main=None, args: tuple = ()) -> Generator:
        """Create a child process, locally or remotely; returns its pid."""
        dest = self._pick_site(parent, dest)
        env = parent.inherit_env()
        fd_specs = self._export_fds(parent)
        image = parent.image.clone()
        # Pages shipped to the new process site: the data pages always, the
        # code too unless it is reentrant and assumed present at the dest.
        xfer_pages = image.data_pages + (
            0 if image.reentrant else image.code_pages)
        if dest == self.sid:
            yield from self.site.cpu(
                self.site.cost.cpu_process_page * xfer_pages)
            child = yield from self._install_child(parent.pid, self.sid,
                                                   env, image, fd_specs)
            pid = child.pid
            parent.children[pid] = ChildRecord(pid=pid, site=dest)
            if child_main is not None:
                self.start_program(pid, self.sid, child_main, args)
        else:
            yield from self.site.cpu(
                self.site.cost.cpu_process_page * xfer_pages)
            # The child resumes at the destination; ``child_main`` is the
            # simulation's stand-in for the duplicated program counter and
            # travels with the process image.
            pid = yield from self.site.rpc(dest, "proc.create", {
                "ppid": parent.pid,
                "parent_site": self.sid,
                "env": env,
                "image": image,
                "fds": fd_specs,
                "child_main": child_main,
                "args": args,
                "__wire_bytes__": xfer_pages * self.site.cost.page_size,
            })
            parent.children[pid] = ChildRecord(pid=pid, site=dest)
        return pid

    def h_create(self, src: int, p: dict) -> Generator:
        yield from self.site.cpu(
            self.site.cost.cpu_process_page
            * (p["__wire_bytes__"] // self.site.cost.page_size))
        child = yield from self._install_child(p["ppid"], src, p["env"],
                                               p["image"], p["fds"])
        if p.get("child_main") is not None:
            self.start_program(child.pid, self.sid, p["child_main"],
                               tuple(p.get("args") or ()))
        return child.pid

    def _install_child(self, ppid: int, parent_site: int, env: dict,
                       image: Image, fd_specs: List[dict]) -> Generator:
        child = Process(pid=self._alloc_pid(), ppid=ppid, site_id=self.sid,
                        image=image.clone())
        child.apply_env(env)
        child.parent_site = parent_site
        self.procs[child.pid] = child
        yield from self._inherit_fds(child, fd_specs)
        return child

    def _inherit_fds(self, child: Process, fd_specs: List[dict]) -> Generator:
        for spec in fd_specs:
            yield from self.fdtable.attach(spec["ofd"])
            child.fds[spec["fd"]] = spec["ofd"]["ofd_id"]
            child.next_fd = max(child.next_fd, spec["fd"] + 1)
            if spec["ofd"]["kind"] == "pipe":
                server, pipe_id, role = self._pipe_coords(spec["ofd"])
                yield from self.pipes.open_role(server, pipe_id, role)
        return None

    def _export_fds(self, proc: Process) -> List[dict]:
        specs = []
        for fd, ofd_id in sorted(proc.fds.items()):
            rep = self.fdtable.replicas.get(ofd_id)
            if rep is not None:
                specs.append({"fd": fd, "ofd": rep.export()})
        return specs

    def _pipe_coords(self, ofd_spec_or_rep) -> tuple:
        """(server, pipe_id, role) from a pipe descriptor's target tuple."""
        if isinstance(ofd_spec_or_rep, dict):
            target = ofd_spec_or_rep["target"]
            mode = ofd_spec_or_rep["mode"]
        else:
            target = ofd_spec_or_rep.target
            mode = ofd_spec_or_rep.mode
        server, pipe_id = target
        role = "w" if mode.writable else "r"
        return server, pipe_id, role

    def _pick_site(self, proc: Process, dest: Optional[int]) -> int:
        """Execution-site decision: explicit argument, then the process's
        advice list, then local (section 3.1)."""
        if dest is not None:
            return dest
        if proc.advice:
            return proc.advice[0]
        return self.sid

    # ------------------------------------------------------------------
    # exec and run
    # ------------------------------------------------------------------

    def load_image(self, proc_env, path: str) -> Generator:
        """Read a load module through the filesystem *at this site*, so
        hidden directories match this machine's cpu type (section 2.4.1)."""
        ctx = SimpleNamespace(cwd=proc_env.get("cwd"),
                              hidden_context=[self.cpu_type],
                              hidden_visible=False,
                              default_copies=1, user=proc_env.get("user"))
        fs = self.site.fs
        handle = yield from fs.open_path(ctx, path, Mode.READ)
        try:
            data = yield from fs.read(handle, 0, handle.size)
        finally:
            yield from fs.close(handle)
        try:
            spec = json.loads(data.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise EINVAL(f"{path}: not a load module: {exc}")
        image = Image(program=spec["program"],
                      cpu=spec.get("cpu", self.cpu_type),
                      code_pages=spec.get("code_pages", 16),
                      data_pages=spec.get("data_pages", 8),
                      reentrant=spec.get("reentrant", True))
        if image.cpu != self.cpu_type:
            raise EINVAL(f"{path}: load module is for cpu {image.cpu!r}, "
                         f"this site runs {self.cpu_type!r}")
        return image

    def exec(self, proc: Process, path: str, args: tuple = (),
             dest: Optional[int] = None) -> Generator:
        """Install a new load module; if the advice says a remote site, the
        process is effectively moved at that time (section 3.1)."""
        dest = self._pick_site(proc, dest)
        if dest == self.sid:
            image = yield from self.load_image(proc.inherit_env(), path)
            proc.image = image
            yield from self.site.cpu(
                self.site.cost.cpu_process_page * image.code_pages)
            self.start_program(proc.pid, self.sid, None, args)
            return proc.pid
        env = proc.inherit_env()
        fd_specs = self._export_fds(proc)
        # The old image is discarded on exec, so only the environment moves.
        yield from self.site.rpc(dest, "proc.exec_receive", {
            "pid": proc.pid,
            "ppid": proc.ppid,
            "parent_site": proc.parent_site,
            "env": env,
            "fds": fd_specs,
            "path": path,
            "args": args,
        })
        # The process left this site; keep a forwarding pointer for signals.
        self.procs.pop(proc.pid, None)
        self.forward[proc.pid] = dest
        proc.site_id = dest
        return proc.pid

    def h_exec_receive(self, src: int, p: dict) -> Generator:
        image = yield from self.load_image(p["env"], p["path"])
        proc = Process(pid=p["pid"], ppid=p["ppid"], site_id=self.sid,
                       image=image)
        proc.apply_env(p["env"])
        proc.parent_site = p["parent_site"]
        self.procs[proc.pid] = proc
        yield from self._inherit_fds(proc, p["fds"])
        self.start_program(proc.pid, self.sid, None, tuple(p["args"]))
        return proc.pid

    def run(self, parent: Process, path: str, args: tuple = (),
            dest: Optional[int] = None) -> Generator:
        """The run call: "similar to the effect of a fork followed by an
        exec ... avoids the copy of the parent process image" (section 3.1).
        Transparent as to where it executes."""
        dest = self._pick_site(parent, dest)
        env = parent.inherit_env()
        fd_specs = self._export_fds(parent)
        if dest == self.sid:
            image = yield from self.load_image(env, path)
            child = yield from self._install_child(parent.pid, self.sid,
                                                   env, image, fd_specs)
            pid = child.pid
            self.start_program(pid, self.sid, None, args)
        else:
            pid = yield from self.site.rpc(dest, "proc.run", {
                "ppid": parent.pid,
                "parent_site": self.sid,
                "env": env,
                "fds": fd_specs,
                "path": path,
                "args": args,
            })
        parent.children[pid] = ChildRecord(pid=pid, site=dest)
        return pid

    def h_run(self, src: int, p: dict) -> Generator:
        image = yield from self.load_image(p["env"], p["path"])
        child = yield from self._install_child(p["ppid"], src, p["env"],
                                               image, p["fds"])
        self.start_program(child.pid, self.sid, None, tuple(p["args"]))
        return child.pid

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------

    def start_program(self, pid: int, site_id: int, main=None,
                      args: tuple = ()) -> None:
        """Start the process's program as a kernel-driven task.

        ``main`` overrides the program-table lookup (fork's child_main).
        """
        if site_id != self.sid:
            return  # the destination site starts it
        proc = self.procs.get(pid)
        if proc is None:
            return
        fn = main
        if fn is None:
            table = getattr(self.site, "programs", {})
            fn = table.get(proc.image.program)
        if fn is None:
            return  # no executable body registered: stays an idle process
        from repro.proc.api import ProcApi
        api = ProcApi(self.site, proc)
        task = self.site.spawn(self._program_body(proc, fn, api, args),
                               name=f"prog:{proc.image.program}:{pid}")
        self._prog_tasks[pid] = task

    def _program_body(self, proc: Process, fn, api, args) -> Generator:
        from repro.errors import TaskCancelled
        code = 0
        try:
            result = yield from fn(api, *args)
            if isinstance(result, int):
                code = result
        except TaskCancelled:
            raise   # killed: the SIGKILL path performs the exit(137)
        except Exception:  # noqa: BLE001 - a crashing program exits 1
            code = 1
        finally:
            self._prog_tasks.pop(proc.pid, None)
        if proc.state is ProcState.RUNNING:
            yield from self.exit(proc, code)
        return code

    # ------------------------------------------------------------------
    # exit / wait
    # ------------------------------------------------------------------

    def exit(self, proc: Process, code: int = 0) -> Generator:
        if proc.state is not ProcState.RUNNING:
            return None
        proc.state = ProcState.ZOMBIE
        proc.exit_code = code
        for fd in list(proc.fds):
            try:
                yield from self._close_fd(proc, fd)
            except Exception:  # noqa: BLE001 - exit never fails
                pass
        if proc.ppid and proc.parent_site is not None:
            payload = {"pid": proc.pid, "code": code, "ppid": proc.ppid}
            if proc.parent_site == self.sid:
                yield from self.h_child_exit(self.sid, payload)
            else:
                yield from self.site.oneway_quiet(
                    proc.parent_site, "proc.child_exit", payload)
        self.procs.pop(proc.pid, None)
        return None

    def _close_fd(self, proc: Process, fd: int) -> Generator:
        ofd_id = proc.fds.pop(fd, None)
        if ofd_id is None:
            return None
        rep = self.fdtable.replicas.get(ofd_id)
        last = yield from self.fdtable.deref(ofd_id)
        if last and rep is not None and rep.kind == "pipe":
            server, pipe_id, role = self._pipe_coords(rep)
            yield from self.pipes.close_role(server, pipe_id, role)
        return None

    def h_child_exit(self, src: int, p: dict) -> Generator:
        parent = self.procs.get(p["ppid"])
        if parent is None:
            return None
        rec = parent.children.get(p["pid"])
        if rec is not None and rec.status == "running":
            rec.status = "exited"
            rec.exit_code = p["code"]
        self.deliver_signal(parent, Signal.SIGCHLD)
        self._wake_waiters(parent.pid)
        return None
        yield  # pragma: no cover

    def wait(self, proc: Process) -> Generator:
        """Wait for any child to exit; returns ``(pid, exit_code)``.

        A child lost to a site failure surfaces as
        :class:`RemoteProcessError` (section 3.3)."""
        while True:
            if not proc.children:
                raise ECHILD(f"process {proc.pid} has no children")
            for pid, rec in list(proc.children.items()):
                if rec.status == "exited":
                    del proc.children[pid]
                    return pid, rec.exit_code
                if rec.status == "error":
                    del proc.children[pid]
                    raise RemoteProcessError(pid, rec.site, "child")
            fut = self.site.sim.create_future(f"wait:{proc.pid}")
            self._wait_futs.setdefault(proc.pid, []).append(fut)
            yield fut

    def _wake_waiters(self, ppid: int) -> None:
        for fut in self._wait_futs.pop(ppid, []):
            fut.resolve(None)

    # ------------------------------------------------------------------
    # Signals (section 2.4.2: network-transparent, single-machine semantics)
    # ------------------------------------------------------------------

    def kill(self, pid: int, sig: Signal) -> Generator:
        if pid in self.procs:
            self.deliver_signal(self.procs[pid], sig)
            return None
        dest = self.forward.get(pid, pid_origin(pid))
        if dest == self.sid or dest not in self.site.net.site_ids:
            raise ESRCH(f"no process {pid}")
        yield from self.site.rpc(dest, "proc.signal",
                                 {"pid": pid, "sig": sig})
        return None

    def h_signal(self, src: int, p: dict) -> Generator:
        pid, sig = p["pid"], p["sig"]
        if pid in self.procs:
            self.deliver_signal(self.procs[pid], sig)
            return None
        nxt = self.forward.get(pid)
        if nxt is None or nxt == self.sid:
            raise ESRCH(f"no process {pid} at site {self.sid}")
        # Chase the forwarding pointer of a migrated process.
        yield from self.site.rpc(nxt, "proc.signal", {"pid": pid, "sig": sig})
        return None

    def deliver_signal(self, proc: Process, sig: Signal,
                       info: Optional[dict] = None) -> None:
        if proc.state is not ProcState.RUNNING:
            return
        if info is not None:
            proc.err_info.append(info)
        proc.pending_signals.append(sig)
        for fut in self._sig_futs.pop(proc.pid, []):
            fut.resolve(None)
        if sig == Signal.SIGKILL:
            task = self._prog_tasks.pop(proc.pid, None)
            if task is not None:
                task.cancel(f"SIGKILL pid {proc.pid}")
            self.site.spawn(self.exit(proc, 137),
                            name=f"sigkill-exit:{proc.pid}")

    def sigwait(self, proc: Process) -> Generator:
        while not proc.pending_signals:
            fut = self.site.sim.create_future(f"sigwait:{proc.pid}")
            self._sig_futs.setdefault(proc.pid, []).append(fut)
            yield fut
        return proc.pending_signals.pop(0)

    # ------------------------------------------------------------------
    # Partition handling (section 3.3 and the section 5.6 cleanup table)
    # ------------------------------------------------------------------

    def on_partition_change(self, lost: Set[int]) -> None:
        for proc in list(self.procs.values()):
            for rec in proc.children.values():
                if rec.site in lost and rec.status == "running":
                    rec.status = "error"
                    rec.error = f"site {rec.site} left the partition"
                    self.deliver_signal(proc, Signal.SIGCHLD_ERR, info={
                        "kind": "child_site_failed", "pid": rec.pid,
                        "site": rec.site,
                    })
                    self._wake_waiters(proc.pid)
            if proc.parent_site in lost:
                self.deliver_signal(proc, Signal.SIGPAR_ERR, info={
                    "kind": "parent_site_failed", "pid": proc.ppid,
                    "site": proc.parent_site,
                })
        self.fdtable.on_partition_change(lost)
