"""Network-wide pipes (paper section 2.4.2).

"In the current LOCUS system release, Unix named pipes and signals are
supported across the network.  Their semantics in LOCUS are identical to
those seen on a single machine Unix system, even when processes are resident
on different machines."

Each pipe's buffer lives at one *server* site: the creating site for
anonymous pipes, the first storage site of the FIFO's inode for named pipes.
Readers and writers anywhere reach it by RPC; blocked operations sleep at
the server exactly like a local Unix pipe sleeps in the kernel.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, Tuple

from repro.errors import EBADF, EPIPE

PIPE_CAPACITY = 16 * 1024

PipeId = Tuple  # ("anon", site, seq) or ("fifo", gfs, ino)


@dataclass
class _PipeBuf:
    pipe_id: PipeId
    capacity: int = PIPE_CAPACITY
    data: bytearray = field(default_factory=bytearray)
    readers: int = 0
    writers: int = 0
    read_waiters: Deque = field(default_factory=deque)   # (future, nbytes)
    write_waiters: Deque = field(default_factory=deque)  # (future, bytes)
    open_waiters: Deque = field(default_factory=deque)   # futures (FIFO open)

    @property
    def room(self) -> int:
        return self.capacity - len(self.data)


class PipeService:
    """Server-side pipe buffers plus the client-side operations."""

    def __init__(self, site):
        self.site = site
        self.bufs: Dict[PipeId, _PipeBuf] = {}
        self._seq = itertools.count(1)
        site.register_handler("pipe.open", self.h_open)
        site.register_handler("pipe.read", self.h_read)
        site.register_handler("pipe.write", self.h_write)
        site.register_handler("pipe.close", self.h_close)

    def reset_volatile(self) -> None:
        """A crash destroys pipe buffers (and wakes nobody: remote peers
        learn through their closed circuits)."""
        self.bufs.clear()

    def new_anon_id(self) -> PipeId:
        return ("anon", self.site.site_id, next(self._seq))

    # ------------------------------------------------------------------
    # Client-side operations (run at the using site)
    # ------------------------------------------------------------------

    def open_role(self, server: int, pipe_id: PipeId, role: str) -> Generator:
        yield from self.site.rpc(server, "pipe.open",
                                 {"pipe": pipe_id, "role": role})
        return None

    def read(self, server: int, pipe_id: PipeId, nbytes: int) -> Generator:
        data = yield from self.site.rpc(server, "pipe.read",
                                        {"pipe": pipe_id, "n": nbytes})
        return data

    def write(self, server: int, pipe_id: PipeId, data: bytes) -> Generator:
        n = yield from self.site.rpc(server, "pipe.write",
                                     {"pipe": pipe_id, "data": data})
        return n

    def close_role(self, server: int, pipe_id: PipeId, role: str) -> Generator:
        yield from self.site.oneway_quiet(server, "pipe.close",
                                          {"pipe": pipe_id, "role": role})
        return None

    # ------------------------------------------------------------------
    # Server-side handlers
    # ------------------------------------------------------------------

    def _buf(self, pipe_id: PipeId, create: bool = False) -> _PipeBuf:
        buf = self.bufs.get(pipe_id)
        if buf is None:
            if not create:
                raise EBADF(f"no pipe {pipe_id} at site {self.site.site_id}")
            buf = _PipeBuf(pipe_id=pipe_id)
            self.bufs[pipe_id] = buf
        return buf

    def h_open(self, src: int, p: dict) -> Generator:
        buf = self._buf(p["pipe"], create=True)
        if p["role"] == "r":
            buf.readers += 1
        else:
            buf.writers += 1
        while buf.open_waiters:
            buf.open_waiters.popleft().resolve(None)
        # Named pipes keep Unix FIFO semantics: opening one end blocks
        # until the other end is open (anonymous pipes are created with
        # both ends held by the creator, so they never wait here).
        if p["pipe"][0] == "fifo":
            while (buf.readers == 0) or (buf.writers == 0):
                fut = self.site.sim.create_future(
                    f"fifo-open:{buf.pipe_id}")
                buf.open_waiters.append(fut)
                yield fut
        return None

    def h_read(self, src: int, p: dict) -> Generator:
        buf = self._buf(p["pipe"])
        nbytes = p["n"]
        while True:
            if buf.data:
                out = bytes(buf.data[:nbytes])
                del buf.data[:nbytes]
                self._pump(buf)
                return out
            if buf.writers == 0:
                return b""      # EOF
            fut = self.site.sim.create_future(f"pipe-read:{buf.pipe_id}")
            buf.read_waiters.append((fut, nbytes))
            yield fut           # woken by _pump / h_close

    def h_write(self, src: int, p: dict) -> Generator:
        buf = self._buf(p["pipe"])
        data = p["data"]
        if buf.readers == 0:
            raise EPIPE(f"pipe {buf.pipe_id} has no readers")
        written = 0
        while written < len(data):
            if buf.readers == 0:
                raise EPIPE(f"pipe {buf.pipe_id} readers went away")
            room = buf.room
            if room > 0:
                chunk = data[written:written + room]
                buf.data.extend(chunk)
                written += len(chunk)
                self._pump(buf)
                continue
            fut = self.site.sim.create_future(f"pipe-write:{buf.pipe_id}")
            buf.write_waiters.append((fut, None))
            yield fut
        return written

    def h_close(self, src: int, p: dict) -> Generator:
        buf = self.bufs.get(p["pipe"])
        if buf is None:
            return None
        if p["role"] == "r":
            buf.readers = max(0, buf.readers - 1)
            if buf.readers == 0:
                # Writers blocked on a full pipe get EPIPE.
                while buf.write_waiters:
                    fut, __ = buf.write_waiters.popleft()
                    fut.fail(EPIPE(f"pipe {buf.pipe_id} readers closed"))
        else:
            buf.writers = max(0, buf.writers - 1)
            if buf.writers == 0:
                # Readers blocked on an empty pipe see EOF.
                while buf.read_waiters:
                    fut, __ = buf.read_waiters.popleft()
                    fut.resolve(None)
        if buf.readers == 0 and buf.writers == 0 and not buf.data:
            self.bufs.pop(p["pipe"], None)
        return None
        yield  # pragma: no cover

    def _pump(self, buf: _PipeBuf) -> None:
        """Wake sleepers whose condition now holds."""
        while buf.read_waiters and buf.data:
            fut, __ = buf.read_waiters.popleft()
            fut.resolve(None)
        while buf.write_waiters and buf.room > 0:
            fut, __ = buf.write_waiters.popleft()
            fut.resolve(None)
