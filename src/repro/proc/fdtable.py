"""Shared open file descriptors with the token scheme.

Paper section 3.1 footnote: "To implement this functionality across the
network we keep a file descriptor at each site, with only one valid at any
time, using a token scheme to determine which file descriptor is currently
valid."  The site that created the descriptor acts as token manager; the
current holder's replica carries the authoritative file position.

For descriptors open for modification, yanking the token also closes the
holder's storage-site open, so the CSS's single-writer policy is never
violated by the same logical descriptor appearing at two sites.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.errors import EBADF, NetworkError
from repro.fs.types import Mode

OfdId = Tuple[int, int]    # (manager site, sequence number)


@dataclass
class OfdReplica:
    """This site's incarnation of one open file description."""

    ofd_id: OfdId
    kind: str                      # "file" | "pipe"
    target: tuple                  # gfile for files, pipe id for pipes
    mode: Mode
    offset: int = 0
    has_token: bool = False
    handle: Optional[object] = None     # UsHandle when open here
    local_refs: int = 0

    def export(self) -> dict:
        """Wire form used when a descriptor is inherited across sites."""
        return {"ofd_id": self.ofd_id, "kind": self.kind,
                "target": self.target, "mode": self.mode}


class FdTable:
    """Per-site descriptor replicas plus the token-manager role."""

    def __init__(self, site):
        self.site = site
        self.replicas: Dict[OfdId, OfdReplica] = {}
        # Token-manager state (for descriptors this site created):
        self.token_holder: Dict[OfdId, Optional[int]] = {}
        self.global_refs: Dict[OfdId, int] = {}
        # Offsets surrendered by dying replicas, held until the next grant.
        self.parked_offsets: Dict[OfdId, int] = {}
        self._seq = itertools.count(1)
        site.register_handler("proc.token_get", self.h_token_get)
        site.register_handler("proc.token_yank", self.h_token_yank)
        site.register_handler("proc.token_surrender", self.h_token_surrender)
        site.register_handler("proc.ofd_ref", self.h_ofd_ref)
        site.register_handler("proc.ofd_unref", self.h_ofd_unref)

    @property
    def sid(self) -> int:
        return self.site.site_id

    def reset_volatile(self) -> None:
        self.replicas.clear()
        self.token_holder.clear()
        self.global_refs.clear()
        self.parked_offsets.clear()

    # ------------------------------------------------------------------
    # Creation / inheritance
    # ------------------------------------------------------------------

    def create(self, kind: str, target: tuple, mode: Mode,
               handle=None) -> OfdId:
        """Create a descriptor managed by this site; token starts here."""
        ofd_id: OfdId = (self.sid, next(self._seq))
        self.replicas[ofd_id] = OfdReplica(
            ofd_id=ofd_id, kind=kind, target=target, mode=mode,
            has_token=True, handle=handle, local_refs=1)
        self.token_holder[ofd_id] = self.sid
        self.global_refs[ofd_id] = 1
        return ofd_id

    def attach(self, spec: dict) -> Generator:
        """Install an inherited descriptor at this site (fork/exec arrival).

        Bumps the manager's global refcount.
        """
        ofd_id: OfdId = spec["ofd_id"]
        rep = self.replicas.get(ofd_id)
        if rep is None:
            rep = OfdReplica(ofd_id=ofd_id, kind=spec["kind"],
                             target=spec["target"], mode=spec["mode"])
            self.replicas[ofd_id] = rep
        rep.local_refs += 1
        mgr = ofd_id[0]
        if mgr == self.sid:
            self.global_refs[ofd_id] = self.global_refs.get(ofd_id, 0) + 1
        else:
            yield from self.site.oneway_quiet(mgr, "proc.ofd_ref",
                                              {"ofd": ofd_id})
        return rep

    def dup(self, ofd_id: OfdId) -> None:
        self.replica(ofd_id).local_refs += 1
        mgr = ofd_id[0]
        if mgr == self.sid:
            self.global_refs[ofd_id] = self.global_refs.get(ofd_id, 0) + 1

    def replica(self, ofd_id: OfdId) -> OfdReplica:
        rep = self.replicas.get(ofd_id)
        if rep is None:
            raise EBADF(f"no descriptor {ofd_id} at site {self.sid}")
        return rep

    # ------------------------------------------------------------------
    # Token protocol
    # ------------------------------------------------------------------

    def acquire_token(self, ofd_id: OfdId) -> Generator:
        """Make this site's replica the valid one; returns the file offset."""
        rep = self.replica(ofd_id)
        if rep.has_token:
            return rep.offset
        mgr = ofd_id[0]
        resp = yield from self.site.rpc(mgr, "proc.token_get", {
            "ofd": ofd_id, "requester": self.sid,
        })
        rep.has_token = True
        if resp["offset"] is not None:
            rep.offset = resp["offset"]
        return rep.offset

    def h_token_get(self, src: int, p: dict) -> Generator:
        """Token-manager side: yank from the current holder, grant to the
        requester."""
        ofd_id: OfdId = p["ofd"]
        requester: int = p["requester"]
        holder = self.token_holder.get(ofd_id)
        offset: Optional[int] = self.parked_offsets.pop(ofd_id, None)
        if holder is not None and holder != requester:
            if holder == self.sid:
                offset = yield from self._yank_local(ofd_id)
            else:
                try:
                    offset = yield from self.site.rpc(
                        holder, "proc.token_yank", {"ofd": ofd_id})
                except NetworkError:
                    offset = None   # holder unreachable: offset is lost
        self.token_holder[ofd_id] = requester
        return {"offset": offset}

    def h_token_yank(self, src: int, p: dict) -> Generator:
        offset = yield from self._yank_local(p["ofd"])
        return offset

    def h_token_surrender(self, src: int, p: dict) -> Generator:
        """A dying replica returned the token with its final offset."""
        ofd_id: OfdId = p["ofd"]
        if self.token_holder.get(ofd_id) == src:
            self.token_holder[ofd_id] = None
            self.parked_offsets[ofd_id] = p["offset"]
        return None
        yield  # pragma: no cover

    def _yank_local(self, ofd_id: OfdId) -> Generator:
        rep = self.replicas.get(ofd_id)
        if rep is None:
            return None
        rep.has_token = False
        # A write descriptor's open moves with the token so the CSS sees a
        # single writer.
        if rep.mode.writable and rep.handle is not None \
                and not rep.handle.closed:
            yield from self.site.fs.close(rep.handle)
            rep.handle = None
        return rep.offset

    # ------------------------------------------------------------------
    # Local file handle (lazily opened per site)
    # ------------------------------------------------------------------

    def file_handle(self, ofd_id: OfdId) -> Generator:
        rep = self.replica(ofd_id)
        if rep.kind != "file":
            raise EBADF(f"descriptor {ofd_id} is not a file")
        if rep.handle is None or rep.handle.closed:
            rep.handle = yield from self.site.fs.open_gfile(
                rep.target, rep.mode)
        return rep.handle

    # ------------------------------------------------------------------
    # Reference counting / close
    # ------------------------------------------------------------------

    def deref(self, ofd_id: OfdId) -> Generator:
        """Drop one local reference; returns True when this *site's* last
        reference went away (pipe callers then retire their server role)."""
        rep = self.replica(ofd_id)
        rep.local_refs -= 1
        if rep.local_refs > 0:
            return False
        if rep.handle is not None and not rep.handle.closed:
            yield from self.site.fs.close(rep.handle)
            rep.handle = None
        self.replicas.pop(ofd_id, None)
        mgr = ofd_id[0]
        if rep.has_token:
            # Surrender the token so survivors inherit the file position.
            if mgr == self.sid:
                self.token_holder[ofd_id] = None
                self.parked_offsets[ofd_id] = rep.offset
            else:
                yield from self.site.oneway_quiet(
                    mgr, "proc.token_surrender",
                    {"ofd": ofd_id, "offset": rep.offset})
        if mgr == self.sid:
            remaining = self.global_refs.get(ofd_id, 1) - 1
            if remaining <= 0:
                self.global_refs.pop(ofd_id, None)
                self.token_holder.pop(ofd_id, None)
                self.parked_offsets.pop(ofd_id, None)
            else:
                self.global_refs[ofd_id] = remaining
        else:
            yield from self.site.oneway_quiet(mgr, "proc.ofd_unref",
                                              {"ofd": ofd_id})
        return True

    def h_ofd_ref(self, src: int, p: dict) -> Generator:
        ofd_id: OfdId = p["ofd"]
        self.global_refs[ofd_id] = self.global_refs.get(ofd_id, 0) + 1
        return None
        yield  # pragma: no cover

    def h_ofd_unref(self, src: int, p: dict) -> Generator:
        ofd_id: OfdId = p["ofd"]
        remaining = self.global_refs.get(ofd_id, 1) - 1
        if remaining <= 0:
            self.global_refs.pop(ofd_id, None)
            self.token_holder.pop(ofd_id, None)
            self.parked_offsets.pop(ofd_id, None)
        else:
            self.global_refs[ofd_id] = remaining
        return None
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # Partition handling
    # ------------------------------------------------------------------

    def on_partition_change(self, lost: set) -> None:
        """Reclaim tokens held at lost sites (their offsets are gone)."""
        for ofd_id, holder in list(self.token_holder.items()):
            if holder in lost:
                self.token_holder[ofd_id] = None
