"""Process structures: images, signals, per-process state."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fs.types import Gfile

PID_SITE_FACTOR = 1_000_000


def pid_origin(pid: int) -> int:
    """The site that allocated this pid (signal routing starts there)."""
    return pid // PID_SITE_FACTOR


class ProcState(enum.Enum):
    RUNNING = "running"
    ZOMBIE = "zombie"        # exited, not yet waited for
    GONE = "gone"


class Signal(enum.IntEnum):
    SIGHUP = 1
    SIGINT = 2
    SIGKILL = 9
    SIGPIPE = 13
    SIGTERM = 15
    SIGCHLD = 17
    # LOCUS additions (section 3.3): "the new error types primarily concern
    # cases where either the calling or called machine fails while the
    # parent and child are still alive".
    SIGCHLD_ERR = 90         # a child's machine failed
    SIGPAR_ERR = 91          # the parent's machine failed


@dataclass
class Image:
    """A process address space: a load module plus data pages.

    ``program`` names an entry in the cluster's program table (the
    simulation's stand-in for machine code); ``cpu`` records which machine
    type the load module was built for (section 2.4.1).
    """

    program: str = "init"
    cpu: str = "vax"
    code_pages: int = 16
    data_pages: int = 8
    reentrant: bool = True

    def clone(self) -> "Image":
        return Image(program=self.program, cpu=self.cpu,
                     code_pages=self.code_pages,
                     data_pages=self.data_pages,
                     reentrant=self.reentrant)


@dataclass
class ChildRecord:
    pid: int
    site: int
    status: str = "running"           # running | exited | error
    exit_code: Optional[int] = None
    error: Optional[str] = None


@dataclass
class Process:
    """One process.  The structured advice list (section 3.1) controls where
    forks and execs place the process."""

    pid: int
    ppid: int
    site_id: int
    user: str = "root"
    state: ProcState = ProcState.RUNNING
    cwd: Gfile = (0, 1)
    image: Image = field(default_factory=Image)
    # Execution-site advice: tried in order by fork/exec/run.
    advice: List[int] = field(default_factory=list)
    # Default replication factor for files created by this process
    # (section 2.3.7's inherited variable, settable by a new system call).
    default_copies: int = 1
    # Hidden-directory context (section 2.4.1), e.g. ["vax"].
    hidden_context: List[str] = field(default_factory=lambda: ["vax"])
    hidden_visible: bool = False
    fds: Dict[int, tuple] = field(default_factory=dict)   # fd -> ofd_id
    next_fd: int = 0
    exit_code: Optional[int] = None
    # Error information deposited when a cooperating site fails; read via
    # the new proc_errinfo system call (section 3.3).
    err_info: List[dict] = field(default_factory=list)
    pending_signals: List[Signal] = field(default_factory=list)
    children: Dict[int, ChildRecord] = field(default_factory=dict)
    parent_site: Optional[int] = None

    # Per-process descriptor table limit (conventional Unix NOFILE).
    MAX_FDS = 64

    def alloc_fd(self, ofd_id: tuple) -> int:
        if len(self.fds) >= self.MAX_FDS:
            from repro.errors import EMFILE
            raise EMFILE(f"process {self.pid} has {len(self.fds)} "
                         f"descriptors open")
        fd = self.next_fd
        self.next_fd += 1
        self.fds[fd] = ofd_id
        return fd

    def inherit_env(self) -> dict:
        """Environment copied into a child (fork) or moved (exec)."""
        return {
            "user": self.user,
            "cwd": self.cwd,
            "default_copies": self.default_copies,
            "hidden_context": list(self.hidden_context),
            "hidden_visible": self.hidden_visible,
            "advice": list(self.advice),
        }

    def apply_env(self, env: dict) -> None:
        self.user = env["user"]
        self.cwd = env["cwd"]
        self.default_copies = env["default_copies"]
        self.hidden_context = list(env["hidden_context"])
        self.hidden_visible = env["hidden_visible"]
        self.advice = list(env["advice"])
