"""Transparent remote processes (paper section 3).

Process creation (fork), program installation (exec) and the combined,
copy-avoiding ``run`` call work identically at every site; inter-process
functions — signals, pipes, shared open file descriptors — keep single
machine Unix semantics across the network, the shared file position being
maintained with a token scheme (section 3.2 footnote).  Failures of a
cooperating process's site are folded into the Unix interface as error
signals plus interrogatable error information (section 3.3).
"""

from repro.proc.process import Image, Process, ProcState, Signal
from repro.proc.manager import ProcManager
from repro.proc.api import ProcApi

__all__ = ["Image", "Process", "ProcState", "Signal", "ProcManager",
           "ProcApi"]
