"""Execution-site selection policies (paper sections 3.1 and 6).

"The decision about where the new process is to execute is specified by
information associated with the calling process.  That information,
currently a structured advice list, can be set dynamically.  Shell commands
to control execution site are also available."  And from the experience
section: "We found that the primary motivation for remote execution was
load balancing."

A :class:`Scheduler` turns a policy into an advice list for a process; the
process machinery itself only ever sees advice, exactly as in LOCUS.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.errors import EINVAL

Policy = Callable[["Scheduler"], List[int]]


class Scheduler:
    """Chooses execution sites over the live cluster state."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._rr = itertools.count()
        self._policies: Dict[str, Policy] = {
            "local": Scheduler._policy_local,
            "round_robin": Scheduler._policy_round_robin,
            "least_loaded": Scheduler._policy_least_loaded,
            "cpu_idle": Scheduler._policy_cpu_idle,
        }

    # -- policy registry ---------------------------------------------------

    def register_policy(self, name: str, fn: Policy) -> None:
        """Install a custom policy: ``fn(scheduler) -> ordered site list``."""
        self._policies[name] = fn

    def advice(self, policy: str = "least_loaded",
               cpu: Optional[str] = None) -> List[int]:
        """An ordered advice list under ``policy``; optionally restricted
        to sites of one machine type (heterogeneous networks run a load
        module only where its cpu matches, section 2.4.1)."""
        fn = self._policies.get(policy)
        if fn is None:
            raise EINVAL(f"unknown scheduling policy {policy!r}")
        sites = fn(self)
        if cpu is not None:
            sites = [s for s in sites
                     if self.cluster.site(s).cpu_type == cpu]
        return sites

    def place(self, shell, policy: str = "least_loaded",
              cpu: Optional[str] = None) -> List[int]:
        """Set a shell's process advice list from a policy; returns it."""
        sites = self.advice(policy, cpu=cpu)
        shell.set_advice(sites)
        return sites

    # -- built-in policies ---------------------------------------------------

    def _up_sites(self) -> List[int]:
        return [s.site_id for s in self.cluster.sites if s.up]

    def _policy_local(self) -> List[int]:
        return []          # empty advice: fork/run default to local

    def _policy_round_robin(self) -> List[int]:
        up = self._up_sites()
        if not up:
            return []
        start = next(self._rr) % len(up)
        return up[start:] + up[:start]

    def _policy_least_loaded(self) -> List[int]:
        """Fewest live processes first — the balancing LOCUS users ran."""
        return sorted(self._up_sites(),
                      key=lambda s: (len(self.cluster.site(s).proc.procs),
                                     s))

    def _policy_cpu_idle(self) -> List[int]:
        """Least accumulated CPU first (a longer-horizon balance)."""
        return sorted(self._up_sites(),
                      key=lambda s: (self.cluster.site(s).cpu_used, s))
