"""Transparent remote device access (paper section 2.4.2).

"LOCUS provides for transparent use of remote devices in most cases.  This
functionality is exceedingly valuable, but involves considerable care."
A device node lives in the global naming tree like any file; its inode
names the *hosting* site (where the hardware hangs).  Opens, reads and
writes from any site are routed to the host's driver; the one documented
exception — raw, non-character devices — is refused remotely, exactly as
in the paper ("these can be accessed by executing processes remotely").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional, Tuple

from repro.errors import EACCES, EBADF, ENOENT

DeviceKey = Tuple[int, str]   # (hosting site, device name)


@dataclass
class Device:
    """A character (or raw) device and its driver callbacks.

    ``read_fn(nbytes) -> bytes`` and ``write_fn(data) -> int`` run at the
    hosting site.  A raw device (``character=False``) refuses remote access.
    """

    name: str
    site_id: int
    character: bool = True
    read_fn: Optional[Callable[[int], bytes]] = None
    write_fn: Optional[Callable[[bytes], int]] = None
    reads: int = 0
    writes: int = 0


class DeviceService:
    """Per-site device table plus the remote-access handlers."""

    def __init__(self, site):
        self.site = site
        self.devices: Dict[str, Device] = {}
        site.register_handler("dev.read", self.h_read)
        site.register_handler("dev.write", self.h_write)
        site.register_handler("dev.open", self.h_open)

    def reset_volatile(self) -> None:
        # Drivers are configuration, not volatile state: they survive a
        # reboot (the hardware is still wired to the machine).
        pass

    def on_restart(self) -> None:
        pass

    # -- registration -----------------------------------------------------

    def register(self, name: str, read_fn=None, write_fn=None,
                 character: bool = True) -> Device:
        device = Device(name=name, site_id=self.site.site_id,
                        character=character,
                        read_fn=read_fn, write_fn=write_fn)
        self.devices[name] = device
        return device

    def _device(self, name: str) -> Device:
        device = self.devices.get(name)
        if device is None:
            raise ENOENT(f"no device {name!r} at site {self.site.site_id}")
        return device

    # -- client-side operations ---------------------------------------------

    def open_device(self, host: int, name: str) -> Generator:
        yield from self.site.rpc(host, "dev.open", {
            "name": name, "remote": host != self.site.site_id,
        })
        return None

    def read(self, host: int, name: str, nbytes: int) -> Generator:
        data = yield from self.site.rpc(host, "dev.read",
                                        {"name": name, "n": nbytes})
        return data

    def write(self, host: int, name: str, data: bytes) -> Generator:
        n = yield from self.site.rpc(host, "dev.write",
                                     {"name": name, "data": data})
        return n

    # -- host-side handlers ---------------------------------------------------

    def h_open(self, src: int, p: dict) -> Generator:
        device = self._device(p["name"])
        if not device.character and p.get("remote"):
            # "The only exception is remote access to raw, non-character
            # devices" — run a process here instead.
            raise EACCES(f"raw device {device.name!r} cannot be accessed "
                         f"remotely; execute a process at site "
                         f"{device.site_id}")
        yield from self.site.cpu(self.site.cost.buffer_hit)
        return None

    def h_read(self, src: int, p: dict) -> Generator:
        device = self._device(p["name"])
        if device.read_fn is None:
            raise EBADF(f"device {device.name!r} is not readable")
        device.reads += 1
        yield from self.site.cpu(self.site.cost.cpu_syscall)
        return device.read_fn(p["n"])

    def h_write(self, src: int, p: dict) -> Generator:
        device = self._device(p["name"])
        if device.write_fn is None:
            raise EBADF(f"device {device.name!r} is not writable")
        device.writes += 1
        yield from self.site.cpu(self.site.cost.cpu_syscall)
        return device.write_fn(p["data"])
