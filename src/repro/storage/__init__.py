"""Storage substrate: packs, blocks, inodes, buffer cache, shadow pages.

A *pack* is one physical container of a logical filegroup (paper section
2.2.2).  Packs are incomplete by design: each stores a subset of the
filegroup's files, but every pack carries the full inode table (the CSS
"stores a copy of the disk inode information whether or not it actually
stores the file").  Atomic commit is implemented with shadow pages entirely
at the storage site (section 2.3.6).
"""

from repro.storage.version_vector import VersionVector, Ordering
from repro.storage.inode import DiskInode, FileType
from repro.storage.pack import Pack
from repro.storage.buffer_cache import BufferCache
from repro.storage.shadow import ShadowFile

__all__ = [
    "VersionVector",
    "Ordering",
    "DiskInode",
    "FileType",
    "Pack",
    "BufferCache",
    "ShadowFile",
]
