"""Shadow-page commit mechanism (paper section 2.3.6).

"LOCUS uses a shadow page mechanism, partly because Unix file modifications
tend to overwrite entire files, and partly because high performance
shadowing is easier to implement."

The whole mechanism lives at the storage site and is transparent to the
using site.  A modification to an existing page allocates a new physical
page; the disk inode keeps the old page numbers while the incore inode is
updated with the new ones.  "The atomic commit operation consists merely of
moving the incore inode information to the disk inode."  Abort discards the
incore information; the old inode and pages are still on disk.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import EINVAL, FsError
from repro.storage.inode import DiskInode
from repro.storage.pack import Pack
from repro.storage.version_vector import VersionVector


class ShadowFile:
    """Incore inode plus shadow-page bookkeeping for one open-for-modify.

    If a given logical page is modified multiple times, the shadow page is
    reused in place for subsequent changes (section 2.3.6).
    """

    def __init__(self, pack: Pack, ino: int):
        disk = pack.get_inode(ino)
        if disk is None:
            raise EINVAL(f"no inode {ino} in pack gfs={pack.gfs}")
        self.pack = pack
        self.ino = ino
        self.incore: DiskInode = disk.clone()
        self._shadowed: Dict[int, Optional[int]] = {}  # page idx -> old block
        self._freed_old: List[int] = []                # truncated-away blocks
        self.dirty = False

    # -- reads -------------------------------------------------------------

    def page_block(self, page_no: int) -> Optional[int]:
        if 0 <= page_no < len(self.incore.pages):
            return self.incore.pages[page_no]
        return None

    def read_page(self, page_no: int) -> bytes:
        blockno = self.page_block(page_no)
        if blockno is None:
            return b""
        return self.pack.read_block(blockno)

    # -- modifications (staged; invisible until commit) ----------------------

    def write_page(self, page_no: int, data: bytes) -> int:
        """Write one logical page to a shadow block; returns the block no.

        Whether the change covers the whole page or not is the caller's
        concern (the partial-page case reads the old page first via the
        normal read protocol); by the time data reaches the shadow layer it
        is a full page image.
        """
        if page_no < 0:
            raise EINVAL(f"negative page number {page_no}")
        prior_len = len(self.incore.pages)
        while len(self.incore.pages) <= page_no:
            self.incore.pages.append(None)
        first = page_no not in self._shadowed
        if first:
            # First modification of this page: allocate a fresh block and
            # remember the old one so commit can free it / abort keep it.
            self._shadowed[page_no] = self.incore.pages[page_no]
            self.incore.pages[page_no] = self.pack.alloc_block()
        blockno = self.incore.pages[page_no]
        assert blockno is not None
        try:
            self.pack.write_block(blockno, data)
        except FsError:
            if first:
                # Restore the mapping: a failed physical write must never
                # leave an unwritten shadow block where data should be.
                self.pack.free_block(blockno)
                self.incore.pages[page_no] = self._shadowed.pop(page_no)
                del self.incore.pages[prior_len:]
            raise
        self.dirty = True
        return blockno

    def set_size(self, size: int) -> None:
        self.incore.size = size
        self.dirty = True

    def truncate(self) -> None:
        """Drop every page (staged): Unix-style whole-file overwrite."""
        for page_no, blockno in enumerate(self.incore.pages):
            if page_no in self._shadowed:
                # Already shadowed: the new block dies now, old at commit.
                self.pack.free_block(blockno)
                old = self._shadowed.pop(page_no)
                if old is not None:
                    self._freed_old.append(old)
            elif blockno is not None:
                self._freed_old.append(blockno)
        self.incore.pages = []
        self.incore.size = 0
        self.dirty = True

    def set_attrs(self, **attrs) -> None:
        """Stage inode-only changes (ownership, permissions, type...)."""
        for name, value in attrs.items():
            if not hasattr(self.incore, name):
                raise EINVAL(f"unknown inode attribute {name!r}")
            setattr(self.incore, name, value)
        self.dirty = True

    def mark_deleted(self) -> None:
        self.incore.deleted = True
        self.dirty = True

    # -- commit / abort ------------------------------------------------------

    def commit(self, new_version: Optional[VersionVector] = None,
               mtime: float = 0.0) -> VersionVector:
        """Atomically move the incore inode to the disk inode.

        ``new_version`` overrides the default bump (used by propagation,
        which installs the originating site's vector verbatim, and by
        reconciliation, which installs the merged vector).
        """
        if new_version is None:
            new_version = self.incore.version.bump(self.pack.site_id)
        self.incore.version = new_version
        self.incore.mtime = mtime
        # The atomic step: one pointer swap in the real system.
        self.pack.inodes[self.ino] = self.incore.clone()
        # Old pages are now unreachable; free them.
        for old_block in self._shadowed.values():
            if old_block is not None:
                self.pack.free_block(old_block)
        for old_block in self._freed_old:
            self.pack.free_block(old_block)
        self._shadowed.clear()
        self._freed_old.clear()
        self.dirty = False
        return new_version

    def abort(self) -> None:
        """Discard staged changes: free shadow blocks, re-snapshot disk."""
        for page_no, old_block in self._shadowed.items():
            new_block = self.incore.pages[page_no]
            if new_block is not None:
                self.pack.free_block(new_block)
        self._shadowed.clear()
        self._freed_old.clear()
        disk = self.pack.get_inode(self.ino)
        if disk is not None:
            self.incore = disk.clone()
        self.dirty = False

    @property
    def shadowed_pages(self) -> List[int]:
        return sorted(self._shadowed)
