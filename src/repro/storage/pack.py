"""Packs: physical containers of a logical filegroup.

Inode allocation: "to facilitate inode allocation and allow operation when
not all sites are accessible, the entire inode space of a filegroup is
partitioned so that each physical container for the filegroup has a
collection of inode numbers that it can allocate" (paper section 2.3.7).
Pack ``k`` owns the half-open range ``[k << INO_SHIFT, (k+1) << INO_SHIFT)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import EIO, ENOSPC
from repro.storage.inode import DiskInode, FileType

# 2**20 inode numbers per pack: effectively inexhaustible for experiments
# while keeping the owning pack recoverable as ``ino >> INO_SHIFT``.
INO_SHIFT = 20

ROOT_INO = 1  # the root directory of every filegroup lives at inode 1


def pack_index_of(ino: int) -> int:
    """The pack index whose pool the inode number was allocated from."""
    return ino >> INO_SHIFT


class Pack:
    """One physical container: a block store plus an inode table."""

    def __init__(self, gfs: int, site_id: int, pack_index: int,
                 n_blocks: int = 1 << 16):
        self.gfs = gfs
        self.site_id = site_id
        self.pack_index = pack_index
        self.n_blocks = n_blocks
        self.blocks: Dict[int, bytes] = {}
        self._free_blocks: List[int] = []
        self._next_block = 0
        self.inodes: Dict[int, DiskInode] = {}
        self._free_inos: List[int] = []
        self._next_ino = (pack_index << INO_SHIFT)
        if pack_index == 0:
            self._next_ino = ROOT_INO  # reserve 0, start pool at the root ino
        # Deleted inodes awaiting reallocation: the originating pack may only
        # reuse a number once every storage site has seen the delete
        # (section 2.3.7).
        self.pending_reuse: Set[int] = set()
        # Injected disk faults (repro.faults): the next N block writes fail
        # with EIO instead of taking effect.
        self.write_faults = 0
        # Exactly-once bookkeeping.  The idempotency ledger lives on the
        # pack because packs model the disk: a commit's memoized reply must
        # survive an SS crash exactly as the committed blocks do, so a
        # retry arriving after restart replays instead of re-applying.
        # Created lazily by the fs manager (the ledger window is a cost-
        # model knob the pack does not see).
        self.ledger = None
        # Audit shadow for the invariant checker: (client, seq) -> number
        # of times a stamped mutating op actually executed against this
        # pack.  Any count above one is an exactly-once violation.
        self.applied_ops: Dict[tuple, int] = {}

    # -- blocks ------------------------------------------------------------

    def alloc_block(self) -> int:
        if self._free_blocks:
            return self._free_blocks.pop()
        if self._next_block >= self.n_blocks:
            raise ENOSPC(f"pack gfs={self.gfs} site={self.site_id} is full")
        blockno = self._next_block
        self._next_block += 1
        return blockno

    def free_block(self, blockno: Optional[int]) -> None:
        if blockno is None:
            return
        self.blocks.pop(blockno, None)
        self._free_blocks.append(blockno)

    def read_block(self, blockno: int) -> bytes:
        return self.blocks.get(blockno, b"")

    def write_block(self, blockno: int, data: bytes) -> None:
        if self.write_faults > 0:
            self.write_faults -= 1
            raise EIO(f"disk write failed: gfs={self.gfs} "
                      f"site={self.site_id} block={blockno}")
        self.blocks[blockno] = data

    @property
    def blocks_in_use(self) -> int:
        return self._next_block - len(self._free_blocks)

    # -- inodes --------------------------------------------------------------

    def owns_ino(self, ino: int) -> bool:
        if self.pack_index == 0:
            return 0 <= ino < (1 << INO_SHIFT)
        return pack_index_of(ino) == self.pack_index

    def alloc_inode(self, ftype: FileType = FileType.REGULAR,
                    owner: str = "root", perms: int = 0o644,
                    storage_sites: Optional[List[int]] = None) -> DiskInode:
        """Allocate a fresh inode number from this pack's pool."""
        if self._free_inos:
            ino = self._free_inos.pop()
        else:
            ino = self._next_ino
            self._next_ino += 1
            if pack_index_of(ino) != self.pack_index and not (
                    self.pack_index == 0 and ino < (1 << INO_SHIFT)):
                raise ENOSPC(f"inode pool of pack {self.pack_index} exhausted")
        inode = DiskInode(ino=ino, ftype=ftype, owner=owner, perms=perms,
                          storage_sites=list(storage_sites or [self.site_id]))
        self.inodes[ino] = inode
        return inode

    def install_inode(self, attrs: dict, has_data: bool) -> DiskInode:
        """Install (or refresh) an inode entry learned from another pack."""
        ino = attrs["ino"]
        inode = self.inodes.get(ino)
        if inode is None:
            inode = DiskInode(ino=ino, has_data=has_data)
            self.inodes[ino] = inode
        inode.apply_attrs(attrs)
        inode.has_data = has_data or inode.has_data
        return inode

    def get_inode(self, ino: int) -> Optional[DiskInode]:
        return self.inodes.get(ino)

    def stores(self, ino: int) -> bool:
        """Does this pack store the file's data (not just its inode)?"""
        inode = self.inodes.get(ino)
        return inode is not None and inode.has_data and not inode.deleted

    def release_inode(self, ino: int) -> None:
        """Return a fully-deleted inode number to the pool (only legal at
        the pack that originally allocated it)."""
        inode = self.inodes.pop(ino, None)
        if inode is not None:
            for blockno in inode.pages:
                self.free_block(blockno)
        self.pending_reuse.discard(ino)
        if self.owns_ino(ino):
            self._free_inos.append(ino)

    def drop_data(self, ino: int) -> None:
        """Free the data pages, keeping the inode entry (remote delete seen)."""
        inode = self.inodes.get(ino)
        if inode is None:
            return
        for blockno in inode.pages:
            self.free_block(blockno)
        inode.pages = []
        inode.size = 0

    def inventory(self) -> Dict[int, dict]:
        """Snapshot for recovery: ino -> (attrs, has_data)."""
        return {
            ino: {"attrs": inode.attrs(), "has_data": inode.has_data}
            for ino, inode in self.inodes.items()
        }

    def __repr__(self) -> str:
        return (f"<Pack gfs={self.gfs} site={self.site_id} "
                f"idx={self.pack_index} inodes={len(self.inodes)} "
                f"blocks={self.blocks_in_use}>")
