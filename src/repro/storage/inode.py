"""Disk inodes and file types.

A file's globally unique low-level name is ``<logical filegroup number,
inode number>`` (paper section 2.2.2).  The inode is treated as part of the
file from the recovery point of view (section 4.4), so it carries the
version vector.  All files including directories have a type used by
recovery software to take appropriate action (section 4.3); the paper's
current types are directories, mailboxes, database files and untyped files.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.storage.version_vector import VersionVector


class FileType(enum.Enum):
    REGULAR = "regular"            # untyped user data
    DIRECTORY = "directory"
    MAILBOX = "mailbox"
    DATABASE = "database"
    HIDDEN_DIR = "hidden_dir"      # context-sensitive name (section 2.4.1)
    PIPE = "pipe"                  # named pipe (section 2.4.2)
    DEVICE = "device"              # remote-transparent device node


@dataclass
class DiskInode:
    """Persistent per-file metadata as stored in one pack.

    Every pack of a filegroup holds an entry for every file it knows about;
    ``has_data`` says whether this pack also stores the file's pages.
    """

    ino: int
    ftype: FileType = FileType.REGULAR
    size: int = 0
    owner: str = "root"
    perms: int = 0o644
    nlink: int = 1
    has_data: bool = True
    pages: List[Optional[int]] = field(default_factory=list)
    version: VersionVector = field(default_factory=VersionVector)
    deleted: bool = False
    # Sites whose packs store this file's data (the CSS "has a list of packs
    # which store the file"); replicated with the inode.
    storage_sites: List[int] = field(default_factory=list)
    conflict: bool = False
    mtime: float = 0.0

    def attrs(self) -> dict:
        """The wire representation of inode attributes (no page pointers —
        'The US function never deals with actual disk blocks')."""
        return {
            "ino": self.ino,
            "ftype": self.ftype,
            "size": self.size,
            "owner": self.owner,
            "perms": self.perms,
            "nlink": self.nlink,
            "version": self.version.copy(),
            "deleted": self.deleted,
            "storage_sites": list(self.storage_sites),
            "conflict": self.conflict,
            "mtime": self.mtime,
        }

    def apply_attrs(self, attrs: dict) -> None:
        """Install attributes received from another site (propagation)."""
        self.ftype = attrs["ftype"]
        self.size = attrs["size"]
        self.owner = attrs["owner"]
        self.perms = attrs["perms"]
        self.nlink = attrs["nlink"]
        self.version = attrs["version"].copy()
        self.deleted = attrs["deleted"]
        self.storage_sites = list(attrs["storage_sites"])
        self.conflict = attrs["conflict"]
        self.mtime = attrs["mtime"]

    def clone(self) -> "DiskInode":
        """Deep-enough copy used for incore snapshots."""
        return DiskInode(
            ino=self.ino,
            ftype=self.ftype,
            size=self.size,
            owner=self.owner,
            perms=self.perms,
            nlink=self.nlink,
            has_data=self.has_data,
            pages=list(self.pages),
            version=self.version.copy(),
            deleted=self.deleted,
            storage_sites=list(self.storage_sites),
            conflict=self.conflict,
            mtime=self.mtime,
        )

    def n_pages(self) -> int:
        return len(self.pages)
