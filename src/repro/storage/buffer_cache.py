"""Per-site buffer cache.

"All such requests are serviced via kernel buffers, both in standard Unix
and in LOCUS" (paper section 2.3.3).  The using site caches remote pages it
has read; page-valid tokens managed by the storage site invalidate cached
copies when another site modifies the page (section 3.2 footnote).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferCache:
    """LRU cache of pages keyed by ``(gfs, ino, logical_page)``."""

    def __init__(self, capacity_pages: int = 256):
        if capacity_pages <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity_pages
        self._pages: "OrderedDict[Hashable, bytes]" = OrderedDict()
        self.stats = CacheStats()

    def get(self, key: Hashable) -> Optional[bytes]:
        data = self._pages.get(key)
        if data is None:
            self.stats.misses += 1
            return None
        self._pages.move_to_end(key)
        self.stats.hits += 1
        return data

    def peek(self, key: Hashable) -> Optional[bytes]:
        """Non-counting lookup (used by assertions and readahead checks)."""
        return self._pages.get(key)

    def put(self, key: Hashable, data: bytes) -> None:
        if key in self._pages:
            self._pages.move_to_end(key)
        self._pages[key] = data
        while len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one page (page-valid token revoked)."""
        if self._pages.pop(key, None) is not None:
            self.stats.invalidations += 1
            return True
        return False

    def invalidate_file(self, gfs: int, ino: int) -> int:
        """Drop every cached page of one file (close/conflict/reconcile),
        both the incore-view and committed-view keyspaces."""
        doomed = [k for k in self._pages
                  if isinstance(k, tuple) and k[:2] == (gfs, ino)]
        for key in doomed:
            self._pages.pop(key)
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def invalidate_committed(self, gfs: int, ino: int) -> int:
        """Drop only the committed-view pages of one file (a commit just
        made them stale; the incore-view pages became the new truth)."""
        doomed = [k for k in self._pages
                  if isinstance(k, tuple) and len(k) == 4
                  and k[:2] == (gfs, ino)]
        for key in doomed:
            self._pages.pop(key)
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self._pages.clear()

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._pages
