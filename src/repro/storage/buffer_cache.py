"""Per-site buffer cache.

"All such requests are serviced via kernel buffers, both in standard Unix
and in LOCUS" (paper section 2.3.3).  The using site caches remote pages it
has read; page-valid tokens managed by the storage site invalidate cached
copies when another site modifies the page (section 3.2 footnote).

Page keys are tuples beginning with ``(gfs, ino)`` — the incore view uses
``(gfs, ino, page)`` and the committed view ``(gfs, ino, page, "c")``.  A
per-file index over those keys makes whole-file invalidation proportional
to the file's cached pages instead of the cache capacity.

A companion :class:`~repro.fs.name_cache.NameCache` may be attached; every
invalidation path through this cache then also drops the file's decoded
directory entries, so all the existing invalidation call sites (commit
notification, token revocation, propagation completion, recovery installs,
partition cleanup) cover the name cache for free.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set, Tuple


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _file_key(key: Hashable) -> Optional[Tuple]:
    """The ``(gfs, ino)`` a page key belongs to, or None for foreign keys."""
    if isinstance(key, tuple) and len(key) >= 2:
        return key[:2]
    return None


class BufferCache:
    """LRU cache of pages keyed by ``(gfs, ino, logical_page[, view])``."""

    def __init__(self, capacity_pages: int = 256):
        if capacity_pages <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity_pages
        self._pages: "OrderedDict[Hashable, bytes]" = OrderedDict()
        # (gfs, ino) -> set of this file's keys currently cached.
        self._by_file: Dict[Tuple, Set[Hashable]] = {}
        self.stats = CacheStats()
        # Optional NameCache that must see every file invalidation.
        self.companion = None

    # -- internal index maintenance --------------------------------------

    def _index(self, key: Hashable) -> None:
        fkey = _file_key(key)
        if fkey is not None:
            self._by_file.setdefault(fkey, set()).add(key)

    def _unindex(self, key: Hashable) -> None:
        fkey = _file_key(key)
        if fkey is None:
            return
        keys = self._by_file.get(fkey)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_file[fkey]

    def _drop_companion(self, gfs, ino) -> None:
        if self.companion is not None:
            self.companion.invalidate_file(gfs, ino)

    # -- page operations --------------------------------------------------

    def get(self, key: Hashable) -> Optional[bytes]:
        data = self._pages.get(key)
        if data is None:
            self.stats.misses += 1
            return None
        self._pages.move_to_end(key)
        self.stats.hits += 1
        return data

    def peek(self, key: Hashable) -> Optional[bytes]:
        """Non-counting lookup (used by assertions and readahead checks)."""
        return self._pages.get(key)

    def put(self, key: Hashable, data: bytes) -> None:
        if key in self._pages:
            self._pages.move_to_end(key)
        else:
            self._index(key)
        self._pages[key] = data
        while len(self._pages) > self.capacity:
            evicted, __ = self._pages.popitem(last=False)
            self._unindex(evicted)
            self.stats.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one page (page-valid token revoked)."""
        if self._pages.pop(key, None) is not None:
            self._unindex(key)
            self.stats.invalidations += 1
            fkey = _file_key(key)
            if fkey is not None:
                self._drop_companion(*fkey)
            return True
        fkey = _file_key(key)
        if fkey is not None:
            self._drop_companion(*fkey)
        return False

    def invalidate_file(self, gfs: int, ino: int) -> int:
        """Drop every cached page of one file (close/conflict/reconcile),
        both the incore-view and committed-view keyspaces."""
        doomed = self._by_file.pop((gfs, ino), None) or ()
        for key in doomed:
            self._pages.pop(key, None)
        self.stats.invalidations += len(doomed)
        self._drop_companion(gfs, ino)
        return len(doomed)

    def invalidate_committed(self, gfs: int, ino: int) -> int:
        """Drop only the committed-view pages of one file (a commit just
        made them stale; the incore-view pages became the new truth)."""
        keys = self._by_file.get((gfs, ino))
        doomed = [k for k in keys if len(k) == 4] if keys else []
        for key in doomed:
            self._pages.pop(key, None)
            self._unindex(key)
        self.stats.invalidations += len(doomed)
        # The commit changed the file's committed content: any decoded
        # directory entries for it are stale too.
        self._drop_companion(gfs, ino)
        return len(doomed)

    def clear(self) -> None:
        self._pages.clear()
        self._by_file.clear()
        if self.companion is not None:
            self.companion.clear()

    def check_index(self) -> bool:
        """Internal consistency: the per-file index mirrors the page map
        exactly (used by the eviction-consistency tests)."""
        indexed = {k for keys in self._by_file.values() for k in keys}
        in_pages = {k for k in self._pages if _file_key(k) is not None}
        return indexed == in_pages and all(self._by_file.values())

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._pages
