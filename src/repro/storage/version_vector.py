"""Version vectors for detecting mutual inconsistency of file copies.

Implements the mechanism of Parker, Popek, et al., "Detection of Mutual
Inconsistency in Distributed Systems" (IEEE TSE, May 1983), which the paper
cites as [PARK83]: each copy of a file carries a vector counting the updates
it has seen that originated at each site.  Comparing two vectors classifies
the copies as equal, strictly newer/older, or *conflicting* — updated
independently in different partitions.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, Optional, Tuple


class Ordering(enum.Enum):
    EQUAL = "equal"
    DOMINATES = "dominates"      # self has seen strictly more updates
    DOMINATED = "dominated"      # other has seen strictly more updates
    CONFLICT = "conflict"        # concurrent: neither descends from the other


class VersionVector:
    """An immutable-by-convention map from site id to update count."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Dict[int, int]] = None):
        self._counts: Dict[int, int] = {
            site: n for site, n in (counts or {}).items() if n
        }
        if any(n < 0 for n in self._counts.values()):
            raise ValueError("version counts must be non-negative")

    # -- access ----------------------------------------------------------

    def get(self, site: int) -> int:
        return self._counts.get(site, 0)

    def sites(self) -> Iterator[int]:
        return iter(self._counts)

    def total(self) -> int:
        """Total updates seen; a cheap 'how new is this copy' scalar."""
        return sum(self._counts.values())

    def to_dict(self) -> Dict[int, int]:
        return dict(self._counts)

    def copy(self) -> "VersionVector":
        return VersionVector(self._counts)

    # -- evolution ---------------------------------------------------------

    def bump(self, site: int) -> "VersionVector":
        """A new vector with ``site``'s component incremented (one update
        originated at ``site``)."""
        counts = dict(self._counts)
        counts[site] = counts.get(site, 0) + 1
        return VersionVector(counts)

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Pointwise maximum: the reconciliation result's history covers
        both input histories."""
        counts = dict(self._counts)
        for site, n in other._counts.items():
            if n > counts.get(site, 0):
                counts[site] = n
        return VersionVector(counts)

    # -- comparison ----------------------------------------------------------

    def compare(self, other: "VersionVector") -> Ordering:
        some_greater = any(n > other.get(site)
                           for site, n in self._counts.items())
        some_less = any(n > self.get(site)
                        for site, n in other._counts.items())
        if some_greater and some_less:
            return Ordering.CONFLICT
        if some_greater:
            return Ordering.DOMINATES
        if some_less:
            return Ordering.DOMINATED
        return Ordering.EQUAL

    def dominates(self, other: "VersionVector") -> bool:
        """True if this copy's history includes all of ``other``'s (>=)."""
        return self.compare(other) in (Ordering.EQUAL, Ordering.DOMINATES)

    def conflicts(self, other: "VersionVector") -> bool:
        return self.compare(other) is Ordering.CONFLICT

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._counts.items())))

    def __repr__(self) -> str:
        inner = ",".join(f"{s}:{n}" for s, n in sorted(self._counts.items()))
        return f"vv({inner})"


def latest(copies: Iterable[Tuple[int, VersionVector]]):
    """Partition copies into (sites holding a maximal version, conflicts).

    Given ``(site, vector)`` pairs, returns ``(best_sites, best_vv,
    conflict)`` where ``conflict`` is True if some pair of copies is
    mutually inconsistent.
    """
    best_vv: Optional[VersionVector] = None
    best_sites = []
    conflict = False
    for site, vv in copies:
        if best_vv is None:
            best_vv, best_sites = vv, [site]
            continue
        order = vv.compare(best_vv)
        if order is Ordering.EQUAL:
            best_sites.append(site)
        elif order is Ordering.DOMINATES:
            best_vv, best_sites = vv, [site]
        elif order is Ordering.CONFLICT:
            conflict = True
            # Track the union-max so callers still learn the frontier.
            if vv.total() > best_vv.total():
                best_vv, best_sites = vv, [site]
    return best_sites, best_vv, conflict
