"""Public core: the cluster builder, sites, and the syscall facade."""

from repro.core.site import Site
from repro.core.cluster import LocusCluster
from repro.core.syscalls import Shell

__all__ = ["Site", "LocusCluster", "Shell"]
