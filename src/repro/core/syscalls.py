"""Synchronous per-site syscall facade for tests, examples and benchmarks.

A :class:`Shell` owns one process at one site and exposes the system-call
set as ordinary blocking methods; each call drives the simulation until the
kernel procedure completes (background kernel work — propagation,
reconfiguration — advances alongside).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.proc.api import ProcApi
from repro.proc.process import Signal


class Shell:
    """What a logged-in user at one site looks like to the experiment."""

    def __init__(self, cluster, site, user: str = "root"):
        self.cluster = cluster
        self.site = site
        self.proc = site.proc.make_process(user=user, program="shell")
        self.api = ProcApi(site, self.proc)

    def _call(self, gen, name: str):
        return self.cluster.call(self.site, gen,
                                 name=f"{name}@{self.site.site_id}")

    # -- files ----------------------------------------------------------

    def open(self, path: str, mode: str = "r", create: bool = False,
             trunc: bool = False, excl: bool = False,
             allow_conflict: bool = False) -> int:
        return self._call(self.api.open(path, mode, create=create,
                                        trunc=trunc, excl=excl,
                                        allow_conflict=allow_conflict),
                          "open")

    def read(self, fd: int, nbytes: int) -> bytes:
        return self._call(self.api.read(fd, nbytes), "read")

    def write(self, fd: int, data) -> int:
        return self._call(self.api.write(fd, data), "write")

    def pread(self, fd: int, offset: int, nbytes: int) -> bytes:
        return self._call(self.api.pread(fd, offset, nbytes), "pread")

    def pwrite(self, fd: int, offset: int, data) -> int:
        return self._call(self.api.pwrite(fd, offset, data), "pwrite")

    def lseek(self, fd: int, offset: int, whence: str = "set") -> int:
        return self._call(self.api.lseek(fd, offset, whence), "lseek")

    def close(self, fd: int) -> None:
        return self._call(self.api.close(fd), "close")

    def dup(self, fd: int) -> int:
        return self._call(self.api.dup(fd), "dup")

    def commit(self, fd: int):
        return self._call(self.api.commit(fd), "commit")

    def abort(self, fd: int) -> None:
        return self._call(self.api.abort(fd), "abort")

    def fstat(self, fd: int) -> dict:
        return self._call(self.api.fstat(fd), "fstat")

    def write_file(self, path: str, data) -> None:
        if isinstance(data, str):
            data = data.encode()
        return self._call(self.api.write_file(path, data), "write_file")

    def read_file(self, path: str) -> bytes:
        return self._call(self.api.read_file(path), "read_file")

    # -- namespace ---------------------------------------------------------

    def mkdir(self, path: str, perms: int = 0o755, hidden: bool = False):
        return self._call(self.api.mkdir(path, perms=perms, hidden=hidden),
                          "mkdir")

    def rmdir(self, path: str) -> None:
        return self._call(self.api.rmdir(path), "rmdir")

    def unlink(self, path: str) -> None:
        return self._call(self.api.unlink(path), "unlink")

    def link(self, existing: str, new: str) -> None:
        return self._call(self.api.link(existing, new), "link")

    def rename(self, old: str, new: str) -> None:
        return self._call(self.api.rename(old, new), "rename")

    def readdir(self, path: str) -> List[str]:
        return self._call(self.api.readdir(path), "readdir")

    def stat(self, path: str) -> dict:
        return self._call(self.api.stat(path), "stat")

    def chmod(self, path: str, perms: int) -> None:
        return self._call(self.api.chmod(path, perms), "chmod")

    def chown(self, path: str, owner: str) -> None:
        return self._call(self.api.chown(path, owner), "chown")

    def chdir(self, path: str) -> None:
        return self._call(self.api.chdir(path), "chdir")

    def add_replica(self, path: str, site: int) -> None:
        return self._call(self.api.add_replica(path, site), "add_replica")

    def drop_replica(self, path: str, site: int) -> None:
        return self._call(self.api.drop_replica(path, site), "drop_replica")

    # -- pipes ----------------------------------------------------------

    def pipe(self) -> Tuple[int, int]:
        return self._call(self.api.pipe(), "pipe")

    def mkfifo(self, path: str):
        return self._call(self.api.mkfifo(path), "mkfifo")

    def mknod_device(self, path: str, host: int, device: str,
                     character: bool = True):
        return self._call(
            self.api.mknod_device(path, host, device, character=character),
            "mknod_device")

    # -- processes ---------------------------------------------------------

    def fork(self, child_main=None, args: tuple = (),
             dest: Optional[int] = None) -> int:
        return self._call(self.api.fork(child_main, args=args, dest=dest),
                          "fork")

    def run(self, path: str, args: tuple = (),
            dest: Optional[int] = None) -> int:
        return self._call(self.api.run(path, args=args, dest=dest), "run")

    def exec(self, path: str, args: tuple = (),
             dest: Optional[int] = None) -> int:
        return self._call(self.api.exec(path, args=args, dest=dest), "exec")

    def wait(self):
        return self._call(self.api.wait(), "wait")

    def kill(self, pid: int, sig: Signal = Signal.SIGTERM) -> None:
        return self._call(self.api.kill(pid, sig), "kill")

    def getpid(self) -> int:
        return self.api.getpid()

    def errinfo(self) -> List[dict]:
        return self.api.errinfo()

    def install_program(self, path: str, program: str, cpu: str = "vax",
                        code_pages: int = 16, data_pages: int = 8,
                        reentrant: bool = True) -> None:
        return self._call(
            self.api.install_program(path, program, cpu=cpu,
                                     code_pages=code_pages,
                                     data_pages=data_pages,
                                     reentrant=reentrant),
            "install_program")

    # -- environment knobs (no kernel work) ------------------------------

    def setcopies(self, n: int) -> None:
        self.api.setcopies(n)

    def set_advice(self, sites: List[int]) -> None:
        self.api.set_advice(sites)

    def set_hidden_context(self, names: List[str]) -> None:
        self.api.set_hidden_context(names)

    def set_hidden_visible(self, flag: bool) -> None:
        self.api.set_hidden_visible(flag)

    def __repr__(self) -> str:
        return (f"<Shell site={self.site.site_id} pid={self.proc.pid} "
                f"user={self.proc.user}>")
