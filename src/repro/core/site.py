"""A LOCUS site: one machine's kernel, storage, and RPC plumbing.

LOCUS is procedure based: "at the point within the execution of the system
call that foreign service is needed, the operating system packages up a
message and sends it to the relevant foreign site.  Typically the kernel then
sleeps, waiting for a response" (paper section 2.3.2, Figure 1).  ``Site.rpc``
implements exactly that flow; when the destination is the local site only a
procedure call is needed and no messages move.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, Optional, Set, Tuple

from repro.config import ClusterConfig, CostModel
from repro.errors import (CircuitClosed, EWOULDCONFLICT, NetworkError,
                          SiteDown, SimTimeout, TaskCancelled, Unreachable)
from repro.net.message import Message, MsgKind
from repro.net.network import Network
from repro.obs.load import LoadAccountant
from repro.obs.registry import MetricsRegistry
from repro.fs.name_cache import NameCache
from repro.sim.simulator import Simulator
from repro.sim.task import Task
from repro.storage.buffer_cache import BufferCache
from repro.storage.pack import Pack

Handler = Callable[[int, dict], Generator]


class Site:
    """One full-function LOCUS node (every site can be US, SS and CSS)."""

    def __init__(self, site_id: int, sim: Simulator, net: Network,
                 config: ClusterConfig):
        self.site_id = site_id
        self.sim = sim
        self.net = net
        self.config = config
        self.cost: CostModel = config.cost
        self.up = True
        self.cpu_used = 0.0
        self.cpu_type = "vax"          # machine type (section 2.4.1)
        self.programs: Dict[str, Any] = {}   # the installed instruction set
        self.packs: Dict[int, Pack] = {}            # gfs -> local pack
        self.cache = BufferCache(self.cost.buffer_pages)
        # Decoded-directory-entry cache; every buffer-cache invalidation
        # path cascades into it (see BufferCache.companion).
        self.name_cache = NameCache(self.cost.name_cache_entries)
        self.cache.companion = self.name_cache
        # Flight recorder: per-site metrics are always on (observational,
        # zero virtual-time cost); the shared tracer is attached by the
        # cluster builder when cost.trace_enabled.
        self.metrics = MetricsRegistry(f"site{site_id}")
        self.tracer = None
        self.metrics.register_source("cache", lambda: {
            "pages": len(self.cache),
            "hit_rate": round(self.cache.stats.hit_rate, 3),
            "invalidations": self.cache.stats.invalidations,
        })
        self.metrics.register_source("name_cache", lambda: {
            "dirs": len(self.name_cache),
            "hit_rate": round(self.name_cache.stats.hit_rate, 3),
            "fills": self.name_cache.stats.fills,
            "stale_drops": self.name_cache.stats.stale_drops,
            "invalidations": self.name_cache.stats.invalidations,
            "neg_hits": self.name_cache.stats.neg_hits,
            "neg_fills": self.name_cache.stats.neg_fills,
        })
        # Shared event-queue depth (live entries only — cancelled events
        # awaiting lazy discard are excluded by Simulator.pending()).
        self.metrics.register_source("sim", lambda: {
            "events_pending": self.sim.pending(),
            "events_processed": self.sim.events_processed,
        })
        # Load / hotspot accounting (ISSUE 10): rolling syscall/RPC rates,
        # per-inode hotness, CSS-role utilization.  Observational only —
        # the gauge source is registered only when the flag is on so
        # flag-off reports keep their original shape.
        self.load = LoadAccountant(self)
        if self.load.enabled:
            self.metrics.register_source("load", self.load.gauges)
        self._handlers: Dict[str, Handler] = {}
        self._pending: Dict[Tuple[int, int], Any] = {}  # (peer, reqid) -> Future
        self._reqids = itertools.count(1)
        # Hot-path label caches: op -> "rpc.<op>" metric key and
        # mtype -> "serve:<mtype>@<id>" task name.  The op vocabulary is
        # small and static, so caching removes an f-string per call.
        self._rpc_keys: Dict[str, str] = {}
        self._serve_names: Dict[str, str] = {}
        self._task_name = f"site{site_id}"
        self._tasks: Set[Task] = set()
        # Exactly-once stamping (ISSUE 8): a monotonically increasing
        # mutating-op sequence — never reset, even across crashes, so a
        # restarted client cannot collide with its own pre-crash entries
        # in a server's durable ledger — plus the set of seqs still
        # outstanding, from which the contiguous-completion ack floor
        # piggybacked on every stamped request is derived.
        self._op_seqs = itertools.count(0)
        self._stamp_live: Set[int] = set()
        self._stamp_last = -1
        # Subsystems are attached by the cluster builder.
        self.fs = None          # repro.fs.manager.FsManager
        self.proc = None        # repro.proc.manager.ProcManager
        self.topology = None    # repro.reconfig.topology.TopologyService
        self.recovery = None    # repro.recovery.manager.RecoveryManager
        self.scrub = None       # repro.fs.scrub.ScrubManager
        self.convergence = None  # repro.obs.load.ConvergenceMonitor (shared)
        self.tx = None          # repro.tx.manager.TxManager
        net.register_site(site_id, self._on_message, self._on_circuit_closed)

    # ------------------------------------------------------------------
    # CPU accounting: charging advances the virtual clock and the site's
    # cpu_used counter (single-CPU contention is not modelled; documented
    # in DESIGN.md).
    # ------------------------------------------------------------------

    def cpu(self, amount: float) -> Generator:
        self.cpu_used += amount
        yield amount

    # ------------------------------------------------------------------
    # Handler registry
    # ------------------------------------------------------------------

    def register_handler(self, op: str, fn: Handler) -> None:
        if op in self._handlers:
            raise ValueError(f"handler {op!r} already registered")
        self._handlers[op] = fn

    # ------------------------------------------------------------------
    # Exactly-once stamps
    # ------------------------------------------------------------------

    def next_stamp(self) -> Tuple[int, int]:
        """Issue a fresh ``(client_id, op_seq)`` stamp for a mutating op."""
        seq = next(self._op_seqs)
        self._stamp_live.add(seq)
        self._stamp_last = seq
        return (self.site_id, seq)

    def stamp_done(self, seq: int) -> None:
        """The stamped op finished (or was abandoned): it will never be
        retried again, so servers may retire its ledger entry once the
        ack floor passes it."""
        self._stamp_live.discard(seq)

    def stamp_ack(self) -> int:
        """Highest seq below which every stamped op has completed."""
        live = self._stamp_live
        return (min(live) - 1) if live else self._stamp_last

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------

    def rpc(self, dst: int, op: str, payload: Optional[dict] = None,
            timeout: Optional[float] = None) -> Generator:
        """Remote procedure call; a plain procedure call when ``dst`` is
        local.  Raises whatever the remote handler raised, or
        :class:`Unreachable` / :class:`CircuitClosed` on communication
        failure, or :class:`SimTimeout` when ``timeout`` expires."""
        payload = payload or {}
        if dst == self.site_id:
            # Local collapse: no messages (Figure 2's optimized cases).
            result = yield from self._dispatch(op, self.site_id, payload)
            return result
        tracer = self.tracer
        start = self.sim.now
        span = prev = None
        if tracer is not None and tracer.enabled:
            span, prev = tracer.begin(f"rpc:{op}", "rpc", self.site_id,
                                      attrs={"dst": dst})
        metric_key = self._rpc_keys.get(op)
        if metric_key is None:
            metric_key = self._rpc_keys[op] = "rpc." + op
        status_label = "ok"
        try:
            cpu_msg = self.cost.cpu_msg
            self.cpu_used += cpu_msg                    # message setup
            yield cpu_msg
            reqid = next(self._reqids)
            fut = self.sim.create_future(op)
            self._pending[(dst, reqid)] = fut
            msg = self.net.make_message(self.site_id, dst, op,
                                        MsgKind.REQUEST, payload,
                                        reqid=reqid,
                                        trace_ctx=span.ctx
                                        if span is not None else None)
            try:
                self.net.send(self.site_id, dst, msg)
            except Exception as exc:
                self._pending.pop((dst, reqid), None)
                if isinstance(exc, Unreachable) and self.topology is not None:
                    # Lazy failure detection: a failed send means the circuit
                    # to the peer is gone; the partition protocol must run.
                    self.topology.on_circuit_closed(dst, "send failed")
                raise
            wait = fut if timeout is None else self.sim.with_timeout(
                fut, timeout, label=f"{op}->{dst}")
            try:
                status, value = yield wait
            except SimTimeout:
                self._pending.pop((dst, reqid), None)
                raise
            self.cpu_used += cpu_msg                    # return processing
            yield cpu_msg
            if status == "err":
                raise value
            return value
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
            status_label = type(exc).__name__
            raise
        finally:
            self.metrics.observe(metric_key, self.sim.now - start)
            if span is not None:
                tracer.finish(span, prev, status=status_label)

    def supervised_rpc(self, dst, op: str, payload: Optional[dict] = None,
                       idempotent: bool = True,
                       timeout: Optional[float] = None,
                       retries: Optional[int] = None,
                       backoff: Optional[float] = None,
                       once: bool = False) -> Generator:
        """Supervised remote call: a per-op timeout plus bounded
        deterministic exponential backoff for idempotent operations.

        ``dst`` may be a callable re-evaluated before every attempt so a
        retry chases responsibility that moved during the failure (e.g. a
        CSS re-elected while this call was failing).  Non-idempotent calls
        get the timeout backstop but never blind-retry — unless ``once``
        marks them for exactly-once delivery, in which case the payload is
        stamped with ``(client_id, op_seq)`` and retried like an idempotent
        call: the server's idempotency ledger turns the duplicate into a
        replay of the recorded reply, so at-least-once delivery plus
        server-side dedup yields exactly-once execution.  A caller that
        pre-stamped the payload (write-path failover re-homing a commit)
        keeps its own stamp and its own completion bookkeeping.

        ``EWOULDCONFLICT`` — the CSS refusing a writer open while the file
        is queued for reconciliation — is always retryable (the refusal
        precedes any state change) and gets a larger attempt budget so a
        writer can wait out a post-heal merge sweep.

        With ``cost.supervise_remote_ops`` off this degenerates to plain
        :meth:`rpc` — the paper's unsupervised behaviour.
        """
        resolve = dst if callable(dst) else (lambda: dst)
        cost = self.cost
        payload = payload if payload is not None else {}
        own_stamp = (once and cost.exactly_once_writes
                     and cost.supervise_remote_ops
                     and "_stamp" not in payload)
        if own_stamp:
            payload["_stamp"] = self.next_stamp()
        try:
            if not cost.supervise_remote_ops:
                result = yield from self.rpc(resolve(), op, payload)
                return result
            if timeout is None:
                timeout = cost.rpc_timeout or None
            if retries is None:
                retries = cost.rpc_retries
            if backoff is None:
                backoff = cost.rpc_backoff
            can_retry = idempotent or "_stamp" in payload
            tracer = self.tracer
            span = prev = None
            if tracer is not None and tracer.enabled:
                span, prev = tracer.begin(f"srpc:{op}", "rpc", self.site_id)
            status_label = "ok"
            try:
                attempt = 0
                conflict_waits = 0
                while True:
                    if "_stamp" in payload:
                        payload["_ack"] = self.stamp_ack()
                    try:
                        result = yield from self.rpc(resolve(), op, payload,
                                                     timeout=timeout)
                        return result
                    except NetworkError as exc:
                        if not can_retry or attempt >= retries or not self.up:
                            raise
                        self.metrics.count("rpc.retries")
                        if span is not None:
                            tracer.event(span, "retry",
                                         {"attempt": attempt,
                                          "error": type(exc).__name__,
                                          "backoff": backoff * (2 ** attempt)})
                        # Deterministic exponential backoff: gives the
                        # partition protocol time to converge before the
                        # retry resolves dst.
                        yield backoff * (2 ** attempt)
                        attempt += 1
                    except EWOULDCONFLICT:
                        # Conflict-window refusal: wait for the merge the
                        # CSS has scheduled, on its own (longer) budget so
                        # network retries stay bounded independently.
                        if conflict_waits >= max(2 * retries, 8) or not self.up:
                            raise
                        self.metrics.count("rpc.conflict_retries")
                        yield backoff * (2 ** min(conflict_waits, 4))
                        conflict_waits += 1
            except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
                status_label = type(exc).__name__
                raise
            finally:
                if span is not None:
                    tracer.finish(span, prev, status=status_label)
        finally:
            if own_stamp:
                # Success or final failure, this client will never re-send
                # this seq: let the servers' ledgers retire it.
                self.stamp_done(payload["_stamp"][1])

    def oneway(self, dst: int, op: str,
               payload: Optional[dict] = None) -> Generator:
        """One-way protocol message: low-level acks only, no response
        (the write protocol of section 2.3.5)."""
        payload = payload or {}
        if dst == self.site_id:
            # Local: run the handler as a procedure call, discard result.
            yield from self._dispatch(op, self.site_id, payload)
            return None
        yield from self.cpu(self.cost.cpu_msg)
        ctx = None
        if self.tracer is not None and self.tracer.enabled:
            ctx = self.tracer.current_ctx()
        msg = self.net.make_message(self.site_id, dst, op,
                                    MsgKind.ONEWAY, payload, trace_ctx=ctx)
        self.net.send(self.site_id, dst, msg)
        return None

    def oneway_quiet(self, dst: int, op: str,
                     payload: Optional[dict] = None) -> Generator:
        """One-way send that swallows unreachability (best-effort notify)."""
        try:
            yield from self.oneway(dst, op, payload)
        except NetworkError:
            pass
        return None

    # ------------------------------------------------------------------
    # Message handling (server side of Figure 1)
    # ------------------------------------------------------------------

    def _dispatch(self, op: str, src: int, payload: dict) -> Generator:
        handler = self._handlers.get(op)
        if handler is None:
            raise ValueError(f"site {self.site_id}: no handler for {op!r}")
        result = yield from handler(src, payload)
        return result

    def _on_message(self, msg: Message) -> None:
        if not self.up:
            return
        if msg.kind is MsgKind.RESPONSE:
            fut = self._pending.pop((msg.src, msg.reqid), None)
            if fut is not None:
                fut.resolve(msg.payload)
            else:
                # Duplicate delivery: a reply to an attempt whose supervisor
                # already timed out and moved on.  Each attempt carries a
                # unique reqid (the attempt tag), so a late reply can never
                # resolve a newer attempt's future — it is counted and
                # discarded here.
                self.metrics.count("rpc.late_replies_discarded")
            return
        name = self._serve_names.get(msg.mtype)
        if name is None:
            name = self._serve_names[msg.mtype] = \
                f"serve:{msg.mtype}@{self.site_id}"
        self.spawn(self._serve(msg), name=name)

    def _serve(self, msg: Message) -> Generator:
        """Message analysis, system-call continuation, send return message."""
        tracer = self.tracer
        span = prev = None
        if tracer is not None and tracer.enabled:
            # The handler span parents under the caller's rpc span carried
            # in the message header — the cross-site causal link.
            span, prev = tracer.begin(f"serve:{msg.mtype}", "handler",
                                      self.site_id,
                                      parent_ctx=msg.trace_ctx,
                                      inherit=False,
                                      attrs={"src": msg.src})
        served_start = self.sim.now
        status_label = "ok"
        try:
            cpu_msg = self.cost.cpu_msg
            self.cpu_used += cpu_msg                    # message analysis
            yield cpu_msg
            response: Optional[Tuple[str, Any]]
            try:
                value = yield from self._dispatch(msg.mtype, msg.src,
                                                  msg.payload)
                response = ("ok", value)
            except TaskCancelled:
                raise
            except Exception as exc:  # noqa: BLE001 - errors go to caller
                response = ("err", exc)
                status_label = f"err:{type(exc).__name__}"
            if msg.kind is MsgKind.ONEWAY:
                return None
            self.cpu_used += cpu_msg                    # send return message
            yield cpu_msg
            reply = self.net.make_message(self.site_id, msg.src, msg.mtype,
                                          MsgKind.RESPONSE, response,
                                          reqid=msg.reqid,
                                          trace_ctx=msg.trace_ctx)
            try:
                self.net.send(self.site_id, msg.src, reply)
            except Exception:
                # Requester unreachable: it learns via its closed circuit.
                pass
            return None
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
            status_label = type(exc).__name__
            raise
        finally:
            if self.load.enabled:
                self.load.note_rpc_served(msg.mtype,
                                          self.sim.now - served_start)
            if span is not None:
                tracer.finish(span, prev, status=status_label)

    def _on_circuit_closed(self, peer: int, reason: str) -> None:
        if not self.up:
            return
        # Fail every RPC outstanding toward the lost peer: closing a circuit
        # aborts ongoing activity between the two sites (section 5.1).
        for key in [k for k in self._pending if k[0] == peer]:
            fut = self._pending.pop(key)
            fut.fail(CircuitClosed(peer, reason))
        if self.topology is not None:
            self.topology.on_circuit_closed(peer, reason)

    # ------------------------------------------------------------------
    # Task management (so a crash can kill in-flight kernel work)
    # ------------------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Task:
        task = self.sim.spawn(gen, name=name or self._task_name)
        self._tasks.add(task)
        task.done.add_callback(lambda _f: self._tasks.discard(task))
        return task

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Site failure: volatile state vanishes; packs (disks) survive."""
        self.up = False
        for task in list(self._tasks):
            task.cancel(f"site {self.site_id} crashed")
        self._tasks.clear()
        for fut in self._pending.values():
            fut.fail(SiteDown(self.site_id))
        self._pending.clear()
        # In-flight stamped ops died with their tasks and will never be
        # retried; advancing the ack floor past them lets server ledgers
        # retire their entries.  The seq counter itself is NOT reset, so
        # post-restart stamps cannot collide with pre-crash ones.
        self._stamp_live.clear()
        self.cache.clear()
        self.net.fail_site(self.site_id)
        for subsystem in (self.fs, self.proc, self.tx, self.recovery,
                          self.scrub, self.topology):
            if subsystem is not None:
                subsystem.reset_volatile()

    def restart(self) -> None:
        """Power back on alone in a partition of one; the merge protocol
        will bring the site back into the network (section 5.5)."""
        self.net.restore_site(self.site_id)
        self.up = True
        for subsystem in (self.fs, self.proc, self.tx, self.recovery,
                          self.scrub, self.topology):
            if subsystem is not None:
                subsystem.on_restart()

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"<Site {self.site_id} {state} packs={sorted(self.packs)}>"
