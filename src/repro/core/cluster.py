"""Cluster builder: sites, network, filegroups, and the boot sequence."""

from __future__ import annotations

from typing import Dict, Generator, Iterable, List, Optional, Union

from repro.config import ClusterConfig, CostModel
from repro.core.site import Site
from repro.errors import EINVAL, ENOTDIR
from repro.fs.directory import DirEntry, encode_entries
from repro.fs.manager import FsManager
from repro.fs.mount import FilegroupInfo, MountTable
from repro.fs.types import Gfile, Mode, ROOT_GFS
from repro.net.network import Network
from repro.obs.load import ConvergenceMonitor
from repro.obs.tracer import Tracer
from repro.sim.simulator import Simulator
from repro.storage.inode import DiskInode, FileType
from repro.storage.pack import Pack, ROOT_INO
from repro.storage.version_vector import VersionVector

SiteRef = Union[int, Site]


class LocusCluster:
    """A simulated LOCUS network.

    >>> cluster = LocusCluster(n_sites=3)
    >>> sh = cluster.shell(0)
    >>> sh.mkdir("/tmp")
    >>> fd = sh.open("/tmp/hello", "w", create=True)
    >>> sh.write(fd, b"hi"); sh.close(fd)
    """

    def __init__(self, n_sites: int = 3, seed: int = 0,
                 cost: Optional[CostModel] = None,
                 config: Optional[ClusterConfig] = None,
                 root_pack_sites: Optional[List[int]] = None):
        if config is None:
            config = ClusterConfig(n_sites=n_sites, seed=seed,
                                   cost=cost or CostModel(),
                                   root_pack_sites=root_pack_sites)
        self.config = config
        if config.sim_kernel == "heap":
            from repro.sim.legacy import LegacySimulator
            self.sim = LegacySimulator(seed=config.seed)
        elif config.sim_kernel == "calendar":
            self.sim = Simulator(seed=config.seed)
        else:
            raise ValueError(f"unknown sim_kernel {config.sim_kernel!r}")
        self.net = Network(self.sim, config.cost)
        self.sites: List[Site] = [Site(i, self.sim, self.net, config)
                                  for i in range(config.n_sites)]
        # One flight recorder for the whole cluster: spans from every site
        # land in one tree, ids flow from one counter (deterministic).
        self.tracer = Tracer(self.sim, enabled=config.cost.trace_enabled)
        self.net.tracer = self.tracer
        # One convergence monitor for the whole cluster (same pattern):
        # the fault injector notes fault vtimes, scrub/recovery note the
        # detection and repair vtimes — the difference is the divergence
        # detection-latency metric (ISSUE 10).
        self.convergence = ConvergenceMonitor(
            self.sim, enabled=config.cost.load_accounting)
        for site in self.sites:
            site.tracer = self.tracer
            site.convergence = self.convergence
        # The program table stands in for compiled load-module bodies; the
        # load modules themselves are real files in the filesystem.
        self.programs: Dict[str, object] = {}
        for site in self.sites:
            site.programs = self.programs
        self._next_gfs = ROOT_GFS
        self._master_mount = MountTable()
        self._build_filesystem()
        self._attach_subsystems()
        self._boot()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_filesystem(self) -> None:
        root_packs = self.config.resolved_root_packs()
        bad = [s for s in root_packs if not 0 <= s < len(self.sites)]
        if bad:
            raise EINVAL(f"root pack sites {bad} out of range")
        self._format_filegroup(ROOT_GFS, "root", root_packs, mounted_on=None)
        self._next_gfs = ROOT_GFS + 1
        for site in self.sites:
            site.fs = FsManager(site, self._master_mount.clone())

    def _format_filegroup(self, gfs: int, name: str, pack_sites: List[int],
                          mounted_on: Optional[Gfile]) -> None:
        """mkfs: create one pack per listed site and an identical root
        directory inode (version vectors equal) on each."""
        if not pack_sites:
            raise EINVAL("a filegroup needs at least one pack site")
        info = FilegroupInfo(gfs=gfs, name=name,
                             pack_sites=list(pack_sites),
                             mounted_on=mounted_on)
        self._master_mount.add_filegroup(info)
        self._master_mount.set_css(gfs, min(pack_sites))
        root_vv = VersionVector().bump(pack_sites[0])
        seed = encode_entries([
            DirEntry(".", ROOT_INO, FileType.DIRECTORY),
            DirEntry("..", ROOT_INO, FileType.DIRECTORY),
        ])
        for index, site_id in enumerate(pack_sites):
            pack = Pack(gfs=gfs, site_id=site_id, pack_index=index,
                        n_blocks=self.config.blocks_per_pack)
            if index == 0:
                inode = pack.alloc_inode(ftype=FileType.DIRECTORY,
                                         perms=0o755,
                                         storage_sites=list(pack_sites))
                assert inode.ino == ROOT_INO
            else:
                inode = DiskInode(ino=ROOT_INO, ftype=FileType.DIRECTORY,
                                  perms=0o755,
                                  storage_sites=list(pack_sites))
                pack.inodes[ROOT_INO] = inode
            block = pack.alloc_block()
            pack.write_block(block, seed)
            inode.pages = [block]
            inode.size = len(seed)
            inode.version = root_vv.copy()
            self.sites[site_id].packs[gfs] = pack

    def _attach_subsystems(self) -> None:
        # Imported here to keep module dependencies one-directional.
        from repro.fs.scrub import ScrubManager
        from repro.proc.manager import ProcManager
        from repro.recovery.manager import RecoveryManager
        from repro.reconfig.topology import TopologyService
        from repro.tx.manager import TxManager
        for site in self.sites:
            site.proc = ProcManager(site)
            site.tx = TxManager(site)
            site.recovery = RecoveryManager(site)
            site.scrub = ScrubManager(site)
            site.topology = TopologyService(site, n_sites=len(self.sites))

    def _boot(self) -> None:
        for site in self.sites:
            site.fs.propagator.start()
            site.topology.boot(all_sites=set(range(len(self.sites))))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def site(self, ref: SiteRef) -> Site:
        if isinstance(ref, Site):
            return ref
        return self.sites[ref]

    @property
    def scheduler(self):
        """Execution-site selection policies (lazy; see
        :class:`repro.proc.scheduler.Scheduler`)."""
        if not hasattr(self, "_scheduler"):
            from repro.proc.scheduler import Scheduler
            self._scheduler = Scheduler(self)
        return self._scheduler

    def register_program(self, name: str, fn) -> None:
        """Register an executable body: ``fn(api, *args)`` is a kernel
        procedure run when a process execs a load module naming it."""
        self.programs[name] = fn

    def set_cpu_type(self, ref: SiteRef, cpu: str) -> None:
        """Declare a site's machine type (heterogeneous networks)."""
        self.site(ref).cpu_type = cpu

    def shell(self, ref: SiteRef, user: str = "root"):
        """A synchronous per-site syscall facade (see :class:`Shell`)."""
        from repro.core.syscalls import Shell
        return Shell(self, self.site(ref), user=user)

    @property
    def stats(self):
        return self.net.stats

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def call(self, ref: SiteRef, gen: Generator, name: str = ""):
        """Run one kernel procedure at a site to completion, driving the
        whole simulation (background kernel processes included)."""
        site = self.site(ref)
        task = site.spawn(gen, name=name or f"call@{site.site_id}")
        while not task.finished:
            if not self.sim.step():
                from repro.errors import DeadlockError
                raise DeadlockError(f"{task!r} blocked with no events left")
        return task.result()

    def spawn(self, ref: SiteRef, gen: Generator, name: str = ""):
        return self.site(ref).spawn(gen, name=name)

    def settle(self, max_time: float = 100000.0) -> None:
        """Run until the event queue drains (propagation, reconfiguration
        chatter...) or the time budget passes.  The clock advances only as
        far as actual events, never to the horizon.  Quiescence fires the
        simulator's idle hooks (post-heal invariant checks live there); the
        loop continues if a hook scheduled new work."""
        horizon = self.sim.now + max_time
        while True:
            self.sim.drain(horizon)
            if not self.sim.fire_idle_hooks():
                break

    def inject(self, plan):
        """Arm a scripted fault plan (see :mod:`repro.faults`) against this
        cluster; returns the armed :class:`FaultInjector`."""
        from repro.faults.injector import FaultInjector
        injector = FaultInjector(self, plan)
        injector.arm()
        return injector

    # ------------------------------------------------------------------
    # Topology control (the experiment harness's hand on the cables)
    # ------------------------------------------------------------------

    def partition(self, *groups: Iterable[int], settle: bool = True) -> None:
        """Physically partition the network into the given site groups."""
        self.net.set_partitions([set(g) for g in groups])
        if settle:
            self.settle()

    def heal(self, settle: bool = True, merge_from: Optional[int] = None
             ) -> None:
        """Repair the network and (by default) run the merge protocol."""
        self.net.heal()
        initiator = merge_from
        if initiator is None:
            initiator = min(s.site_id for s in self.sites if s.up)
        self.site(initiator).topology.request_merge()
        if settle:
            self.settle()

    def fail_site(self, ref: SiteRef, settle: bool = True) -> None:
        self.site(ref).crash()
        if settle:
            self.settle()

    def restart_site(self, ref: SiteRef, settle: bool = True,
                     merge: bool = True) -> None:
        site = self.site(ref)
        site.restart()
        if merge:
            site.topology.request_merge()
        if settle:
            self.settle()

    # ------------------------------------------------------------------
    # Additional filegroups
    # ------------------------------------------------------------------

    def add_filegroup(self, name: str, pack_sites: List[int],
                      mount_at: str) -> int:
        """Format a new filegroup and mount it at an existing empty
        directory (must be called at boot/quiesced time: the mount hierarchy
        must be the same at all sites, section 5.1)."""
        fs0 = self.sites[0].fs
        gfile, ftype = self.call(0, fs0.resolve_gfile(None, mount_at),
                                 name="resolve-mountpoint")
        if ftype is not FileType.DIRECTORY:
            raise ENOTDIR(mount_at)
        gfs = self._next_gfs
        self._next_gfs += 1
        self._format_filegroup(gfs, name, pack_sites, mounted_on=gfile)
        info = self._master_mount.filegroup(gfs)
        css = self._master_mount.css_for(gfs)
        for site in self.sites:
            site.fs.mount.add_filegroup(FilegroupInfo(
                gfs=gfs, name=name, pack_sites=list(pack_sites),
                mounted_on=gfile))
            site.fs.mount.set_css(gfs, css)
        return gfs

    def __repr__(self) -> str:
        up = sum(1 for s in self.sites if s.up)
        return (f"<LocusCluster sites={len(self.sites)} up={up} "
                f"t={self.sim.now:.1f}>")
