"""Namespace operations: create, unlink, mkdir, link, rename, readdir.

File creation follows paper section 2.3.7: the create is done at one storage
site (the "placeholder" protocol allocates the inode number from that pack's
private pool) and propagated to the other storage sites.  Initial storage
sites obey the published algorithm:

    a. all storage sites must be storage sites of the parent directory;
    b. the local site is used first if possible;
    c. then follow the parent directory's site order, except that sites
       which are currently inaccessible are chosen last.

Directory entry changes (enter / delete / change) are each atomic: the whole
update runs under an open-for-modification serialized by the CSS and takes
effect at one commit.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.errors import (EBUSY, EEXIST, EINVAL, EISDIR, ENOENT, ENOTDIR,
                          ENOTEMPTY, EXDEV)
from repro.fs.directory import DirEntry, DirView, check_name, decode_entries, \
    encode_entries
from repro.fs.types import Gfile, Mode
from repro.storage.inode import FileType
from repro.storage.pack import ROOT_INO

_DIR_TYPES = (FileType.DIRECTORY, FileType.HIDDEN_DIR)


class NamespaceMixin:
    """Naming-tree operations; mixed into :class:`FsManager`."""

    # ------------------------------------------------------------------
    # Atomic directory update
    # ------------------------------------------------------------------

    def _dir_modify(self, dir_gfile: Gfile, mutate) -> Generator:
        """Open-modify-commit one directory under CSS synchronization.

        ``mutate(view)`` applies the entry change to a :class:`DirView`;
        whatever it returns is this function's result.

        Directory entry updates are atomic kernel operations: when another
        site holds the directory's modification lock, this kernel waits and
        retries rather than reflecting EBUSY to the application.
        """
        handle = None
        for attempt in range(200):
            try:
                handle = yield from self.open_gfile(dir_gfile, Mode.WRITE)
                break
            except EBUSY:
                yield 2.0 + 0.5 * (self.sid % 7)   # deterministic backoff
        if handle is None:
            raise EBUSY(f"directory {dir_gfile} modification lock "
                        f"unavailable")
        try:
            if handle.attrs["ftype"] not in _DIR_TYPES:
                raise ENOTDIR(f"gfile {dir_gfile}")
            data = yield from self.read(handle, 0, handle.size)
            view = DirView(decode_entries(data))
            yield from self.site.cpu(
                self.cost.cpu_dir_entry * max(1, len(view.entries)))
            result = mutate(view)
            yield from self.truncate(handle)
            yield from self.write(handle, 0, encode_entries(view.entries))
            yield from self.commit(handle)
        except BaseException:
            if not handle.closed and handle.dirty:
                yield from self.abort(handle)
            raise
        finally:
            if not handle.closed:
                yield from self.close(handle)
        return result

    def _open_write_retry(self, gfile: Gfile,
                          allow_conflict: bool = False) -> Generator:
        """Open a file for modification, waiting out another site's write
        lock the same way ``_dir_modify`` does for directories: nlink
        updates are atomic kernel operations, so EBUSY is absorbed by the
        kernel rather than reflected to the application (and leaving the
        syscall half-done — entry inserted, count never bumped)."""
        for attempt in range(200):
            try:
                handle = yield from self.open_gfile(
                    gfile, Mode.WRITE, allow_conflict=allow_conflict)
                return handle
            except EBUSY:
                yield 2.0 + 0.5 * (self.sid % 7)   # deterministic backoff
        raise EBUSY(f"file {gfile} modification lock unavailable")

    # ------------------------------------------------------------------
    # Storage-site selection (section 2.3.7)
    # ------------------------------------------------------------------

    def _choose_storage_sites(self, proc,
                              parent_sites: List[int]) -> List[int]:
        if not parent_sites:
            raise EINVAL("parent directory has no storage sites")
        want = getattr(proc, "default_copies", 1) if proc else 1
        count = max(1, min(want, len(parent_sites)))
        believed_up = None
        if self.site.topology is not None:
            believed_up = self.site.topology.partition_set
        ordered: List[int] = []
        if self.sid in parent_sites:                 # (b) local site first
            ordered.append(self.sid)
        for s in parent_sites:                       # (c) parent order...
            if s in ordered:
                continue
            if believed_up is None or s in believed_up:
                ordered.append(s)
        for s in parent_sites:                       # ...inaccessible last
            if s not in ordered:
                ordered.append(s)
        return ordered[:count]

    # ------------------------------------------------------------------
    # create / open by path
    # ------------------------------------------------------------------

    def create_file(self, proc, path: str,
                    ftype: FileType = FileType.REGULAR,
                    perms: int = 0o644,
                    exclusive: bool = False,
                    storage_sites: Optional[List[int]] = None) -> Generator:
        """Create a file; returns ``(gfile, created)``.

        When the name already exists and ``exclusive`` is false, the
        existing file is returned (Unix ``creat`` semantics; the caller
        truncates).
        """
        parent, name, leaf = yield from self.walk(proc, path,
                                                  follow_leaf_hidden=False)
        if name is None:
            raise EEXIST(path)
        if leaf is not None:
            if exclusive:
                raise EEXIST(path)
            if leaf.ftype in _DIR_TYPES and ftype not in _DIR_TYPES:
                raise EISDIR(path)
            return leaf.gfile, False
        check_name(name)
        parent_attrs = yield from self._fetch_attrs_anywhere(parent)
        if parent_attrs["ftype"] not in _DIR_TYPES:
            raise ENOTDIR(path)
        chosen = storage_sites or self._choose_storage_sites(
            proc, parent_attrs["storage_sites"])
        owner = getattr(proc, "user", "root") if proc else "root"
        # Stamped exactly-once: a retried create must replay the recorded
        # allocation, never mint a second orphan inode.
        attrs = yield from self.site.supervised_rpc(
            chosen[0], "fs.create_file", {
                "gfs": parent[0],
                "ftype": ftype,
                "owner": owner,
                "perms": perms,
                "storage_sites": chosen,
            }, idempotent=False, once=True)
        gfile: Gfile = (parent[0], attrs["ino"])
        try:
            yield from self._dir_modify(
                parent, lambda view: view.insert(name, attrs["ino"], ftype))
        except BaseException:
            # The name never appeared: compensate by retiring the fresh
            # inode so it cannot linger as an orphan.
            yield from self.site.oneway_quiet(chosen[0], "fs.scrub_orphan",
                                              {"gfile": gfile})
            raise
        return gfile, True

    def open_path(self, proc, path: str, mode: Mode,
                  create: bool = False, truncate: bool = False,
                  exclusive: bool = False,
                  allow_conflict: bool = False) -> Generator:
        """The open/creat system call: path in, open handle out."""
        created = False
        if create and mode.writable:
            gfile, created = yield from self.create_file(
                proc, path, exclusive=exclusive)
        else:
            gfile, __ = yield from self.resolve_gfile(proc, path)
        handle = yield from self.open_gfile(gfile, mode,
                                            allow_conflict=allow_conflict)
        if truncate and mode.writable and not created and handle.size:
            yield from self.truncate(handle)
        return handle

    # ------------------------------------------------------------------
    # mkdir / rmdir
    # ------------------------------------------------------------------

    def mkdir(self, proc, path: str, perms: int = 0o755,
              hidden: bool = False,
              storage_sites: Optional[List[int]] = None) -> Generator:
        ftype = FileType.HIDDEN_DIR if hidden else FileType.DIRECTORY
        parent, name, leaf = yield from self.walk(proc, path,
                                                  follow_leaf_hidden=False)
        if name is None or leaf is not None:
            raise EEXIST(path)
        gfile, __ = yield from self.create_file(
            proc, path, ftype=ftype, perms=perms, exclusive=True,
            storage_sites=storage_sites)
        # Seed '.' and '..' (constructed directly: they bypass name checks).
        handle = yield from self.open_gfile(gfile, Mode.WRITE)
        try:
            seed = [DirEntry(".", gfile[1], ftype),
                    DirEntry("..", parent[1], FileType.DIRECTORY)]
            yield from self.write(handle, 0, encode_entries(seed))
        finally:
            yield from self.close(handle)  # commits
        return gfile

    def rmdir(self, proc, path: str) -> Generator:
        parent, name, leaf = yield from self.walk(proc, path,
                                                  follow_leaf_hidden=False)
        if leaf is None:
            raise ENOENT(path)
        if leaf.ftype not in _DIR_TYPES:
            raise ENOTDIR(path)
        if leaf.gfile[1] == ROOT_INO:
            raise EINVAL("cannot remove a filegroup root")
        entries = yield from self.read_dir_entries(leaf.gfile)
        if not DirView(entries).is_empty():
            raise ENOTEMPTY(path)
        yield from self._remove_object(parent, name, leaf.gfile)
        return None

    # ------------------------------------------------------------------
    # unlink / link / rename
    # ------------------------------------------------------------------

    def unlink(self, proc, path: str) -> Generator:
        """Remove a name; delete the file when its last link goes
        (section 2.3.7: 'File delete uses much of the same mechanism as
        normal file update')."""
        parent, name, leaf = yield from self.walk(proc, path,
                                                  follow_leaf_hidden=False)
        if leaf is None:
            raise ENOENT(path)
        if leaf.ftype in _DIR_TYPES:
            raise EISDIR(path)
        yield from self._remove_object(parent, name, leaf.gfile)
        return None

    def _remove_object(self, parent: Gfile, name: str,
                       target: Gfile) -> Generator:
        # Take the target's modification lock BEFORE touching the directory
        # and hold it across the whole removal.  The background nlink-repair
        # sweep takes the same lock, so it can never run between the entry
        # removal and the count decrement and see a half-done unlink.
        # Removal of a conflicted file is always allowed (the split tool
        # relies on it; unlink never reads the data).
        handle = yield from self._open_write_retry(target,
                                                   allow_conflict=True)
        try:
            yield from self._dir_modify(
                parent,
                lambda view: view.remove(name, handle.attrs["version"]))
            nlink = max(0, handle.attrs["nlink"] - 1)
            if nlink == 0:
                yield from self.set_attrs(handle, nlink=0, deleted=True)
            else:
                yield from self.set_attrs(handle, nlink=nlink)
        finally:
            yield from self.close(handle)  # commits
        return None

    def link(self, proc, existing: str, newpath: str) -> Generator:
        gfile, ftype = yield from self.resolve_gfile(proc, existing,
                                                     follow_leaf_hidden=False)
        if ftype in _DIR_TYPES:
            raise EISDIR("hard links to directories are not allowed")
        parent, name, leaf = yield from self.walk(proc, newpath,
                                                  follow_leaf_hidden=False)
        if name is None or leaf is not None:
            raise EEXIST(newpath)
        if parent[0] != gfile[0]:
            raise EXDEV("links cannot cross filegroups")
        check_name(name)
        # File lock first, then the directory update under it: the repair
        # sweep recounts references and patches nlink under the same file
        # lock, so interleaving between the entry insert and the count bump
        # (which would double-apply the new reference) is impossible.
        handle = yield from self._open_write_retry(gfile)
        try:
            yield from self._dir_modify(
                parent, lambda view: view.insert(name, gfile[1], ftype))
            yield from self.set_attrs(handle,
                                      nlink=handle.attrs["nlink"] + 1)
        finally:
            yield from self.close(handle)
        return None

    def rename(self, proc, old: str, new: str) -> Generator:
        old_parent, old_name, leaf = yield from self.walk(
            proc, old, follow_leaf_hidden=False)
        if leaf is None:
            raise ENOENT(old)
        new_parent, new_name, new_leaf = yield from self.walk(
            proc, new, follow_leaf_hidden=False)
        if new_name is None or new_leaf is not None:
            raise EEXIST(new)
        if new_parent[0] != leaf.gfile[0]:
            raise EXDEV("rename cannot cross filegroups")
        check_name(new_name)
        moving_dir = leaf.ftype in _DIR_TYPES
        if moving_dir and new_parent != old_parent:
            if leaf.gfile[1] == ROOT_INO:
                raise EINVAL("cannot move a filegroup root")
            yield from self._assert_not_subtree(leaf.gfile, new_parent)
        target_attrs = yield from self._fetch_attrs_anywhere(leaf.gfile)
        if old_parent == new_parent:
            def both(view: DirView):
                view.remove(old_name, target_attrs["version"])
                view.insert(new_name, leaf.gfile[1], leaf.ftype)
            yield from self._dir_modify(old_parent, both)
        else:
            yield from self._dir_modify(
                new_parent,
                lambda v: v.insert(new_name, leaf.gfile[1], leaf.ftype))
            yield from self._dir_modify(
                old_parent,
                lambda v: v.remove(old_name, target_attrs["version"]))
            if moving_dir:
                yield from self._set_dotdot(leaf.gfile, new_parent[1])
        return None

    def _assert_not_subtree(self, moved: Gfile, candidate: Gfile
                            ) -> Generator:
        """Refuse to move a directory into its own subtree (cycle)."""
        current = candidate
        for __ in range(512):
            if current == moved:
                raise EINVAL("cannot move a directory into itself")
            if current[1] == ROOT_INO:
                mount_point = self.mount.parent_of_root(current[0])
                if mount_point is None:
                    return None
                current = mount_point
                continue
            entries = yield from self.read_dir_entries(current)
            parent_entry = DirView(entries).lookup("..")
            if parent_entry is None or parent_entry.ino == current[1]:
                return None
            current = (current[0], parent_entry.ino)
        raise EINVAL("directory tree too deep")

    def _set_dotdot(self, child: Gfile, parent_ino: int) -> Generator:
        """Rewrite a moved directory's '..' entry."""
        def mutate(view: DirView):
            for entry in view.entries:
                if entry.name == "..":
                    entry.ino = parent_ino
                    return None
            view.entries.append(
                DirEntry("..", parent_ino, FileType.DIRECTORY))
            return None

        yield from self._dir_modify(child, mutate)
        return None

    # ------------------------------------------------------------------
    # readdir / chmod / chown
    # ------------------------------------------------------------------

    def readdir(self, proc, path: str) -> Generator:
        gfile, ftype = yield from self.resolve_gfile(proc, path)
        if ftype not in _DIR_TYPES:
            raise ENOTDIR(path)
        entries = yield from self.read_dir_entries(gfile)
        return DirView(entries).names()

    def chmod(self, proc, path: str, perms: int) -> Generator:
        yield from self._attr_change(proc, path, perms=perms)
        return None

    def chown(self, proc, path: str, owner: str) -> Generator:
        yield from self._attr_change(proc, path, owner=owner)
        return None

    def _attr_change(self, proc, path: str, **patch) -> Generator:
        gfile, __ = yield from self.resolve_gfile(proc, path)
        handle = yield from self.open_gfile(gfile, Mode.WRITE)
        try:
            yield from self.set_attrs(handle, **patch)
        finally:
            yield from self.close(handle)  # commit ships inode-only change
        return None

    # ------------------------------------------------------------------
    # Replication control (an add of a copy / delete of a copy)
    # ------------------------------------------------------------------

    def add_replica(self, proc, path: str, new_site: int) -> Generator:
        """Store an additional copy of the file at ``new_site``."""
        gfile, __ = yield from self.resolve_gfile(proc, path)
        if new_site not in self.mount.pack_sites(gfile[0]):
            raise EINVAL(f"site {new_site} holds no pack of fg {gfile[0]}")
        handle = yield from self.open_gfile(gfile, Mode.WRITE)
        try:
            sites = list(handle.attrs["storage_sites"])
            if new_site not in sites:
                sites.append(new_site)
                yield from self.set_attrs(handle, storage_sites=sites)
        finally:
            yield from self.close(handle)
        return None

    def drop_replica(self, proc, path: str, victim_site: int) -> Generator:
        """Stop storing the file at ``victim_site`` (move = add + delete)."""
        gfile, __ = yield from self.resolve_gfile(proc, path)
        handle = yield from self.open_gfile(gfile, Mode.WRITE)
        try:
            sites = [s for s in handle.attrs["storage_sites"]
                     if s != victim_site]
            if not sites:
                raise EINVAL("cannot drop the last copy")
            if sites != list(handle.attrs["storage_sites"]):
                yield from self.set_attrs(handle, storage_sites=sites)
        finally:
            yield from self.close(handle)
        return None
