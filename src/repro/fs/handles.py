"""Incore state kept at each of the three logical sites of a file access.

"Since there are three possible independent roles a given site can play
(US, CSS, SS), it can therefore operate in one of eight modes.  LOCUS
handles each combination, optimizing some for performance" (section 2.3.1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.fs.types import Gfile, Mode
from repro.storage.shadow import ShadowFile
from repro.storage.version_vector import VersionVector


@dataclass
class UsHandle:
    """Using-site state for one open: the US never deals with disk blocks,
    only logical pages supplied by the SS."""

    hid: int
    gfile: Gfile
    mode: Mode
    ss_site: int
    attrs: dict
    sync: bool                      # False for unsynchronized internal reads
    dirty: bool = False
    closed: bool = False
    last_page: int = -2             # readahead: previous page read
    # Length of the current sequential run (consecutive page reads); drives
    # the adaptive readahead window and resets on any non-sequential access.
    run_len: int = 0
    # Write-behind state for the batched commit path (batch_writes): page
    # images staged locally but not yet shipped to a remote SS, the size the
    # next flush must carry, and a count of page writes shipped since the
    # last commit/abort.  The commit request carries ``pages_sent`` so the
    # SS can refuse to commit a partially delivered batch.
    pending_writes: Dict[int, bytes] = field(default_factory=dict)
    pending_size: int = 0
    pages_sent: int = 0
    # Adaptive flush sizing (write_flush_deadline): the pending deadline
    # timer event, and the completion future of a deadline flush still on
    # the wire (ordering points queue behind it).
    flush_timer: Optional[object] = None
    flush_done: Optional[object] = None
    # In-progress failover (replica substitution): concurrent substitutions
    # for the same handle wait here instead of double-registering.
    failover_busy: Optional[object] = None
    # Exactly-once write failover: the open's uncommitted operations,
    # retained beyond the flush so they can be replayed at a surviving
    # replica if the SS dies mid-open — every page image put since the
    # last commit, whether a truncate was staged, and the accumulated
    # attribute patches.  Cleared on commit and abort.
    staged_pages: Dict[int, bytes] = field(default_factory=dict)
    staged_truncate: bool = False
    staged_attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return self.attrs["size"]

    @size.setter
    def size(self, value: int) -> None:
        self.attrs["size"] = value


@dataclass
class SsOpen:
    """Storage-site state for one open file.

    ``page_holders`` implements the page-valid tokens of section 3.2: the
    set of using sites holding a valid cached copy of each page.  A write
    invalidates every other holder's copy.
    """

    gfile: Gfile
    shadow: ShadowFile
    users: Counter = field(default_factory=Counter)        # us_site -> opens
    unsync_users: Counter = field(default_factory=Counter)
    writer: Optional[int] = None
    page_holders: Dict[int, Set[int]] = field(default_factory=dict)
    # Remote page writes applied since the last commit/abort; checked
    # against the batched commit's expected count (lost one-way messages
    # must fail the commit, never half-apply it).
    pages_received: int = 0
    # A staged page write failed at the physical disk (the one-way write
    # protocol has no reply to carry the error): the commit must refuse.
    io_error: Optional[str] = None

    @property
    def total_users(self) -> int:
        return sum(self.users.values()) + sum(self.unsync_users.values())

    def add_user(self, us: int, mode: Mode) -> None:
        if mode.synchronized:
            self.users[us] += 1
        else:
            self.unsync_users[us] += 1
        if mode.writable:
            self.writer = us

    def drop_user(self, us: int, mode: Mode) -> None:
        counter = self.users if mode.synchronized else self.unsync_users
        if counter[us] > 0:
            counter[us] -= 1
            if counter[us] == 0:
                del counter[us]
        if mode.writable and self.writer == us:
            self.writer = None
        if us not in self.users and us not in self.unsync_users:
            for holders in self.page_holders.values():
                holders.discard(us)

    def drop_site(self, us: int) -> None:
        """Forget everything about a using site (it left the partition)."""
        self.users.pop(us, None)
        self.unsync_users.pop(us, None)
        if self.writer == us:
            self.writer = None
        for holders in self.page_holders.values():
            holders.discard(us)


@dataclass
class CssEntry:
    """Synchronization-site state for one file: "enough state information is
    kept incore at the CSS to support those synchronization decisions"
    (section 2.3.3)."""

    gfile: Gfile
    storage_sites: list
    latest_vv: VersionVector
    readers: Counter = field(default_factory=Counter)      # us_site -> opens
    writer: Optional[int] = None
    active_ss: Optional[int] = None
    lock_tx: Optional[int] = None   # owning transaction id, if any

    @property
    def in_use(self) -> bool:
        return self.writer is not None or sum(self.readers.values()) > 0

    def note_open(self, us: int, mode: Mode, ss: int) -> None:
        if mode.writable:
            self.writer = us
        else:
            self.readers[us] += 1
        self.active_ss = ss

    def note_close(self, us: int, mode: Mode) -> None:
        if mode.writable and self.writer == us:
            self.writer = None
        elif self.readers[us] > 0:
            self.readers[us] -= 1
            if self.readers[us] == 0:
                del self.readers[us]
        if not self.in_use:
            self.active_ss = None
            self.lock_tx = None

    def drop_site(self, us: int) -> None:
        self.readers.pop(us, None)
        if self.writer == us:
            self.writer = None
        if not self.in_use:
            self.active_ss = None
            self.lock_tx = None
