"""The LOCUS distributed filesystem.

A single tree-structured naming hierarchy covering all objects on all
machines (paper section 2.1), built from logical *filegroups* glued together
by the mount mechanism.  Files are replicated across *packs*; every access
involves up to three logical sites (section 2.3.1):

* **US** — the using site, which issues the request,
* **SS** — the storage site selected to supply pages,
* **CSS** — the current synchronization site of the filegroup, which
  enforces the global access synchronization policy and selects SSs.

All three roles can fall on one physical site; each collapse removes
messages from the protocols (Figure 2).
"""

from repro.fs.types import Mode, Gfile, ROOT_GFS
from repro.fs.mount import FilegroupInfo, MountTable
from repro.fs.directory import DirEntry, decode_entries, encode_entries
from repro.fs.manager import FsManager
from repro.storage.version_vector import VersionVector  # re-export

__all__ = [
    "Mode",
    "Gfile",
    "ROOT_GFS",
    "FilegroupInfo",
    "MountTable",
    "DirEntry",
    "decode_entries",
    "encode_entries",
    "FsManager",
    "VersionVector",
]
