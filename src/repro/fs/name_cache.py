"""Per-site cache of decoded directory entries (the hot-path name cache).

Pathname searching is the dominant repeated cost of the system (paper
section 2.3.4 extends it with pathname shipping for exactly that reason):
every component of every ``walk()`` pays an unsynchronized open, a page read
per directory page, a decode, and a close — network messages for every
remote directory.  This cache remembers the *decoded* entry list of a
directory keyed by the version vector of the committed content it was
decoded from.

Consistency model — stale entries are impossible, not just unlikely:

* An entry is only ever **used** after the caller re-validates the version
  vector against the authority the uncached path would have consulted (the
  local committed inode for a clean local copy, the CSS's merged
  latest-version knowledge otherwise).  Version vectors are bumped on every
  commit, so vector equality implies content equality.
* Every path that invalidates buffer-cache pages for a file (commit
  notification intake, page-valid-token revocation, propagation-pull
  completion, recovery/merge installs, partition cleanup, close) also drops
  the name entry: :class:`~repro.storage.buffer_cache.BufferCache` cascades
  its ``invalidate*`` calls into its companion name cache.

Entries are handed out as fresh copies so callers can never mutate the
cached truth in place.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.fs.directory import DirEntry
from repro.fs.types import Gfile
from repro.storage.version_vector import VersionVector


@dataclass
class NameCacheStats:
    hits: int = 0
    misses: int = 0
    fills: int = 0
    invalidations: int = 0
    stale_drops: int = 0     # lookups that failed version validation
    neg_hits: int = 0        # validated known-absent answers served
    neg_fills: int = 0       # ENOENT results remembered
    neg_stale_drops: int = 0  # negative entries that failed validation

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _NameEntry:
    version: VersionVector
    entries: Tuple[DirEntry, ...]


class NameCache:
    """LRU map ``gfile -> (version_vector, decoded entries)``."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("name cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Gfile, _NameEntry]" = OrderedDict()
        # Negative entries: (directory, name) -> the directory version the
        # name was proven absent from.  Validated exactly like positive
        # entries (vv equality against the same authority), so a cached
        # ENOENT can never survive the commit that created the name.
        self._negative: "OrderedDict[Tuple[Gfile, str], VersionVector]" = \
            OrderedDict()
        self.stats = NameCacheStats()

    # -- lookup ----------------------------------------------------------

    def peek(self, gfile: Gfile) -> Optional[_NameEntry]:
        """The raw cached entry without validation or stats counting; the
        caller must validate ``.version`` before using ``.entries``."""
        return self._entries.get(gfile)

    def get(self, gfile: Gfile,
            version: VersionVector) -> Optional[List[DirEntry]]:
        """Validated lookup: the cached entries, iff they were decoded from
        exactly the committed content identified by ``version``."""
        cached = self._entries.get(gfile)
        if cached is None:
            self.stats.misses += 1
            return None
        if cached.version != version:
            # The directory moved on; the entry is dead weight.
            self._entries.pop(gfile, None)
            self.stats.stale_drops += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(gfile)
        self.stats.hits += 1
        return self.copy_entries(cached.entries)

    def peek_negative(self, gfile: Gfile, name: str) -> bool:
        """Membership check without validation or stats counting; a True
        answer still needs :meth:`get_negative` against the authority's
        current version before it may be believed."""
        return (gfile, name) in self._negative

    def get_negative(self, gfile: Gfile, name: str,
                     version: VersionVector) -> bool:
        """Validated known-absent lookup: True iff ``name`` was proven
        absent from exactly the committed directory content identified by
        ``version``."""
        key = (gfile, name)
        cached = self._negative.get(key)
        if cached is None:
            return False
        if cached != version:
            # The directory moved on; the proof of absence is dead weight.
            self._negative.pop(key, None)
            self.stats.neg_stale_drops += 1
            return False
        self._negative.move_to_end(key)
        self.stats.neg_hits += 1
        return True

    @staticmethod
    def copy_entries(entries) -> List[DirEntry]:
        """Fresh ``DirEntry`` objects: callers may mutate their view."""
        return [DirEntry(name=e.name, ino=e.ino, ftype=e.ftype,
                         deleted=e.deleted, dvv=e.dvv)
                for e in entries]

    # -- fill / invalidate ----------------------------------------------

    def put(self, gfile: Gfile, version: VersionVector, entries) -> None:
        self._entries[gfile] = _NameEntry(version=version.copy(),
                                          entries=tuple(
                                              self.copy_entries(entries)))
        self._entries.move_to_end(gfile)
        self.stats.fills += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def put_negative(self, gfile: Gfile, name: str,
                     version: VersionVector) -> None:
        self._negative[(gfile, name)] = version.copy()
        self._negative.move_to_end((gfile, name))
        self.stats.neg_fills += 1
        while len(self._negative) > self.capacity:
            self._negative.popitem(last=False)

    def invalidate_file(self, gfs: int, ino: int) -> bool:
        dropped = self._entries.pop((gfs, ino), None) is not None
        stale = [k for k in self._negative if k[0] == (gfs, ino)]
        for k in stale:
            del self._negative[k]
        if dropped or stale:
            self.stats.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        if self._entries:
            self.stats.invalidations += len(self._entries)
        self._entries.clear()
        self._negative.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, gfile: Gfile) -> bool:
        return gfile in self._entries
