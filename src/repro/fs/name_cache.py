"""Per-site cache of decoded directory entries (the hot-path name cache).

Pathname searching is the dominant repeated cost of the system (paper
section 2.3.4 extends it with pathname shipping for exactly that reason):
every component of every ``walk()`` pays an unsynchronized open, a page read
per directory page, a decode, and a close — network messages for every
remote directory.  This cache remembers the *decoded* entry list of a
directory keyed by the version vector of the committed content it was
decoded from.

Consistency model — stale entries are impossible, not just unlikely:

* An entry is only ever **used** after the caller re-validates the version
  vector against the authority the uncached path would have consulted (the
  local committed inode for a clean local copy, the CSS's merged
  latest-version knowledge otherwise).  Version vectors are bumped on every
  commit, so vector equality implies content equality.
* Every path that invalidates buffer-cache pages for a file (commit
  notification intake, page-valid-token revocation, propagation-pull
  completion, recovery/merge installs, partition cleanup, close) also drops
  the name entry: :class:`~repro.storage.buffer_cache.BufferCache` cascades
  its ``invalidate*`` calls into its companion name cache.

Entries are handed out as fresh copies so callers can never mutate the
cached truth in place.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.fs.directory import DirEntry
from repro.fs.types import Gfile
from repro.storage.version_vector import VersionVector


@dataclass
class NameCacheStats:
    hits: int = 0
    misses: int = 0
    fills: int = 0
    invalidations: int = 0
    stale_drops: int = 0     # lookups that failed version validation

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _NameEntry:
    version: VersionVector
    entries: Tuple[DirEntry, ...]


class NameCache:
    """LRU map ``gfile -> (version_vector, decoded entries)``."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("name cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Gfile, _NameEntry]" = OrderedDict()
        self.stats = NameCacheStats()

    # -- lookup ----------------------------------------------------------

    def peek(self, gfile: Gfile) -> Optional[_NameEntry]:
        """The raw cached entry without validation or stats counting; the
        caller must validate ``.version`` before using ``.entries``."""
        return self._entries.get(gfile)

    def get(self, gfile: Gfile,
            version: VersionVector) -> Optional[List[DirEntry]]:
        """Validated lookup: the cached entries, iff they were decoded from
        exactly the committed content identified by ``version``."""
        cached = self._entries.get(gfile)
        if cached is None:
            self.stats.misses += 1
            return None
        if cached.version != version:
            # The directory moved on; the entry is dead weight.
            self._entries.pop(gfile, None)
            self.stats.stale_drops += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(gfile)
        self.stats.hits += 1
        return self.copy_entries(cached.entries)

    @staticmethod
    def copy_entries(entries) -> List[DirEntry]:
        """Fresh ``DirEntry`` objects: callers may mutate their view."""
        return [DirEntry(name=e.name, ino=e.ino, ftype=e.ftype,
                         deleted=e.deleted, dvv=e.dvv)
                for e in entries]

    # -- fill / invalidate ----------------------------------------------

    def put(self, gfile: Gfile, version: VersionVector, entries) -> None:
        self._entries[gfile] = _NameEntry(version=version.copy(),
                                          entries=tuple(
                                              self.copy_entries(entries)))
        self._entries.move_to_end(gfile)
        self.stats.fills += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate_file(self, gfs: int, ino: int) -> bool:
        if self._entries.pop((gfs, ino), None) is not None:
            self.stats.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        if self._entries:
            self.stats.invalidations += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, gfile: Gfile) -> bool:
        return gfile in self._entries
