"""Per-client idempotency ledger for exactly-once mutating syscalls.

The LOCUS paper's network error handling (section 5.6) retries stalled
operations, but only reads are naturally safe to replay: a ``commit``
whose reply was lost may or may not have applied, and blindly re-sending
it would bump the version vector (and re-run side effects) twice.  The
ledger closes that window.  Every mutating RPC carries a
``(client_id, op_seq)`` stamp; the executing site records the reply keyed
by the stamp, and a duplicate request — a supervised retry, or a replay
after write-path failover returns to the same site — is answered from the
record instead of re-executing.

Two deployment flavours share this class:

* **Durable** (storage site): one ledger per pack, living on the
  :class:`~repro.storage.pack.Pack` object.  Packs model the disk, so the
  memoized replies for ``fs.commit`` / ``fs.create_file`` survive an SS
  crash the same way committed blocks do — a retry arriving after restart
  still replays rather than double-applying.  In-flight markers are
  volatile and are dropped by ``reset_running()`` on crash.
* **Volatile** (CSS, and SS open-state ops): recreated empty by
  ``reset_volatile``.  Open/close bookkeeping dies with the site anyway,
  so durability would buy nothing; the ledger only has to absorb
  duplicate deliveries while the site is up.

Entries are garbage collected on two triggers: the client piggybacks the
highest op_seq below which **all** its operations completed (``_ack`` on
every stamped request), which retires everything at or below it; and a
bounded per-client window (``CostModel.ledger_window``) caps memory as a
backstop, evicting oldest-first.  The window must be at least as large as
a client's maximum number of concurrently outstanding mutating ops —
LOCUS sites run a handful of kernel processes, so the default of 16 is
generous.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Tuple


class LedgerEntry:
    """One memoized reply; ``seq`` values at or below ``acked`` are gone."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


class IdempotencyLedger:
    """Bounded per-client map of ``op_seq -> memoized reply``.

    Only *successful* replies are memoized: a failed execution removes its
    in-flight marker so the retry re-executes (the error paths of the
    stamped operations either apply fully or not at all, so re-running
    after a deterministic failure is safe and lets transient failures
    heal).  A duplicate arriving while the first execution is still in
    flight waits on the recorded future rather than racing it.
    """

    def __init__(self, window: int = 16):
        self.window = max(1, int(window))
        # client -> OrderedDict[seq -> LedgerEntry], oldest first
        self._done: Dict[int, "OrderedDict[int, LedgerEntry]"] = {}
        # client -> {seq -> Future}; volatile even in the durable flavour
        self._running: Dict[int, Dict[int, Any]] = {}
        # client -> highest contiguously-acked seq (entries <= this are gone)
        self._acked: Dict[int, int] = {}
        self.replays = 0
        self.evictions = 0

    # -- lookup / record ------------------------------------------------

    def begin(self, client: int, seq: int) -> Tuple[str, Any]:
        """Classify a stamped request.

        Returns one of ``("done", memoized_reply)``,
        ``("running", future)`` — the caller should wait and re-check —
        or ``("new", None)``, in which case an in-flight marker now
        exists and the caller must call :meth:`commit` or :meth:`abort`.
        The future is created lazily by the caller via
        :meth:`set_running` because the ledger itself is sim-agnostic.
        """
        entry = self._done.get(client, {}).get(seq)
        if entry is not None:
            self.replays += 1
            return ("done", entry.value)
        fut = self._running.get(client, {}).get(seq)
        if fut is not None:
            return ("running", fut)
        return ("new", None)

    def set_running(self, client: int, seq: int, fut: Any) -> None:
        self._running.setdefault(client, {})[seq] = fut

    def commit(self, client: int, seq: int, value: Any) -> None:
        """Record a successful reply and wake any waiting duplicates."""
        fut = self._running.get(client, {}).pop(seq, None)
        done = self._done.setdefault(client, OrderedDict())
        done[seq] = LedgerEntry(value)
        while len(done) > self.window:
            done.popitem(last=False)
            self.evictions += 1
        if fut is not None and not fut.done:
            fut.resolve(None)

    def abort(self, client: int, seq: int) -> None:
        """Drop the in-flight marker after a failed execution."""
        fut = self._running.get(client, {}).pop(seq, None)
        if fut is not None and not fut.done:
            fut.resolve(None)

    # -- garbage collection ---------------------------------------------

    def ack(self, client: int, upto: int) -> None:
        """Client reports all its ops with seq <= upto completed.

        Eviction is driven by this acknowledgement, not by recording: an
        entry whose reply may still be retried (client has not confirmed
        completion) stays until the window cap forces it out.
        """
        if upto < 0:
            return
        prev = self._acked.get(client, -1)
        if upto <= prev:
            return
        self._acked[client] = upto
        done = self._done.get(client)
        if not done:
            return
        for seq in [s for s in done if s <= upto]:
            del done[seq]
            self.evictions += 1

    # -- lifecycle -------------------------------------------------------

    def reset_running(self) -> None:
        """Crash: in-flight markers are volatile even on a durable ledger."""
        self._running.clear()

    def entries(self):
        """Iterate ``(client, seq)`` of all memoized replies (for audits)."""
        for client, done in self._done.items():
            for seq in done:
                yield (client, seq)
