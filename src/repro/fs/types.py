"""Shared filesystem types."""

from __future__ import annotations

import enum
from typing import Tuple

# A file's globally unique low-level name:
# <logical filegroup number, file descriptor (inode) number> (section 2.2.2).
Gfile = Tuple[int, int]

ROOT_GFS = 0  # the filegroup mounted at /


class Mode(enum.Enum):
    """Open modes.

    ``UNSYNC`` is the internal unsynchronized read used for pathname
    searching (section 2.3.4): no global locking is done, and a local copy
    can be used without informing the CSS.
    """

    READ = "read"
    WRITE = "write"          # read-write, open-for-modification
    UNSYNC = "unsync-read"   # internal, directory interrogation

    @property
    def writable(self) -> bool:
        return self is Mode.WRITE

    @property
    def synchronized(self) -> bool:
        return self is not Mode.UNSYNC
