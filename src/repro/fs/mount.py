"""Logical filegroups and the replicated mount table.

"Gluing together a collection of filegroups to construct the uniform naming
tree is done via the mount mechanism ...  The glue which allows smooth path
traversals up and down the expanded naming tree is kept as operating system
state information.  Currently this state information is replicated at all
sites" (paper section 2.1).  The reconfiguration protocols require that the
mount hierarchy be the same at all sites (section 5.1), which the cluster
builder guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import EINVAL
from repro.fs.types import Gfile
from repro.storage.pack import ROOT_INO


@dataclass
class FilegroupInfo:
    """One logical filegroup: a wholly self-contained naming subtree.

    ``pack_sites`` is ordered: position in the list is the pack index, which
    determines each pack's private inode-number pool.
    """

    gfs: int
    name: str
    pack_sites: List[int] = field(default_factory=list)
    mounted_on: Optional[Gfile] = None      # (gfs, ino) of the mount point

    def pack_index_of_site(self, site_id: int) -> Optional[int]:
        try:
            return self.pack_sites.index(site_id)
        except ValueError:
            return None


class MountTable:
    """Per-site replica of the filegroup / mount / CSS state."""

    def __init__(self):
        self.groups: Dict[int, FilegroupInfo] = {}
        self.css: Dict[int, int] = {}                 # gfs -> CSS site
        self.mounts_at: Dict[Gfile, int] = {}         # mount point -> child gfs

    # -- filegroups -----------------------------------------------------

    def add_filegroup(self, info: FilegroupInfo) -> None:
        if info.gfs in self.groups:
            raise EINVAL(f"filegroup {info.gfs} already known")
        self.groups[info.gfs] = info
        if info.mounted_on is not None:
            self.mounts_at[info.mounted_on] = info.gfs

    def filegroup(self, gfs: int) -> FilegroupInfo:
        info = self.groups.get(gfs)
        if info is None:
            raise EINVAL(f"unknown filegroup {gfs}")
        return info

    def pack_sites(self, gfs: int) -> List[int]:
        return list(self.filegroup(gfs).pack_sites)

    # -- CSS ----------------------------------------------------------------

    def css_for(self, gfs: int) -> int:
        css = self.css.get(gfs)
        if css is None:
            raise EINVAL(f"no CSS assigned for filegroup {gfs}")
        return css

    def set_css(self, gfs: int, site_id: int) -> None:
        self.filegroup(gfs)  # validate
        self.css[gfs] = site_id

    def elect_css(self, gfs: int, members: "set[int]") -> Optional[int]:
        """Pick the CSS among partition members: the lowest-numbered member
        holding a pack, falling back to the lowest member (the CSS need not
        store any particular file, section 2.3.1)."""
        candidates = [s for s in self.filegroup(gfs).pack_sites
                      if s in members]
        if candidates:
            return min(candidates)
        return min(members) if members else None

    # -- mount crossings ------------------------------------------------------

    def crossing(self, gfile: Gfile) -> Optional[Gfile]:
        """If ``gfile`` is a mount point, the mounted filegroup's root."""
        child_gfs = self.mounts_at.get(gfile)
        if child_gfs is None:
            return None
        return (child_gfs, ROOT_INO)

    def parent_of_root(self, gfs: int) -> Optional[Gfile]:
        """Where '..' leads from a filegroup root (the mount point's dir)."""
        return self.filegroup(gfs).mounted_on

    # -- replication ---------------------------------------------------------

    def clone(self) -> "MountTable":
        """An independent per-site replica of this table."""
        other = MountTable()
        for info in self.groups.values():
            other.groups[info.gfs] = FilegroupInfo(
                gfs=info.gfs, name=info.name,
                pack_sites=list(info.pack_sites),
                mounted_on=info.mounted_on)
            if info.mounted_on is not None:
                other.mounts_at[info.mounted_on] = info.gfs
        other.css = dict(self.css)
        return other
