"""Anti-entropy scrub: background divergence sweep after heal/merge.

The paper's propagation protocol is notification-driven: a commit sends
``fs.notify`` to the other storage sites, and the partition-merge
procedure (section 4) re-reconciles whatever a topology change may have
disturbed.  Both are one-shot — a notify lost to a fault that fires
*after* the merge sweep snapshotted its inventories leaves replicas
quietly divergent until some unrelated membership change, and nothing
ever cross-checks the *content* of copies whose version vectors agree.

The scrub closes that gap.  After every partition merge or recovery
sweep, the filegroup's CSS runs a bounded number of delayed rounds; each
round asks every reachable pack holder for a batched summary — one
``fs.scrub_digest`` RPC per pack, returning each inode's attributes plus
a digest of its committed content — and classifies every mismatch:

* a dominated or never-seeded copy is handed to the recovery manager's
  per-file reconcile (which propagates the best version through the
  normal pull machinery);
* copies whose version vectors are *equal* but whose digests differ are
  flagged as a conflict (regular files) or re-merged (directories);
* a pack storing data its inode no longer advertises is told to retire
  the copy;
* a live directory entry naming an inode no reachable pack holds is
  scrubbed out (the classic fsck action), and link counts are recounted.

A round that finds nothing ends the sweep early; ``scrub_rounds`` bounds
the worst case.  The scrub never runs in fault-free steady state — its
only triggers fire from the merge procedure — so disabling it
(``CostModel.scrub_enabled``) changes nothing on a clean run.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Generator, List, Set, Tuple

from repro.errors import FsError, NetworkError
from repro.fs.directory import decode_entries
from repro.fs.types import Gfile
from repro.storage.inode import FileType
from repro.storage.version_vector import latest

_DIR_TYPES = (FileType.DIRECTORY, FileType.HIDDEN_DIR)


def committed_digest(pack, ino: int, page_size: int = 1024) -> str:
    """Digest of an inode's committed content, straight from pack blocks
    (the same committed view fsck audits)."""
    inode = pack.get_inode(ino)
    if inode is None:
        return ""
    chunks = []
    for blockno in inode.pages:
        chunks.append((pack.read_block(blockno) if blockno is not None
                       else b"").ljust(page_size, b"\x00"))
    return hashlib.sha1(b"".join(chunks)[:inode.size]).hexdigest()[:16]


class ScrubStats:
    def __init__(self):
        self.sweeps = 0
        self.rounds = 0
        self.converged = 0          # sweeps that ended on a clean round
        self.exhausted = 0          # sweeps that ran out of rounds
        self.partial_rounds = 0     # rounds missing a believed-up holder
        self.reconciles = 0         # files handed to recovery
        self.digest_skews = 0       # equal-vv copies with differing content
        self.dir_remerges = 0
        self.placement_repairs = 0  # unadvertised copies retired
        self.dangling_removed = 0
        self.nlink_repairs = 0


class ScrubManager:
    """Per-site anti-entropy scrubber; active at the CSS of a filegroup."""

    def __init__(self, site):
        self.site = site
        self.stats = ScrubStats()
        self._active: Set[int] = set()   # filegroups with a sweep running
        site.metrics.register_source("scrub", lambda: {
            "sweeps": self.stats.sweeps,
            "rounds": self.stats.rounds,
            "converged": self.stats.converged,
            "exhausted": self.stats.exhausted,
            "partial_rounds": self.stats.partial_rounds,
            "reconciles": self.stats.reconciles,
            "digest_skews": self.stats.digest_skews,
            "placement_repairs": self.stats.placement_repairs,
            "dangling_removed": self.stats.dangling_removed,
        })

    @property
    def sid(self) -> int:
        return self.site.site_id

    def reset_volatile(self) -> None:
        self._active.clear()   # sweep tasks died with the site

    def on_restart(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, gfs: int) -> None:
        """Kick off a scrub sweep for a filegroup this site synchronizes.
        Called from the merge procedure, next to recovery scheduling."""
        if not self.site.cost.scrub_enabled:
            return
        if gfs in self._active:
            return
        self._active.add(gfs)
        self.site.spawn(self._traced_sweep(gfs),
                        name=f"scrub:fg{gfs}@{self.sid}")

    def _traced_sweep(self, gfs: int) -> Generator:
        tracer = getattr(self.site, "tracer", None)
        span = prev = None
        if tracer is not None and tracer.enabled:
            tracer.instant("scrub.start", site=self.sid, attrs={"gfs": gfs})
            span, prev = tracer.begin(f"scrub:fg{gfs}", "scrub", self.sid,
                                      inherit=False, attrs={"gfs": gfs})
        status_label = "ok"
        try:
            result = yield from self._sweep(gfs)
            return result
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
            status_label = type(exc).__name__
            raise
        finally:
            self._active.discard(gfs)
            if span is not None:
                tracer.finish(span, prev, status=status_label)
                tracer.instant("scrub.complete", site=self.sid,
                               attrs={"gfs": gfs,
                                      "rounds": self.stats.rounds,
                                      "status": status_label})

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------

    def _sweep(self, gfs: int) -> Generator:
        cost = self.site.cost
        recovery = self.site.recovery
        fs = self.site.fs
        self.stats.sweeps += 1
        for __ in range(max(1, cost.scrub_rounds)):
            yield cost.scrub_interval
            if not cost.scrub_enabled:
                return None
            if fs.mount.css_for(gfs) != self.sid:
                return None   # lost the CSS role: the new CSS scrubs
            # Let queued reconciles drain first; a scrub over a half-merged
            # filegroup would re-report what recovery is already fixing.
            for __wait in range(10):
                busy = recovery is not None and (
                    recovery.pending.get(gfs) or recovery._demanding)
                if not busy:
                    break
                yield cost.scrub_interval / 2
            self.stats.rounds += 1
            self.site.metrics.count("scrub.rounds")
            before = recovery.stats.nlink_repairs if recovery else 0
            mismatches = yield from self._round(gfs)
            # Recount link references even on an otherwise clean round: a
            # deferred directory merge (rule-d resurrection) can land after
            # the sweep's own repair pass already ran.
            if recovery is not None:
                try:
                    yield from recovery._repair_link_counts(gfs)
                except (NetworkError, FsError):
                    pass
            repairs = (recovery.stats.nlink_repairs - before) \
                if recovery else 0
            self.stats.nlink_repairs += repairs
            if mismatches == 0 and repairs == 0:
                self.stats.converged += 1
                self.site.metrics.count("scrub.converged")
                return None
        self.stats.exhausted += 1
        self.site.metrics.count("scrub.exhausted")
        return None

    def _flag(self, category: str, gfile: Gfile) -> None:
        """A divergence was classified: timestamp it on the shared
        timeline (``scrub.<category>`` instant) and feed the cluster's
        detection-latency metric (ISSUE 10).  Observational only."""
        tracer = getattr(self.site, "tracer", None)
        if tracer is not None and tracer.enabled:
            tracer.instant(f"scrub.{category}", site=self.sid,
                           attrs={"gfile": list(gfile)})
        monitor = self.site.convergence
        if monitor is not None and monitor.enabled:
            monitor.note_detection(category, site=self.sid, gfile=gfile)

    def _rpc(self, dst: int, op: str, payload: dict) -> Generator:
        cost = self.site.cost
        timeout = (cost.rpc_timeout or None) if cost.supervise_remote_ops \
            else None
        result = yield from self.site.rpc(dst, op, payload, timeout=timeout)
        return result

    def _summaries(self, gfs: int) -> Generator:
        """One fs.scrub_digest RPC per reachable pack holder.  Returns
        ``(summaries, expected)`` — the holders that answered and the set
        the partition tables said should have."""
        members = self.site.topology.partition_set if self.site.topology \
            else set(self.site.net.site_ids)
        expected = {s for s in self.site.fs.mount.pack_sites(gfs)
                    if s in members}
        summaries: Dict[int, Dict[int, dict]] = {}
        for s in sorted(expected):
            try:
                summaries[s] = yield from self._rpc(
                    s, "fs.scrub_digest", {"gfs": gfs})
            except (NetworkError, FsError):
                continue
        return summaries, expected

    def _round(self, gfs: int) -> Generator:
        """One classification pass; returns the number of mismatches found
        (each is also repaired or queued for repair)."""
        recovery = self.site.recovery
        summaries, expected = yield from self._summaries(gfs)
        # A believed-up pack holder that did not answer may be hiding
        # exactly the divergence the scrub exists to find: the round is
        # incomplete, not converged, so keep the sweep alive.
        shortfall = len(expected) - len(summaries)
        if shortfall:
            self.stats.partial_rounds += 1
            self.site.metrics.count("scrub.partial_rounds")
        if len(summaries) < 2:
            return shortfall if len(expected) >= 2 else 0
        all_inos: Set[int] = set()
        for summ in summaries.values():
            all_inos |= set(summ)
        mismatches = shortfall
        for ino in sorted(all_inos):
            gfile: Gfile = (gfs, ino)
            copies = [(s, summ[ino]) for s, summ in summaries.items()
                      if ino in summ]
            live = [(s, e["attrs"]) for s, e in copies
                    if e["has_data"] and not e["attrs"]["deleted"]]
            if not live:
                continue
            if all(a["conflict"] for __, a in live):
                continue   # awaiting user resolution (section 4.6)
            __, best_vv, conflict = latest(
                (s, a["version"]) for s, a in live)
            if best_vv.total() == 0:
                continue   # never-committed placeholders, nothing to spread
            if conflict:
                # Concurrent lineages: the merge machinery, not a pull.
                mismatches += 1
                self.stats.reconciles += 1
                self.site.metrics.count("scrub.reconciles")
                self._flag("reconcile", gfile)
                if recovery is not None:
                    recovery._note_reconcile_needed(gfile)
                continue
            win_attrs = next(a for __, a in live if a["version"] == best_vv)
            behind = {s for s, a in live if a["version"] != best_vv}
            missing = (set(win_attrs["storage_sites"]) & set(summaries)) \
                - {s for s, __ in live}
            if behind or missing:
                # A dominated copy (its update notify was lost) or an
                # advertised replica holding no data: recovery's per-file
                # reconcile propagates the best version to both.
                mismatches += 1
                self.stats.reconciles += 1
                self.site.metrics.count("scrub.reconciles")
                self._flag("reconcile", gfile)
                if recovery is not None:
                    recovery._note_reconcile_needed(gfile)
                continue
            digests = {e["digest"] for __, e in copies
                       if e["has_data"] and not e["attrs"]["deleted"]}
            if len(digests) > 1:
                # Equal version vectors, different bytes: the version
                # system itself was subverted (e.g. a torn install), so no
                # copy can be trusted as "the" best.
                mismatches += 1
                self.stats.digest_skews += 1
                self.site.metrics.count("scrub.digest_skews")
                self._flag("digest_skew", gfile)
                if recovery is None:
                    continue
                if win_attrs["ftype"] in _DIR_TYPES:
                    self.stats.dir_remerges += 1
                    try:
                        yield from recovery._merge_directory(
                            gfile, live, summaries, force=True)
                    except (NetworkError, FsError):
                        pass
                else:
                    yield from recovery._mark_conflict(gfile, live)
                continue
            for s, a in live:
                if s not in win_attrs["storage_sites"]:
                    # Misplaced: the pack stores data the inode no longer
                    # advertises there (a replica drop whose notify was
                    # lost).  The normal notify path returns "already
                    # current" on an equal version, so the retire is
                    # requested explicitly.
                    mismatches += 1
                    self.stats.placement_repairs += 1
                    self.site.metrics.count("scrub.placement_repairs")
                    self._flag("placement", gfile)
                    yield from self.site.oneway_quiet(s, "fs.notify", {
                        "gfile": gfile, "attrs": win_attrs, "pages": None,
                        "origin": self.sid, "_scrub_placement": True})
        mismatches += yield from self._scrub_dangling(gfs, summaries)
        return mismatches

    def _scrub_dangling(self, gfs: int,
                        summaries: Dict[int, Dict[int, dict]]) -> Generator:
        """Remove live directory entries naming an inode no pack holds live
        data for — the classic fsck scrub, run under the directory write
        lock so it serializes with any in-flight modification."""
        fs = self.site.fs
        recovery = self.site.recovery
        if recovery is None:
            return 0
        if not set(fs.mount.pack_sites(gfs)) <= set(summaries):
            # A pack is unreachable: its copies could be the referent.
            return 0
        live: Set[int] = set()
        for summ in summaries.values():
            live |= {ino for ino, e in summ.items()
                     if e["has_data"] and not e["attrs"]["deleted"]}
        removed = 0
        for ino in sorted(live):
            holders: List[Tuple[int, dict]] = [
                (s, summ[ino]) for s, summ in summaries.items()
                if ino in summ and summ[ino]["has_data"]
                and not summ[ino]["attrs"]["deleted"]]
            attrs0 = holders[0][1]["attrs"]
            if attrs0["ftype"] not in _DIR_TYPES:
                continue
            if any(e["attrs"]["conflict"] for __, e in holders) or \
                    any(e["attrs"]["version"] != attrs0["version"]
                        for __, e in holders):
                continue   # divergent copies go through reconcile first
            try:
                data = yield from recovery._read_copy(
                    holders[0][0], (gfs, ino), attrs0)
                entries = decode_entries(data)
            except (NetworkError, FsError, ValueError):
                continue
            for entry in entries:
                if entry.deleted or entry.name in (".", ".."):
                    continue
                if entry.ino in live:
                    continue
                try:
                    yield from fs._dir_modify(
                        (gfs, ino),
                        lambda view, n=entry.name: view.entries.remove(
                            next(e for e in view.entries
                                 if e.name == n and not e.deleted)))
                except (NetworkError, FsError, StopIteration):
                    continue
                removed += 1
                self.stats.dangling_removed += 1
                self.site.metrics.count("scrub.dangling_removed")
                self._flag("dangling", (gfs, entry.ino))
        return removed
