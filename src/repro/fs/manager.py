"""The distributed filesystem kernel: US/SS/CSS protocols.

Implements the message sequences of paper section 2.3 exactly:

* open (general case, Figure 2)::

      US  -> CSS   OPEN request
      CSS -> SS    request for storage site
      SS  -> CSS   response to previous message
      CSS -> US    response to first message

  with the two optimizations described in the text: when the US stores the
  latest version the CSS selects the US itself, and when the CSS stores the
  latest version it picks itself "without any message overhead".

* network read (section 2.3.3)::

      US -> SS     request for page x of file y
      SS -> US     response to the above request

* write (section 2.3.5): a single one-way message (low-level acks only).

* close (section 2.3.3, including the race fix in the footnote)::

      US  -> SS    US close
      SS  -> CSS   SS close
      CSS -> SS    response to above
      SS  -> US    response to first message
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.errors import (EBADF, EBUSY, ECONFLICT, EINVAL, EIO, ENOENT,
                          ESTALE, EWOULDCONFLICT, EWRITELOST, FsError,
                          NetworkError, SiteDown)
from repro.fs.handles import CssEntry, SsOpen, UsHandle
from repro.fs.ledger import IdempotencyLedger
from repro.fs.mount import MountTable
from repro.fs.namespace import NamespaceMixin
from repro.fs.path import PathMixin
from repro.fs.propagation import Propagator
from repro.fs.types import Gfile, Mode
from repro.storage.pack import Pack, pack_index_of
from repro.storage.shadow import ShadowFile
from repro.storage.version_vector import VersionVector


class FsManager(PathMixin, NamespaceMixin):
    """Per-site filesystem kernel; plays US, SS and CSS as needed."""

    def __init__(self, site, mount: MountTable):
        self.site = site
        self.mount = mount
        self.us: Dict[int, UsHandle] = {}
        self.ss: Dict[Gfile, SsOpen] = {}
        # In-flight remote page fetches (readahead included), so concurrent
        # requests for one page share a single network read.
        self._inflight: Dict[Tuple[int, int, int], object] = {}
        self.css_entries: Dict[Gfile, CssEntry] = {}
        # Latest version vector this kernel has *heard of* per file (commit
        # notifications update it immediately, before any data propagates).
        # The CSS uses it so a lagging local copy is never offered as
        # current (section 2.3.1: the CSS "must have knowledge of ... what
        # the most current version of the file is").
        self.known_latest: Dict[Gfile, VersionVector] = {}
        # Topology epoch (bumped by reconfiguration cleanup) and the epoch
        # at which each gfile's peer versions were last probed: a CSS
        # (re-)elected after a membership change may only know a stale
        # local copy, so the first write open per epoch asks the other
        # pack sites what they committed before granting the token.
        self.topology_epoch = 0
        self._vv_probe_epoch: Dict[Gfile, int] = {}
        self._hids = itertools.count(1)
        self._delete_acks: Dict[Gfile, Set[int]] = {}
        # Volatile idempotency ledger for open/close bookkeeping RPCs: the
        # state those ops touch (CSS entries, SS open records) dies with
        # the site anyway, so durability would buy nothing.  Commit and
        # create replies live on the pack's durable ledger instead.
        self.op_ledger = IdempotencyLedger(self.cost.ledger_window)
        self.propagator = Propagator(self)
        self._register_handlers()
        self._register_metric_sources()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _register_handlers(self) -> None:
        reg = self.site.register_handler
        reg("fs.css_open", self.h_css_open)
        reg("fs.ss_open", self.h_ss_open)
        reg("fs.read_page", self.h_read_page)
        reg("fs.read_pages", self.h_read_pages)
        reg("fs.write_page", self.h_write_page)
        reg("fs.write_pages", self.h_write_pages)
        reg("fs.truncate", self.h_truncate)
        reg("fs.set_attrs", self.h_set_attrs)
        reg("fs.commit", self.h_commit)
        reg("fs.abort", self.h_abort)
        reg("fs.close", self.h_close)
        reg("fs.close_unsync", self.h_close_unsync)
        reg("fs.css_ss_close", self.h_css_ss_close)
        reg("fs.validate_open", self.h_validate_open)
        reg("fs.notify", self.h_notify)
        reg("fs.invalidate", self.h_invalidate)
        reg("fs.create_file", self.h_create_file)
        reg("fs.delete_seen", self.h_delete_seen)
        reg("fs.fetch_attrs", self.h_fetch_attrs)
        reg("fs.pull_open", self.h_pull_open)
        reg("fs.pull_manifest", self.h_pull_manifest)
        reg("fs.pull_read", self.h_pull_read)
        reg("fs.pull_read_range", self.h_pull_read_range)
        reg("fs.dir_version", self.h_dir_version)
        reg("fs.pack_inventory", self.h_pack_inventory)
        reg("fs.scrub_digest", self.h_scrub_digest)
        reg("fs.css_rebuild", self.h_css_rebuild)
        reg("fs.invalidate_file", self.h_invalidate_file)
        reg("fs.install_merged", self.h_install_merged)
        reg("fs.mark_conflict", self.h_mark_conflict)
        reg("fs.patch_nlink", self.h_patch_nlink)
        reg("fs.reap", self.h_reap)
        reg("fs.walk_path", self.h_walk_path)
        reg("fs.scrub_orphan", self.h_scrub_orphan)

    def _register_metric_sources(self) -> None:
        """Expose the fs-layer counters through the site registry so
        inspection and benchmarks read one interface (repro.obs)."""
        metrics = getattr(self.site, "metrics", None)
        if metrics is None:
            return
        metrics.register_source("propagation", lambda: {
            "pulls": self.propagator.stats.pulls,
            "pages_pulled": self.propagator.stats.pages_pulled,
            "range_requests": self.propagator.stats.range_requests,
            "pipelined_rounds": self.propagator.stats.pipelined_rounds,
            "manifest_requests": self.propagator.stats.manifest_requests,
            "manifest_hits": self.propagator.stats.manifest_hits,
            "sync_waits": self.propagator.stats.sync_waits,
        })
        metrics.register_source("write_behind", lambda: {
            "staged_pages": sum(len(h.pending_writes)
                                for h in self.us.values()),
            "pages_sent_unacked": sum(h.pages_sent
                                      for h in self.us.values()),
        })

    def reset_volatile(self) -> None:
        """Crash: incore inodes and synchronization state vanish."""
        self.us.clear()
        self.ss.clear()
        self.css_entries.clear()
        self.known_latest.clear()
        for fut in self._inflight.values():
            fut.fail(SiteDown(self.sid))
        self._inflight.clear()
        self._delete_acks.clear()
        self._vv_probe_epoch.clear()
        self.op_ledger = IdempotencyLedger(self.cost.ledger_window)
        for pack in self.site.packs.values():
            if pack.ledger is not None:
                # Memoized replies are disk state and survive; in-flight
                # execution markers died with their handler tasks.
                pack.ledger.reset_running()
        self.propagator.reset()

    def on_restart(self) -> None:
        self.propagator.start()

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------

    @property
    def sid(self) -> int:
        return self.site.site_id

    @property
    def cost(self):
        return self.site.cost

    def local_pack(self, gfs: int) -> Optional[Pack]:
        return self.site.packs.get(gfs)

    def local_inode(self, gfile: Gfile):
        pack = self.local_pack(gfile[0])
        return pack.get_inode(gfile[1]) if pack else None

    def stores_locally(self, gfile: Gfile) -> bool:
        pack = self.local_pack(gfile[0])
        return bool(pack and pack.stores(gfile[1]))

    def _page_key(self, gfile: Gfile, page: int) -> Tuple[int, int, int]:
        return (gfile[0], gfile[1], page)

    def _n_pages(self, size: int) -> int:
        psz = self.cost.page_size
        return (size + psz - 1) // psz

    # ------------------------------------------------------------------
    # Exactly-once execution (idempotency ledger)
    # ------------------------------------------------------------------

    def _pack_ledger(self, gfs: int) -> Optional[IdempotencyLedger]:
        """The durable ledger of the local pack (created lazily)."""
        pack = self.local_pack(gfs)
        if pack is None:
            return None
        if pack.ledger is None:
            pack.ledger = IdempotencyLedger(self.cost.ledger_window)
        return pack.ledger

    def _exactly_once(self, p: dict, ledger: Optional[IdempotencyLedger],
                      run) -> Generator:
        """Run a mutating handler body at most once per ``(client, seq)``.

        A duplicate of a completed execution replays the memoized reply; a
        duplicate of an execution still in flight waits for it to settle
        and re-checks (replays on success, re-executes after a failure —
        the stamped operations either apply fully or not at all, so
        re-running a failed one is safe).  Unstamped requests, and sites
        without a ledger for the filegroup, run the body directly.
        """
        stamp = p.get("_stamp") if self.cost.exactly_once_writes else None
        if stamp is None or ledger is None:
            result = yield from run()
            return result
        client, seq = stamp
        ledger.ack(client, p.get("_ack", -1))
        while True:
            state, val = ledger.begin(client, seq)
            if state == "done":
                self.site.metrics.count("fs.ledger_replays")
                return val
            if state == "new":
                break
            yield val           # in flight: wait, then re-check
        fut = self.site.sim.create_future(f"ledger:{client}:{seq}")
        ledger.set_running(client, seq, fut)
        try:
            result = yield from run()
        except BaseException:
            ledger.abort(client, seq)
            raise
        ledger.commit(client, seq, result)
        return result

    # ------------------------------------------------------------------
    # US: open
    # ------------------------------------------------------------------

    def open_gfile(self, gfile: Gfile, mode: Mode,
                   allow_conflict: bool = False,
                   reopen: bool = False,
                   known_vv: Optional[VersionVector] = None) -> Generator:
        """Open by low-level name; returns a :class:`UsHandle`.

        Unsynchronized reads of locally stored, propagation-clean files are
        served without informing the CSS (section 2.3.4).
        """
        tracer = self.site.tracer
        span = prev = None
        if tracer is not None and tracer.enabled and mode.synchronized:
            # Internal unsynchronized opens (pathname searching) stay
            # inside the enclosing syscall span; real opens get their own.
            span, prev = tracer.begin("fs.open", "fs", self.sid,
                                      attrs={"gfile": list(gfile),
                                             "mode": mode.name})
        status_label = "ok"
        start = self.site.sim.now
        try:
            handle = yield from self._open_gfile(gfile, mode, allow_conflict,
                                                 reopen, known_vv)
            if span is not None:
                tracer.annotate(span, "ss", handle.ss_site)
            return handle
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
            status_label = type(exc).__name__
            raise
        finally:
            if mode.synchronized:
                self.site.metrics.observe("fs.open",
                                          self.site.sim.now - start)
                # Per-inode hotness: counted once per synchronized open at
                # the using site, so cluster-wide merges sum open counts.
                if self.site.load.enabled:
                    self.site.load.note_inode(gfile)
            if span is not None:
                tracer.finish(span, prev, status=status_label)

    def _open_gfile(self, gfile: Gfile, mode: Mode,
                    allow_conflict: bool = False,
                    reopen: bool = False,
                    known_vv: Optional[VersionVector] = None) -> Generator:
        if mode.synchronized:
            yield from self.site.cpu(self.cost.cpu_syscall)
        else:
            # Internal unsynchronized opens (pathname searching) are part
            # of an enclosing system call, not syscalls of their own.
            yield from self.site.cpu(self.cost.buffer_hit)
        recovery = self.site.recovery
        needs_recovery = recovery is not None and recovery.needs(gfile)
        if mode is Mode.UNSYNC and not needs_recovery:
            inode = self.local_inode(gfile)
            if (inode is not None and inode.has_data and not inode.deleted
                    and not inode.conflict
                    and not self.propagator.is_pending(gfile)):
                attrs = yield from self._ss_open_local(gfile, mode, self.sid)
                return self._make_handle(gfile, mode, self.sid, attrs,
                                         sync=False)
        us_vv = None
        if self.stores_locally(gfile):
            us_vv = self.local_inode(gfile).version.copy()
        # Supervised: the dst callable re-resolves the CSS before every
        # attempt, so a retry after a CSS crash chases the re-elected one.
        # Stamped (exactly-once): css_open mutates CSS bookkeeping, so a
        # retried request must replay the recorded grant, not register a
        # second open.
        payload = {
            "gfile": gfile,
            "mode": mode,
            "us_vv": us_vv,
            "allow_conflict": allow_conflict,
        }
        if reopen:
            # Write-path failover: let the CSS re-home our own write token
            # instead of refusing it as a second writer.
            payload["reopen"] = True
        if known_vv is not None:
            # The caller (a re-homing writer) has seen this committed
            # version; a freshly re-elected CSS whose own copy is older
            # must not grant a stale replica — it merges this floor into
            # its latest-version knowledge before selecting a storage
            # site.
            payload["known_vv"] = known_vv.copy()
        resp = yield from self.site.supervised_rpc(
            lambda: self.mount.css_for(gfile[0]), "fs.css_open", payload,
            once=True)
        ss_site, attrs = resp["ss"], resp["attrs"]
        if ss_site == self.sid:
            # CSS selected this site as SS; set up the storage-site state
            # with a procedure call (no messages).
            attrs = yield from self._ss_open_local(gfile, mode, self.sid)
        else:
            # A stale local copy may have left its pages in the buffer
            # cache (unsynchronized reads); they must not be mixed with
            # pages of the newer version the remote SS will supply.
            local = self.local_inode(gfile)
            if local is not None and local.version != attrs["version"]:
                self.site.cache.invalidate_file(*gfile)
        return self._make_handle(gfile, mode, ss_site, attrs,
                                 sync=mode.synchronized)

    def _make_handle(self, gfile: Gfile, mode: Mode, ss_site: int,
                     attrs: dict, sync: bool) -> UsHandle:
        handle = UsHandle(hid=next(self._hids), gfile=gfile, mode=mode,
                          ss_site=ss_site, attrs=dict(attrs), sync=sync)
        self.us[handle.hid] = handle
        return handle

    # ------------------------------------------------------------------
    # CSS: open
    # ------------------------------------------------------------------

    def h_css_open(self, src: int, p: dict) -> Generator:
        start = self.site.sim.now
        try:
            result = yield from self._exactly_once(
                p, self.op_ledger, lambda: self._css_open_body(src, p))
            return result
        finally:
            # CSS-role utilization: virtual time this site spent serving
            # synchronization duties for the filegroup (ISSUE 10).
            if self.site.load.enabled:
                self.site.load.note_css(p["gfile"][0],
                                        self.site.sim.now - start)

    def _css_open_body(self, src: int, p: dict) -> Generator:
        gfile: Gfile = p["gfile"]
        mode: Mode = p["mode"]
        us_vv: Optional[VersionVector] = p.get("us_vv")
        # Write-path failover: the US re-homing its own open-for-write may
        # reclaim the write token it already holds.
        prior = self.css_entries.get(gfile)
        reclaiming = (bool(p.get("reopen")) and mode.writable
                      and prior is not None and prior.writer == src)
        # Demand recovery: an unreconciled file is reconciled out of order
        # so this access proceeds with only a small delay (section 4.4).
        recovery = self.site.recovery
        if recovery is not None and recovery.needs(gfile):
            if (mode.writable and not reclaiming
                    and self.cost.exactly_once_writes
                    and self.cost.supervise_remote_ops):
                # Conflict-window retirement: no write token while copies
                # await reconciliation — a writer admitted here could race
                # the heal into a divergent commit.  Schedule the merge
                # and refuse; the supervised open retries until it clears.
                recovery.demand_soon(gfile)
                raise EWOULDCONFLICT(
                    f"gfile {gfile} queued for reconciliation")
            yield from recovery.demand(gfile)
        entry = yield from self._css_load_entry(gfile)
        known = p.get("known_vv")
        if known is not None:
            # A re-homing writer vouches for a committed version this CSS
            # may not have heard of (e.g. it was just re-elected from a
            # stale copy): never select a storage site older than it.
            self._note_version(gfile, known)
            entry.latest_vv = entry.latest_vv.merge(known)
        if mode.writable and self.topology_epoch \
                and self.cost.exactly_once_writes \
                and self.cost.supervise_remote_ops \
                and self._vv_probe_epoch.get(gfile) != \
                self.topology_epoch:
            # First write open since a membership change: this CSS may
            # have been (re-)elected from a copy that missed commits
            # (e.g. it just restarted from an old pack).  Ask the other
            # pack sites what they committed so the storage-site selection
            # below never grants a copy older than any surviving one.
            # Epoch 0 (no change since boot) needs no probe: an unbroken
            # CSS heard every commit synchronously, so fault-free runs
            # stay protocol-identical to the paper.
            self._vv_probe_epoch[gfile] = self.topology_epoch
            yield from self._probe_peer_versions(entry)
        attrs = yield from self._css_local_attrs(gfile)
        if attrs["deleted"]:
            raise ENOENT(f"gfile {gfile} deleted")
        if attrs["conflict"] and not p.get("allow_conflict"):
            raise ECONFLICT(f"gfile {gfile} has unreconciled copies")
        if mode.writable and entry.writer is not None \
                and self.cost.enforce_single_writer \
                and not (reclaiming and entry.writer == src):
            raise EBUSY(f"gfile {gfile} already open for modification")
        if mode.writable and entry.lock_tx is not None and \
                p.get("tx") != entry.lock_tx:
            raise EBUSY(f"gfile {gfile} locked by transaction "
                        f"{entry.lock_tx}")

        # Reserve the modification slot *before* the storage-site poll: the
        # poll sleeps, and a second open racing through the check while the
        # first is mid-selection would give two writers (lost updates).
        # A reclaim keeps its existing reservation: a failed re-home must
        # not release the write token the US still holds.
        reserved = mode.writable and mode.synchronized \
            and not (reclaiming and entry.writer == src)
        if reserved:
            entry.writer = src
        try:
            ss_site, attrs = yield from self._css_select_ss(
                entry, src, mode, us_vv, attrs)
        except BaseException:
            if reserved and entry.writer == src:
                entry.writer = None
                if not entry.in_use:
                    self.css_entries.pop(gfile, None)
            raise
        if mode.synchronized:
            entry.note_open(src, mode, ss_site)
            if p.get("tx") is not None and mode.writable:
                entry.lock_tx = p["tx"]
        return {"ss": ss_site, "attrs": attrs}

    def _css_select_ss(self, entry: CssEntry, us: int, mode: Mode,
                       us_vv: Optional[VersionVector],
                       attrs: dict) -> Generator:
        """Storage-site selection with the Figure 2 optimizations."""
        latest = entry.latest_vv
        # An *active writer* pins everybody to one storage site:
        # simultaneous read and modification involve only one SS (section
        # 2.3.6 footnote).  Readers alone do not pin — they may continue on
        # an older copy while newer opens go to a current site ("this must
        # not prevent other processes from accessing the newer version",
        # section 5.2).
        writer_active = (entry.writer is not None and entry.writer != us)
        if entry.active_ss is not None and writer_active \
                and self.cost.enforce_single_writer:
            candidates = [entry.active_ss]
        else:
            candidates = []
            # Optimization 1: the US already stores the latest version.
            if us_vv is not None and us in entry.storage_sites and \
                    us_vv.dominates(latest):
                entry.latest_vv = latest = us_vv.copy()
                return us, attrs
            # Optimization 2: the CSS itself stores the latest version.
            if self.stores_locally(entry.gfile):
                local_vv = self.local_inode(entry.gfile).version
                if local_vv.dominates(latest):
                    candidates.append(self.sid)
            for s in entry.storage_sites:
                if s not in candidates and s != us:
                    candidates.append(s)
            # The US last (a remote poll of the US is never useful: if it
            # stored the latest copy the optimization above fired).
            if us in entry.storage_sites and us not in candidates:
                candidates.append(us)

        for cand in candidates:
            if cand == self.sid:
                try:
                    ss_attrs = yield from self._ss_open_local(
                        entry.gfile, mode, us, required_vv=latest)
                except ESTALE:
                    continue   # stale local copy or a pull mid-flight
                return cand, ss_attrs
            try:
                ss_attrs = yield from self.site.rpc(cand, "fs.ss_open", {
                    "gfile": entry.gfile,
                    "mode": mode,
                    "us": us,
                    "required_vv": latest,
                })
                return cand, ss_attrs
            except (ESTALE, NetworkError):
                continue
        raise ENOENT(f"no available storage site for {entry.gfile}")

    def _css_load_entry(self, gfile: Gfile) -> Generator:
        entry = self.css_entries.get(gfile)
        if entry is None:
            attrs = yield from self._css_local_attrs(gfile)
            latest = attrs["version"]
            heard = self.known_latest.get(gfile)
            if heard is not None:
                latest = latest.merge(heard)
            entry = CssEntry(gfile=gfile,
                             storage_sites=list(attrs["storage_sites"]),
                             latest_vv=latest.copy())
            self.css_entries[gfile] = entry
        return entry

    def _probe_peer_versions(self, entry: CssEntry) -> Generator:
        """Merge the committed versions at the other reachable pack sites
        into ``entry.latest_vv`` (best effort: an unreachable peer is
        skipped — its commits resurface through reconciliation)."""
        gfile = entry.gfile
        timeout = self.cost.rpc_timeout or None
        for s in entry.storage_sites:
            if s == self.sid:
                continue
            try:
                attrs = yield from self.site.rpc(
                    s, "fs.fetch_attrs", {"gfile": gfile}, timeout=timeout)
            except (FsError, NetworkError):
                continue
            # Adopt only strictly-newer knowledge.  Merging an
            # *incomparable* peer version would manufacture a floor no
            # copy satisfies (every open ENOENTs); incomparable copies
            # are a conflict, and the reconciliation path owns those.
            if attrs["version"].dominates(entry.latest_vv):
                self._note_version(gfile, attrs["version"])
                entry.latest_vv = attrs["version"].copy()
        return None

    def _note_version(self, gfile: Gfile, version: VersionVector) -> None:
        heard = self.known_latest.get(gfile)
        self.known_latest[gfile] = version if heard is None \
            else heard.merge(version)

    def _css_local_attrs(self, gfile: Gfile) -> Generator:
        """Inode attributes as known at the CSS (its pack holds a copy of
        the disk inode whether or not it stores the file)."""
        inode = self.local_inode(gfile)
        if inode is not None:
            return inode.attrs()
        # CSS without a pack for this filegroup: fetch from a pack site.
        unreachable = []
        for s in self.mount.pack_sites(gfile[0]):
            if s == self.sid:
                continue
            try:
                attrs = yield from self.site.rpc(s, "fs.fetch_attrs",
                                                 {"gfile": gfile})
                return attrs
            except ENOENT:
                continue
            except NetworkError:
                unreachable.append(s)
        if unreachable and self._any_believed_up(unreachable):
            # A pack site we believe is *up* didn't answer: a transient
            # transport failure, not evidence the file does not exist —
            # surface it as such so a supervised open retries instead of
            # reporting a phantom ENOENT.  Sites the partition protocol
            # already declared gone stay ENOENT (the paper's answer for a
            # filegroup isolated in another partition).
            raise NetworkError(f"no pack site for {gfile} reachable")
        raise ENOENT(f"gfile {gfile} unknown at CSS")

    def _any_believed_up(self, sites) -> bool:
        """True when current membership still contains any of ``sites``."""
        topology = self.site.topology
        if topology is None:
            return True
        members = topology.partition_set
        return any(s in members for s in sites)

    def h_fetch_attrs(self, src: int, p: dict) -> Generator:
        inode = self.local_inode(p["gfile"])
        if inode is None:
            raise ENOENT(f"gfile {p['gfile']} not at site {self.sid}")
        yield from self.site.cpu(self.cost.buffer_hit)
        return inode.attrs()

    # ------------------------------------------------------------------
    # SS: open
    # ------------------------------------------------------------------

    def h_ss_open(self, src: int, p: dict) -> Generator:
        """``src`` is the CSS (or this site); ``p['us']`` the using site."""
        return (yield from self._ss_open_local(p["gfile"], p["mode"],
                                               p["us"], p.get("required_vv")))

    def _ss_open_local(self, gfile: Gfile, mode: Mode, us: int,
                       required_vv: Optional[VersionVector] = None
                       ) -> Generator:
        pack = self.local_pack(gfile[0])
        if pack is None or not pack.stores(gfile[1]):
            raise ESTALE(f"site {self.sid} does not store {gfile}")
        if self.propagator.is_pulling(gfile) and gfile not in self.ss:
            # A propagation pull is mid-flight: this pack is about to
            # change under any snapshot taken now.  Refuse; the CSS will
            # pick a site that already holds the latest version.
            raise ESTALE(f"site {self.sid} is propagating {gfile}")
        inode = pack.get_inode(gfile[1])
        if required_vv is not None and not inode.version.dominates(
                required_vv):
            # "If they do not yet store the latest version, they refuse to
            # act as a storage site."
            raise ESTALE(f"site {self.sid} stores an old version of {gfile}")
        so = self.ss.get(gfile)
        if so is None:
            so = SsOpen(gfile=gfile, shadow=ShadowFile(pack, gfile[1]))
            self.ss[gfile] = so
        elif not so.shadow.dirty and \
                so.shadow.incore.version != inode.version:
            # The disk inode moved under an idle incore copy (propagation
            # landed, or the number was reaped and reincarnated): a stale
            # snapshot must never serve — or worse, commit — old state.
            so.shadow = ShadowFile(pack, gfile[1])
        so.add_user(us, mode)
        yield from self.site.cpu(self.cost.buffer_hit)  # incore inode setup
        if not mode.synchronized:
            # Interrogation sees the committed state, not a concurrent
            # writer's staged incore inode (section 2.3.4).
            return pack.get_inode(gfile[1]).attrs()
        return so.shadow.incore.attrs()

    # ------------------------------------------------------------------
    # US: replica failover (sections 2.3.2, 5.2, 5.6)
    # ------------------------------------------------------------------

    def failover_handle(self, handle: UsHandle) -> Generator:
        """Internal close + reopen at another pack copy, adopting the
        replacement under the old handle id so the process never notices
        (section 5.2 principle 3: "the system substitutes a different copy
        of the same version if possible").

        Shared by the mid-call read failover below and reconfiguration
        cleanup (:mod:`repro.reconfig.cleanup`).  Raises :class:`ESTALE`
        when the only reachable copies are older than what the handle was
        reading (substituting one would run time backwards), or whatever
        the reopen itself raises when no copy remains.
        """
        if handle.failover_busy is not None and not handle.failover_busy.done:
            # Another task (e.g. reconfiguration cleanup racing a mid-call
            # retry) is already substituting a copy; a second reopen would
            # leak a CSS registration.  Wait for it and adopt its outcome.
            yield handle.failover_busy
            return None
        busy = self.site.sim.create_future(f"failover:{handle.gfile}")
        handle.failover_busy = busy
        self.site.metrics.count("fs.failovers")
        tracer = self.site.tracer
        failed_ss = handle.ss_site
        span = prev = None
        status_label = "ok"
        if tracer is not None and tracer.enabled:
            # Annotate the span whose work is being failed over (the
            # enclosing syscall/recovery span carried by the task)...
            tracer.event_on(tracer.current_ctx(), "failover",
                            {"gfile": list(handle.gfile),
                             "failed_ss": failed_ss})
            # ...and give the substitution itself a span, so storm traces
            # show the re-home instead of an anonymous rpc:fs.css_open.
            span, prev = tracer.begin("fs.failover", "fs", self.sid,
                                      attrs={"gfile": list(handle.gfile),
                                             "failed_ss": failed_ss})
        try:
            old_version = handle.attrs["version"]
            replacement = yield from self.open_gfile(handle.gfile,
                                                     handle.mode)
            if not replacement.attrs["version"].dominates(old_version):
                yield from self.close(replacement)
                raise ESTALE(f"remaining copies of {handle.gfile} are older "
                             f"than the open version")
            if replacement.attrs["version"] != old_version:
                # A strictly newer version: locally cached pages of the old
                # one must not serve alongside it.
                self.site.cache.invalidate_file(*handle.gfile)
            handle.ss_site = replacement.ss_site
            handle.attrs = replacement.attrs
            handle.last_page = -2
            handle.run_len = 0
            self.us.pop(replacement.hid, None)
            if tracer is not None and tracer.enabled:
                tracer.event_on(tracer.current_ctx(), "failover_complete",
                                {"gfile": list(handle.gfile),
                                 "failed_ss": failed_ss,
                                 "new_ss": replacement.ss_site})
                tracer.annotate(span, "new_ss", replacement.ss_site)
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
            status_label = type(exc).__name__
            raise
        finally:
            handle.failover_busy = None
            busy.resolve(None)
            if span is not None:
                tracer.finish(span, prev, status=status_label)
        return None

    def _failover_write(self, handle: UsHandle) -> Generator:
        """Re-home an open-for-modification handle to a surviving replica.

        The read failover above substitutes a copy of the same committed
        version; a *writer* additionally carries uncommitted state — the
        shadow pages, a staged truncate, staged attribute patches — that
        died with the old SS.  Reopen via the CSS with the reopen flag (so
        our own write token is re-homed, not refused as a second writer),
        then replay the open's uncommitted operations against the new SS
        in protocol order: truncate first, then attribute patches, then
        every retained page image.
        """
        if handle.failover_busy is not None and not handle.failover_busy.done:
            yield handle.failover_busy
            return None
        busy = self.site.sim.create_future(f"failover-w:{handle.gfile}")
        handle.failover_busy = busy
        self.site.metrics.count("fs.write_failovers")
        tracer = self.site.tracer
        failed_ss = handle.ss_site
        span = prev = None
        status_label = "ok"
        if tracer is not None and tracer.enabled:
            tracer.event_on(tracer.current_ctx(), "write_failover",
                            {"gfile": list(handle.gfile),
                             "failed_ss": failed_ss})
            span, prev = tracer.begin("fs.write_failover", "fs", self.sid,
                                      attrs={"gfile": list(handle.gfile),
                                             "failed_ss": failed_ss})
        try:
            replacement = yield from self.open_gfile(
                handle.gfile, handle.mode, reopen=True,
                known_vv=handle.attrs["version"])
            self.us.pop(replacement.hid, None)
            handle.ss_site = replacement.ss_site
            # Keep our staged view of the attributes (size, patches); only
            # the committed base version comes from the replacement — it
            # may already include the lost SS's commit if the replica
            # pulled it before the failure.
            handle.attrs["version"] = replacement.attrs["version"]
            handle.attrs["storage_sites"] = \
                replacement.attrs["storage_sites"]
            handle.last_page = -2
            handle.run_len = 0
            staged = yield from self._replay_staged(handle)
            if tracer is not None and tracer.enabled:
                tracer.event_on(tracer.current_ctx(),
                                "write_failover_complete",
                                {"gfile": list(handle.gfile),
                                 "failed_ss": failed_ss,
                                 "new_ss": handle.ss_site,
                                 "restaged": staged})
                tracer.annotate(span, "new_ss", handle.ss_site)
                tracer.annotate(span, "restaged", staged)
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
            status_label = type(exc).__name__
            raise
        finally:
            handle.failover_busy = None
            busy.resolve(None)
            if span is not None:
                tracer.finish(span, prev, status=status_label)
        return None

    def _replay_staged(self, handle: UsHandle) -> Generator:
        """Replay the open's uncommitted operations against its (possibly
        re-homed) SS in protocol order: truncate first, then attribute
        patches, then every retained page image.  Used after a write
        failover and after a commit refused for lost page writes — in both
        cases the SS holds none of the staged state any more.  Returns the
        replayed page count."""
        handle.pages_sent = 0
        handle.pending_writes = {}
        handle.pending_size = 0
        if handle.staged_truncate:
            if handle.ss_site == self.sid:
                yield from self._ss_truncate(self.ss[handle.gfile])
            else:
                yield from self.site.rpc(handle.ss_site, "fs.truncate",
                                         {"gfile": handle.gfile})
        if handle.staged_attrs:
            if handle.ss_site == self.sid:
                self.ss[handle.gfile].shadow.set_attrs(
                    **handle.staged_attrs)
            else:
                yield from self.site.rpc(
                    handle.ss_site, "fs.set_attrs",
                    {"gfile": handle.gfile,
                     "patch": dict(handle.staged_attrs)})
        staged = dict(handle.staged_pages)
        for page in sorted(staged):
            yield from self._put_page(handle, page, staged[page],
                                      handle.size)
        return len(staged)

    def _read_rpc(self, handle: UsHandle, op: str, payload: dict) -> Generator:
        """Supervised read-path RPC to the handle's storage site.

        When the SS crashes or the circuit closes mid-call (also: the SS
        restarted and lost its open state, or refuses as stale), fail over
        to the next available pack copy and retry — bounded by
        ``cost.rpc_retries`` with deterministic exponential backoff.  Only
        the read path retries; commit/write paths abort the shadow instead
        (a blind retry could double-apply).  With supervision off this is a
        plain unsupervised call, the paper's behaviour.
        """
        cost = self.cost
        # Writable handles join the supervised path only under exactly-once
        # writes: their failover must re-home the write token and re-stage
        # the shadow pages, which plain copy substitution cannot do.
        supervised = cost.supervise_remote_ops and (
            not handle.mode.writable or cost.exactly_once_writes)
        timeout = (cost.rpc_timeout or None) if supervised else None
        attempt = 0
        while True:
            try:
                result = yield from self.site.rpc(handle.ss_site, op,
                                                  payload, timeout=timeout)
                return result
            except (NetworkError, EBADF, ESTALE) as exc:
                writable = handle.mode.writable
                # A writer's budget mirrors the commit one: re-home and
                # replay make its retries safe, so it should ride out a
                # whole loss burst rather than fail the syscall.
                budget = max(2 * cost.rpc_retries, 8) if writable \
                    else max(1, cost.rpc_retries)
                if not supervised or handle.closed or attempt >= budget:
                    raise
                attempt += 1
                failed_ss = handle.ss_site
                self.site.metrics.count("fs.read_retries")
                tracer = self.site.tracer
                if tracer is not None and tracer.enabled:
                    tracer.event_on(tracer.current_ctx(), "read_retry",
                                    {"attempt": attempt, "op": op,
                                     "failed_ss": failed_ss,
                                     "error": type(exc).__name__})
                # Backoff first: gives the partition protocol time to agree
                # on the new membership before the reopen picks a copy.
                if writable:
                    yield cost.rpc_backoff * (2 ** min(attempt - 1, 4))
                else:
                    yield cost.rpc_backoff * (2 ** (attempt - 1))
                if handle.closed:
                    raise   # reconfiguration cleanup closed it meanwhile
                if handle.ss_site == failed_ss:
                    # Cleanup may have substituted a copy during the
                    # backoff; only reopen if the handle still points at
                    # the site that just failed.
                    if writable:
                        try:
                            yield from self._failover_write(handle)
                        except (NetworkError, ESTALE):
                            # Nobody reachable right now; keep burning the
                            # budget — the next lap retries the reopen.
                            continue
                    else:
                        yield from self.failover_handle(handle)

    # ------------------------------------------------------------------
    # US: read
    # ------------------------------------------------------------------

    def read(self, handle: UsHandle, offset: int, nbytes: int) -> Generator:
        if handle.closed:
            raise EBADF("read on closed handle")
        if offset < 0 or nbytes < 0:
            raise EINVAL("negative offset or length")
        size = handle.size
        end = min(offset + nbytes, size)
        if offset >= end:
            return b""
        psz = self.cost.page_size
        first, last = offset // psz, (end - 1) // psz
        if (last > first and self.cost.batch_pages > 1
                and handle.ss_site != self.sid):
            # Batched transfer: pull the whole span across the wire in
            # ceil(n / batch_pages) messages instead of one per page.
            yield from self._prefetch_pages(handle, range(first, last + 1))
        chunks: List[bytes] = []
        for page in range(first, last + 1):
            data = yield from self._get_page(handle, page)
            data = data.ljust(psz, b"\x00")
            lo = max(offset, page * psz) - page * psz
            hi = min(end, (page + 1) * psz) - page * psz
            chunks.append(data[lo:hi])
            yield from self.site.cpu(self.cost.cpu_page_copy)
        return b"".join(chunks)

    def _prefetch_pages(self, handle: UsHandle, pages) -> Generator:
        """Fetch the missing pages of a multi-page read from a remote SS
        with batched ``fs.read_pages`` requests (up to ``batch_pages`` pages
        per message).  Fills the same cache keyspace the per-page path uses,
        so ``_get_page`` then serves every page as a buffer hit."""
        gfile = handle.gfile
        committed = not handle.sync

        def key_of(page: int):
            if committed:
                return (gfile[0], gfile[1], page, "c")
            return self._page_key(gfile, page)

        missing = [p for p in pages if key_of(p) not in self.site.cache
                   and (committed or key_of(p) not in self._inflight)]
        batch = self.cost.batch_pages
        for i in range(0, len(missing), batch):
            chunk = missing[i:i + batch]
            futs = {}
            if not committed:
                # Register in-flight buffers so concurrent demand reads
                # and readaheads share these fetches instead of re-asking.
                for p in chunk:
                    fut = self.site.sim.create_future(f"fetch:{key_of(p)}")
                    self._inflight[key_of(p)] = fut
                    futs[p] = fut
            try:
                resp = yield from self._read_rpc(
                    handle, "fs.read_pages", {
                        "gfile": gfile, "pages": list(chunk),
                        "committed": committed,
                    })
            except BaseException as exc:
                for p, fut in futs.items():
                    self._inflight.pop(key_of(p), None)
                    fut.fail(exc)
                raise
            for p in chunk:
                data = resp["pages"][p]
                if not committed:
                    self._inflight.pop(key_of(p), None)
                if key_of(p) not in self.site.cache:
                    # Never overwrite newer content a concurrent local
                    # write may have produced while we were in flight.
                    self.site.cache.put(key_of(p), data)
                if p in futs:
                    futs[p].resolve(data)
        return None

    def _get_page(self, handle: UsHandle, page: int) -> Generator:
        gfile = handle.gfile
        if not handle.sync:
            # Unsynchronized interrogation reads the last *committed* state:
            # a concurrent writer's staged pages must never be seen, so
            # "directory interrogation never sees an inconsistent picture"
            # (section 2.3.4).
            data = yield from self._get_page_committed(handle, page)
            return data
        if handle.ss_site == self.sid:
            so = self.ss.get(gfile)
            if so is None:
                raise EBADF(f"no storage-site state for {gfile}")
            data = yield from self._ss_read_block(so, page)
            return data
        staged = handle.pending_writes.get(page)
        if staged is not None:
            # Write-behind (batch_writes): the handle's own staged page is
            # the newest content; it may already have been evicted from the
            # buffer cache, and the SS has not seen it yet.
            yield from self.site.cpu(self.cost.buffer_hit)
            handle.run_len = handle.run_len + 1 \
                if page == handle.last_page + 1 else 0
            handle.last_page = page
            return staged
        key = self._page_key(gfile, page)
        cached = self.site.cache.get(key)
        if cached is not None:
            yield from self.site.cpu(self.cost.buffer_hit)
            sequential = page == handle.last_page + 1
            handle.run_len = handle.run_len + 1 if sequential else 0
            handle.last_page = page
            if self.cost.readahead and sequential:
                self._maybe_readahead(handle, page + 1)
            return cached
        inflight = self._inflight.get(key)
        if inflight is not None:
            # A readahead already asked the SS for this page: sleep on the
            # same buffer instead of issuing a duplicate network read.
            data = yield inflight
            handle.run_len = handle.run_len + 1 \
                if page == handle.last_page + 1 else 0
            handle.last_page = page
            return data
        fut = self.site.sim.create_future(f"fetch:{key}")
        self._inflight[key] = fut
        try:
            data = yield from self._read_rpc(handle, "fs.read_page", {
                "gfile": gfile, "page": page,
            })
        except BaseException as exc:
            fut.fail(exc)
            raise
        finally:
            self._inflight.pop(key, None)
        if key not in self.site.cache:
            # A concurrent local write may have refreshed the page while
            # our response was in flight; never overwrite newer content.
            self.site.cache.put(key, data)
        fut.resolve(data)
        sequential = page == handle.last_page + 1
        handle.run_len = handle.run_len + 1 if sequential else 0
        handle.last_page = page
        if self.cost.readahead and sequential:
            self._maybe_readahead(handle, page + 1)
        return data

    def _maybe_readahead(self, handle: UsHandle, page: int) -> None:
        """Start fetching the adaptive readahead window from ``page`` on.

        The paper's protocol reads one page ahead; we widen the window with
        the observed sequential run length of this handle (1, 2, 3, ...)
        up to ``cost.readahead_max``, so long remote scans stream instead
        of stalling every page while random access never over-fetches.
        ``cost.readahead_window`` remains the floor: configuring it to the
        cap reproduces the old fixed-window behaviour exactly."""
        limit = self._n_pages(handle.size)
        cost = self.cost
        window = max(max(1, cost.readahead_window),
                     min(handle.run_len, cost.readahead_max))
        targets = []
        for p in range(page, min(page + window, limit)):
            key = self._page_key(handle.gfile, p)
            if key in self.site.cache or key in self._inflight:
                continue
            fut = self.site.sim.create_future(f"readahead:{key}")
            self._inflight[key] = fut
            targets.append((p, key, fut))
        if not targets:
            return
        if self.cost.batch_pages > 1 and len(targets) > 1:
            self.site.spawn(self._readahead_batch(handle, targets),
                            name=f"readahead:{handle.gfile}:{page}+")
        else:
            for p, key, fut in targets:
                self.site.spawn(self._readahead(handle, p, key, fut),
                                name=f"readahead:{handle.gfile}:{p}")

    def _readahead(self, handle: UsHandle, page: int, key, fut) -> Generator:
        try:
            data = yield from self.site.rpc(handle.ss_site, "fs.read_page", {
                "gfile": handle.gfile, "page": page,
            })
        except (NetworkError, EBADF, ESTALE, ENOENT) as exc:
            self._inflight.pop(key, None)
            fut.fail(exc)
            return
        self._inflight.pop(key, None)
        if key not in self.site.cache:   # never clobber a newer write
            self.site.cache.put(key, data)
        fut.resolve(data)

    def _readahead_batch(self, handle: UsHandle, targets) -> Generator:
        """Readahead for several pages with fs.read_pages messages."""
        batch = self.cost.batch_pages
        for i in range(0, len(targets), batch):
            chunk = targets[i:i + batch]
            try:
                resp = yield from self.site.rpc(
                    handle.ss_site, "fs.read_pages", {
                        "gfile": handle.gfile,
                        "pages": [p for p, __, __ in chunk],
                    })
            except (NetworkError, EBADF, ESTALE, ENOENT) as exc:
                for __, key, fut in chunk:
                    self._inflight.pop(key, None)
                    fut.fail(exc)
                continue
            for p, key, fut in chunk:
                data = resp["pages"][p]
                self._inflight.pop(key, None)
                if key not in self.site.cache:   # never clobber a newer write
                    self.site.cache.put(key, data)
                fut.resolve(data)

    def _get_page_committed(self, handle: UsHandle, page: int) -> Generator:
        gfile = handle.gfile
        if handle.ss_site == self.sid:
            data = yield from self._committed_block(gfile, page)
            return data
        key = (gfile[0], gfile[1], page, "c")
        cached = self.site.cache.get(key)
        if cached is not None:
            yield from self.site.cpu(self.cost.buffer_hit)
            return cached
        data = yield from self._read_rpc(handle, "fs.read_page", {
            "gfile": gfile, "page": page, "committed": True,
        })
        self.site.cache.put(key, data)
        return data

    def _committed_block(self, gfile: Gfile, page: int) -> Generator:
        """Read one last-committed page at a pack site, through the
        committed-view buffer cache (separate keyspace from the incore
        view, which may hold staged shadow pages)."""
        pack = self.local_pack(gfile[0])
        inode = pack.get_inode(gfile[1]) if pack else None
        if inode is None or not inode.has_data:
            raise ENOENT(f"{gfile} has no data at site {self.sid}")
        key = (gfile[0], gfile[1], page, "c")
        cached = self.site.cache.get(key)
        if cached is not None:
            yield from self.site.cpu(self.cost.buffer_hit)
            return cached
        blockno = inode.pages[page] if page < len(inode.pages) else None
        data = pack.read_block(blockno) if blockno is not None else b""
        self.site.cache.put(key, data)
        yield from self.site.cpu(self.cost.disk_read)
        return data

    def _ss_read_block(self, so: SsOpen, page: int) -> Generator:
        """SS-side page read through the buffer cache (section 2.3.3 steps
        a-c: find incore inode, translate logical page, read the block)."""
        key = self._page_key(so.gfile, page)
        cached = self.site.cache.get(key)
        if cached is not None:
            yield from self.site.cpu(self.cost.buffer_hit)
            return cached
        data = so.shadow.read_page(page)
        self.site.cache.put(key, data)   # atomic with the read (see apply)
        yield from self.site.cpu(self.cost.disk_read)
        return data

    def h_read_page(self, src: int, p: dict) -> Generator:
        if p.get("committed"):
            data = yield from self._committed_block(p["gfile"], p["page"])
            if src != self.sid:
                self.site.net.stats.record_pages("fs.read_page", 1)
            return data
        so = self.ss.get(p["gfile"])
        if so is None:
            raise EBADF(f"{p['gfile']} not open at storage site {self.sid}")
        data = yield from self._ss_read_block(so, p["page"])
        so.page_holders.setdefault(p["page"], set()).add(src)
        if src != self.sid:
            self.site.net.stats.record_pages("fs.read_page", 1)
        return data

    def h_read_pages(self, src: int, p: dict) -> Generator:
        """Batched network read: up to ``batch_pages`` pages in one
        request/response pair instead of a pair per page.  Page semantics
        match N ``fs.read_page`` calls exactly (same cache paths, same
        page-holder registration); only the message count changes — the
        response's wire size is still the sum of all payload bytes."""
        gfile: Gfile = p["gfile"]
        out: Dict[int, bytes] = {}
        if p.get("committed"):
            for page in p["pages"]:
                out[page] = yield from self._committed_block(gfile, page)
        else:
            so = self.ss.get(gfile)
            if so is None:
                raise EBADF(f"{gfile} not open at storage site {self.sid}")
            for page in p["pages"]:
                out[page] = yield from self._ss_read_block(so, page)
                so.page_holders.setdefault(page, set()).add(src)
        if src != self.sid:
            self.site.net.stats.record_pages("fs.read_pages", len(out))
        return {"pages": out}

    # ------------------------------------------------------------------
    # US: write
    # ------------------------------------------------------------------

    def write(self, handle: UsHandle, offset: int, data: bytes) -> Generator:
        if handle.closed:
            raise EBADF("write on closed handle")
        if not handle.mode.writable:
            raise EBADF("handle not open for modification")
        if offset < 0:
            raise EINVAL("negative offset")
        if not data:
            return 0
        psz = self.cost.page_size
        end = offset + len(data)
        old_size = handle.size
        for page in range(offset // psz, (end - 1) // psz + 1):
            page_lo = page * psz
            page_hi = page_lo + psz
            lo = max(offset, page_lo)
            hi = min(end, page_hi)
            whole_page = (lo == page_lo and
                          (hi == page_hi or hi >= old_size))
            if whole_page:
                old = b""
            else:
                # Partial page: "the old page is read from the SS using the
                # read protocol" (section 2.3.5).
                old = yield from self._get_page(handle, page)
            buf = bytearray(old.ljust(psz, b"\x00"))
            buf[lo - page_lo:hi - page_lo] = data[lo - offset:hi - offset]
            page_data = bytes(buf[:max(hi - page_lo, len(old))])
            new_size = max(old_size, hi)
            yield from self._put_page(handle, page, page_data, new_size)
            yield from self.site.cpu(self.cost.cpu_page_copy)
        handle.size = max(old_size, end)
        handle.dirty = True
        return len(data)

    def _put_page(self, handle: UsHandle, page: int, data: bytes,
                  new_size: int) -> Generator:
        gfile = handle.gfile
        if handle.ss_site == self.sid:
            so = self.ss.get(gfile)
            if so is None:
                raise EBADF(f"no storage-site state for {gfile}")
            yield from self._ss_apply_write(so, page, data, new_size,
                                            writer=self.sid)
            return
        if self.cost.exactly_once_writes:
            # Retain the image beyond the flush: write failover re-stages
            # it at the surviving replica.
            handle.staged_pages[page] = data
        self.site.cache.put(self._page_key(gfile, page), data)
        if self.cost.batch_writes:
            # Write-behind: stage the page and ship a full batch at once.
            # FIFO circuits keep delivery order, and every ordering point
            # (commit, truncate, attribute change, close) flushes first, so
            # the SS sees the same operation sequence as the per-page
            # protocol — just in fewer messages.
            handle.pending_writes[page] = data
            handle.pending_size = max(handle.pending_size, new_size)
            if len(handle.pending_writes) >= max(1, self.cost.batch_pages):
                yield from self._flush_writes(handle)
            elif (self.cost.write_flush_deadline > 0
                    and handle.flush_timer is None):
                # Adaptive flush sizing: a partial batch also ships after a
                # vtime deadline, so a slow writer's staged pages are not
                # hostage to the next ordering point.
                handle.flush_timer = self.site.sim.schedule(
                    self.cost.write_flush_deadline,
                    self._deadline_flush, handle)
            return
        # The write protocol is a single one-way message (section 2.3.5).
        yield from self.site.oneway(handle.ss_site, "fs.write_page", {
            "gfile": gfile, "page": page, "data": data, "size": new_size,
        })
        # Sender-side delivery accounting, mirroring the batched path: the
        # commit carries this count so a page lost to a closed circuit
        # fails the commit instead of silently committing a hole.
        handle.pages_sent += 1

    def _flush_writes(self, handle: UsHandle) -> Generator:
        """Ship the handle's staged pages to its remote SS in one-way
        ``fs.write_pages`` chunks of up to ``batch_pages`` pages.  A chunk
        of one page keeps the paper-exact ``fs.write_page`` message.  The
        shipped count accumulates in ``handle.pages_sent``; the batched
        commit carries it so a lost chunk can never half-commit."""
        if handle.flush_timer is not None:
            handle.flush_timer.cancel()
            handle.flush_timer = None
        while handle.flush_done is not None and not handle.flush_done.done:
            # A deadline flush is still on the wire: ordering points must
            # queue behind it so a commit never overtakes staged pages.
            yield handle.flush_done
        pending = handle.pending_writes
        if not pending:
            return None
        flush_done = self.site.sim.create_future(f"flush:{handle.gfile}")
        handle.flush_done = flush_done
        pages = sorted(pending)
        size = handle.pending_size
        handle.pending_writes = {}
        handle.pending_size = 0
        batch = max(1, self.cost.batch_pages)
        try:
            for i in range(0, len(pages), batch):
                chunk = pages[i:i + batch]
                if len(chunk) == 1:
                    yield from self.site.oneway(
                        handle.ss_site, "fs.write_page", {
                            "gfile": handle.gfile, "page": chunk[0],
                            "data": pending[chunk[0]], "size": size,
                        })
                else:
                    yield from self.site.oneway(
                        handle.ss_site, "fs.write_pages", {
                            "gfile": handle.gfile,
                            "pages": {p: pending[p] for p in chunk},
                            "size": size,
                        })
                    # Sender-side accounting: one-way messages have no
                    # response to carry the count back, and the receive
                    # handler runs after the sender's measurement window
                    # has closed.
                    self.site.net.stats.record_pages("fs.write_pages",
                                                     len(chunk))
                handle.pages_sent += len(chunk)
        finally:
            if handle.flush_done is flush_done:
                handle.flush_done = None
            flush_done.resolve(None)
        return None

    def _deadline_flush(self, handle: UsHandle) -> None:
        """Timer callback for the write_flush_deadline: ship the partial
        batch unless an ordering point got there first."""
        handle.flush_timer = None
        if (handle.closed or not handle.pending_writes or not self.site.up
                or self.us.get(handle.hid) is not handle):
            return
        self.site.spawn(self._flush_writes(handle),
                        name=f"flush-deadline:{handle.gfile}")

    def h_write_page(self, src: int, p: dict) -> Generator:
        so = self.ss.get(p["gfile"])
        if so is None:
            return None  # stale write after close; drop (low-level ack only)
        # Count before the cost yields inside _ss_apply_write so the
        # counter and the shadow state move in the same atomic step; a
        # commit handler task starting later (FIFO delivery) sees both.
        so.pages_received += 1
        yield from self._ss_apply_write(so, p["page"], p["data"], p["size"],
                                        writer=src)
        return None

    def h_write_pages(self, src: int, p: dict) -> Generator:
        """Batched one-way write: up to ``batch_pages`` staged page images
        in one message (the write-behind flush of the batched commit path).
        Page semantics match N ``fs.write_page`` messages exactly — same
        shadow writes, same per-page disk cost, same cache updates, same
        token revocations — only the per-message fixed costs (header,
        latency, packet assembly) are paid once; the wire still charges for
        the summed payload."""
        so = self.ss.get(p["gfile"])
        if so is None:
            return None  # stale write after close; drop (low-level ack only)
        pages = sorted(p["pages"])
        # Every state change for the whole batch lands in one atomic step
        # (no yields), matching _ss_apply_write's contract per page: a
        # commit or abort handler interleaving at the cost yields below
        # sees the entire batch applied, never a prefix of it.
        for page in pages:
            try:
                so.shadow.write_page(page, p["pages"][page])
            except FsError as exc:
                # A one-way write has no reply to carry the error; poison
                # the open so the commit refuses (never a silent zero page).
                so.io_error = str(exc)
                raise
            self.site.cache.put(self._page_key(so.gfile, page),
                                p["pages"][page])
        so.shadow.set_size(max(so.shadow.incore.size, p["size"]))
        so.pages_received += len(pages)
        for page in pages:
            yield from self.site.cpu(self.cost.disk_write)
            holders = so.page_holders.setdefault(page, set())
            for us in list(holders):
                if us not in (src, self.sid):
                    yield from self.site.oneway_quiet(us, "fs.invalidate", {
                        "gfile": so.gfile, "page": page,
                    })
            holders.clear()
            holders.add(src)
        return None

    def _ss_apply_write(self, so: SsOpen, page: int, data: bytes,
                        new_size: int, writer: int) -> Generator:
        # State change and cache update are one atomic step: an abort
        # interleaving at the cost-accounting yield below must not see the
        # cache repopulated with the discarded page afterwards.
        try:
            so.shadow.write_page(page, data)
        except FsError as exc:
            # The write protocol is one-way (no reply for the error to ride
            # back on, section 2.3.5): poison the open so the commit fails
            # instead of silently committing a hole.
            so.io_error = str(exc)
            raise
        so.shadow.set_size(max(so.shadow.incore.size, new_size))
        self.site.cache.put(self._page_key(so.gfile, page), data)
        yield from self.site.cpu(self.cost.disk_write)
        # Page-valid tokens: revoke every other using site's cached copy.
        holders = so.page_holders.setdefault(page, set())
        for us in list(holders):
            if us not in (writer, self.sid):
                yield from self.site.oneway_quiet(us, "fs.invalidate", {
                    "gfile": so.gfile, "page": page,
                })
        holders.clear()
        holders.add(writer)

    def h_invalidate(self, src: int, p: dict) -> Generator:
        self.site.cache.invalidate(self._page_key(p["gfile"], p["page"]))
        return None
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # US: truncate / attribute change
    # ------------------------------------------------------------------

    def truncate(self, handle: UsHandle) -> Generator:
        if not handle.mode.writable:
            raise EBADF("truncate needs a write open")
        if handle.pending_writes:
            # Staged write-behind pages are about to be dropped by the
            # truncate anyway; discarding them unsent leaves exactly the
            # post-state the per-page protocol reaches.
            handle.pending_writes.clear()
            handle.pending_size = 0
        if handle.flush_timer is not None:
            handle.flush_timer.cancel()
            handle.flush_timer = None
        if self.cost.exactly_once_writes:
            # Earlier page images are dropped by the truncate; a failover
            # replay starts from the truncate instead.
            handle.staged_pages.clear()
            handle.staged_truncate = True
        if handle.ss_site == self.sid:
            so = self.ss[handle.gfile]
            yield from self._ss_truncate(so)
        elif self.cost.exactly_once_writes and self.cost.supervise_remote_ops:
            # Failover-aware: an SS that dropped our open state after an
            # asymmetric partition answers EBADF — re-home the handle (the
            # staged truncate replays there) and retry.  Truncating twice
            # is truncating once, so duplicate delivery is safe too.
            yield from self._read_rpc(handle, "fs.truncate",
                                      {"gfile": handle.gfile})
        else:
            # Idempotent against duplicate delivery (truncating twice is
            # truncating once), so a supervised retry is safe.
            yield from self.site.supervised_rpc(
                handle.ss_site, "fs.truncate", {"gfile": handle.gfile})
        self.site.cache.invalidate_file(*handle.gfile)
        handle.size = 0
        handle.dirty = True
        return None

    def h_truncate(self, src: int, p: dict) -> Generator:
        so = self.ss.get(p["gfile"])
        if so is None:
            raise EBADF(f"{p['gfile']} not open at {self.sid}")
        yield from self._ss_truncate(so)
        return None

    def _ss_truncate(self, so: SsOpen) -> Generator:
        so.shadow.truncate()
        yield from self.site.cpu(self.cost.disk_write)
        self.site.cache.invalidate_file(*so.gfile)
        # Snapshot: concurrent readers may register page holders while the
        # invalidations below are in flight.
        holders_snapshot = {us for holders in so.page_holders.values()
                            for us in holders}
        so.page_holders.clear()
        for us in sorted(holders_snapshot):
            if us != self.sid:
                yield from self.site.oneway_quiet(us, "fs.invalidate_file",
                                                  {"gfile": so.gfile})

    def set_attrs(self, handle: UsHandle, **patch) -> Generator:
        """Stage inode-only changes (ownership, permissions...)."""
        if not handle.mode.writable:
            raise EBADF("attribute change needs a write open")
        if self.cost.exactly_once_writes:
            handle.staged_attrs.update(patch)
        if handle.ss_site == self.sid:
            self.ss[handle.gfile].shadow.set_attrs(**patch)
        else:
            # Keep the SS-side operation order of the per-page protocol:
            # staged pages precede the attribute change on the wire.
            yield from self._flush_writes(handle)
            # Absolute patches are idempotent against duplicate delivery.
            if self.cost.exactly_once_writes and self.cost.supervise_remote_ops:
                # Failover-aware like truncate: EBADF from an SS that lost
                # our open re-homes the handle and replays staged state.
                yield from self._read_rpc(handle, "fs.set_attrs",
                                          {"gfile": handle.gfile,
                                           "patch": patch})
            else:
                yield from self.site.supervised_rpc(
                    handle.ss_site, "fs.set_attrs",
                    {"gfile": handle.gfile, "patch": patch})
        handle.attrs.update(patch)
        handle.dirty = True
        return None

    def h_set_attrs(self, src: int, p: dict) -> Generator:
        so = self.ss.get(p["gfile"])
        if so is None:
            raise EBADF(f"{p['gfile']} not open at {self.sid}")
        so.shadow.set_attrs(**p["patch"])
        yield from self.site.cpu(self.cost.buffer_hit)
        return None

    # ------------------------------------------------------------------
    # Commit / abort (section 2.3.6)
    # ------------------------------------------------------------------

    def commit(self, handle: UsHandle) -> Generator:
        """Make this open's changes permanent, atomically."""
        if handle.closed:
            raise EBADF("commit on closed handle")
        if not handle.mode.writable:
            raise EBADF("commit needs a write open")
        tracer = self.site.tracer
        span = prev = None
        if tracer is not None and tracer.enabled:
            span, prev = tracer.begin("fs.commit", "fs", self.sid,
                                      attrs={"gfile": list(handle.gfile),
                                             "ss": handle.ss_site})
        status_label = "ok"
        start = self.site.sim.now
        try:
            if handle.ss_site == self.sid:
                vv = yield from self._ss_commit(handle.gfile)
            else:
                vv = yield from self._commit_remote(handle)
            handle.pages_sent = 0
            handle.dirty = False
            handle.staged_pages.clear()
            handle.staged_truncate = False
            handle.staged_attrs.clear()
            handle.attrs["version"] = vv
            return vv
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
            status_label = type(exc).__name__
            raise
        finally:
            self.site.metrics.observe("fs.commit", self.site.sim.now - start)
            if span is not None:
                tracer.finish(span, prev, status=status_label)

    def _commit_remote(self, handle: UsHandle) -> Generator:
        """Commit at a remote SS, exactly once.

        Without exactly-once writes this is the paper's single unsupervised
        ``fs.commit``.  With it, the request is stamped and retried under a
        timeout: a retry reaching the same SS replays the memoized result
        from its durable ledger (the first attempt's reply was lost, not
        its effect), and when the SS itself is gone the handle re-homes to
        a surviving replica (``_failover_write``) and commits there.  A
        timed-out attempt is *ambiguous* — it may have applied before the
        circuit closed — so the re-homed commit carries a version-vector
        floor bumped for every SS an ambiguous attempt reached: whichever
        way the ambiguity resolves, the surviving replica's version
        strictly dominates the lost one instead of diverging from it.
        """
        cost = self.cost
        payload = {"gfile": handle.gfile}
        if cost.batch_writes:
            # Flush the write-behind remainder, then tell the SS how many
            # page writes it must have received: a batch lost to a closed
            # circuit fails the commit instead of half-applying.
            yield from self._flush_writes(handle)
            payload["expected_pages"] = handle.pages_sent
        elif cost.exactly_once_writes:
            # The per-page protocol's writes are one-way with no delivery
            # guarantee either; the same commit guard applies.  The count
            # rides the header (underscore key, excluded from the wire-size
            # model) so fault-free message timing matches the paper's
            # protocol exactly.
            payload["_expected"] = handle.pages_sent
        if not (cost.exactly_once_writes and cost.supervise_remote_ops):
            vv = yield from self.site.rpc(handle.ss_site, "fs.commit",
                                          payload)
            return vv
        stamp = self.site.next_stamp()
        payload["_stamp"] = stamp
        ambiguous: Set[int] = set()
        attempt = 0
        try:
            while True:
                payload["_ack"] = self.site.stamp_ack()
                target = handle.ss_site
                try:
                    vv = yield from self.site.rpc(
                        target, "fs.commit", payload,
                        timeout=cost.rpc_timeout or None)
                    return vv
                except EWRITELOST:
                    # The SS received fewer page writes than we shipped
                    # (lost one-ways) and dropped its staged state.  Not
                    # ambiguous — the commit definitively did not apply.
                    # Replay the retained staged operations and try again.
                    if handle.closed or \
                            attempt >= max(2 * cost.rpc_retries, 8):
                        raise
                    attempt += 1
                    self.site.metrics.count("fs.commit_retries")
                    yield cost.rpc_backoff * (2 ** min(attempt - 1, 4))
                    if handle.closed:
                        raise
                    yield from self._replay_staged(handle)
                    if cost.batch_writes:
                        yield from self._flush_writes(handle)
                        payload["expected_pages"] = handle.pages_sent
                    else:
                        payload["_expected"] = handle.pages_sent
                except (NetworkError, EBADF) as exc:
                    # Budget mirrors the conflict-wait one: with replay
                    # and re-home making retries safe, the commit should
                    # ride out a whole loss burst rather than surface a
                    # transient as a failed write.
                    if handle.closed or \
                            attempt >= max(2 * cost.rpc_retries, 8):
                        raise
                    attempt += 1
                    if isinstance(exc, NetworkError):
                        # The attempt may have applied before the circuit
                        # closed; only a ledger replay or the vv floor can
                        # disambiguate.
                        ambiguous.add(target)
                    self.site.metrics.count("fs.commit_retries")
                    yield cost.rpc_backoff * (2 ** min(attempt - 1, 4))
                    if handle.closed:
                        raise
                    same_site = handle.ss_site == target
                    if same_site and isinstance(exc, NetworkError) \
                            and attempt < 2:
                        # First retry goes back to the same SS: if it is
                        # reachable again its ledger replays the result.
                        continue
                    if same_site:
                        yield from self._failover_write(handle)
                    if cost.batch_writes:
                        yield from self._flush_writes(handle)
                        payload["expected_pages"] = handle.pages_sent
                    else:
                        payload["_expected"] = handle.pages_sent
                    floor = handle.attrs["version"]
                    for s in sorted(ambiguous):
                        floor = floor.bump(s)
                    payload["vv_floor"] = floor
        finally:
            self.site.stamp_done(stamp[1])

    def abort(self, handle: UsHandle) -> Generator:
        """Undo changes back to the previous commit point."""
        if handle.closed:
            raise EBADF("abort on closed handle")
        handle.pending_writes.clear()
        handle.pending_size = 0
        handle.pages_sent = 0
        handle.staged_pages.clear()
        handle.staged_truncate = False
        handle.staged_attrs.clear()
        if handle.flush_timer is not None:
            handle.flush_timer.cancel()
            handle.flush_timer = None
        if handle.ss_site == self.sid:
            yield from self._ss_abort(handle.gfile)
        else:
            yield from self.site.rpc(handle.ss_site, "fs.abort",
                                     {"gfile": handle.gfile})
        self.site.cache.invalidate_file(*handle.gfile)
        handle.dirty = False
        inode_attrs = yield from self._fetch_attrs_anywhere(handle.gfile)
        handle.attrs = dict(inode_attrs)
        return None

    def h_commit(self, src: int, p: dict) -> Generator:
        result = yield from self._exactly_once(
            p, self._pack_ledger(p["gfile"][0]),
            lambda: self._h_commit_body(src, p))
        return result

    def _h_commit_body(self, src: int, p: dict) -> Generator:
        expected = p.get("expected_pages")
        if expected is None:
            expected = p.get("_expected")
        if expected is not None:
            so = self.ss.get(p["gfile"])
            if so is not None and so.io_error is not None:
                # A physical write failure mid-chunk also stops the staged
                # count; report the root cause (EIO from _ss_commit), not
                # the count mismatch it produced.
                pass
            elif so is not None and so.pages_received != expected:
                # One-way page writes were partially delivered (a lost
                # fs.write_page/fs.write_pages closed the circuit, and
                # this commit reopened it).  Never half-commit: drop the
                # staged state and fail the commit back to the US, which
                # replays its retained page images and retries.
                received = so.pages_received
                yield from self._ss_abort(p["gfile"])
                raise EWRITELOST(
                    f"commit of {p['gfile']} expected {expected} staged "
                    f"page writes, storage site received {received}")
        stamp = p.get("_stamp") if self.cost.exactly_once_writes else None
        vv = yield from self._ss_commit(p["gfile"], stamp=stamp,
                                        vv_floor=p.get("vv_floor"))
        return vv

    def h_abort(self, src: int, p: dict) -> Generator:
        yield from self._ss_abort(p["gfile"])
        return None

    def _ss_commit(self, gfile: Gfile, stamp: Optional[tuple] = None,
                   vv_floor: Optional[VersionVector] = None) -> Generator:
        so = self.ss.get(gfile)
        if so is None:
            raise EBADF(f"{gfile} not open at storage site {self.sid}")
        if so.io_error is not None:
            # A page write failed at the disk after its one-way message was
            # acknowledged; committing would make the hole permanent.
            detail = so.io_error
            yield from self._ss_abort(gfile)
            raise EIO(f"commit refused, staged write failed: {detail}")
        pages_changed = so.shadow.shadowed_pages
        if vv_floor is not None:
            # A re-homed commit after failover: the new version must
            # dominate every copy an ambiguous earlier attempt may have
            # committed, so the retry supersedes the lost attempt instead
            # of diverging from it.
            new_version = so.shadow.incore.version.merge(vv_floor) \
                .bump(self.sid)
            vv = so.shadow.commit(new_version=new_version,
                                  mtime=self.site.sim.now)
        else:
            vv = so.shadow.commit(mtime=self.site.sim.now)
        if stamp is not None:
            # Same atomic step as the commit itself (no yields since): the
            # durable reply memo and the applied-ops audit shadow move
            # with the inode write, so a crash can never separate "applied"
            # from "recorded" in a way that re-executes on retry.
            pack_ = self.local_pack(gfile[0])
            key = tuple(stamp)
            pack_.applied_ops[key] = pack_.applied_ops.get(key, 0) + 1
            self._pack_ledger(gfile[0]).commit(stamp[0], stamp[1], vv)
        so.pages_received = 0
        yield from self.site.cpu(self.cost.disk_write)  # the inode write
        # Committed-view pages cached before this commit are now stale.
        self.site.cache.invalidate_committed(*gfile)
        pack = self.local_pack(gfile[0])
        attrs = pack.get_inode(gfile[1]).attrs()
        yield from self._after_commit(gfile, attrs, pages_changed)
        return vv

    def _ss_abort(self, gfile: Gfile) -> Generator:
        so = self.ss.get(gfile)
        if so is None:
            raise EBADF(f"{gfile} not open at storage site {self.sid}")
        so.shadow.abort()
        so.pages_received = 0
        so.io_error = None
        self.site.cache.invalidate_file(*gfile)
        yield from self.site.cpu(self.cost.buffer_hit)
        return None

    def _after_commit(self, gfile: Gfile, attrs: dict,
                      pages: List[int]) -> Generator:
        """Notify the CSS and the other storage sites (section 2.3.6: 'As
        part of the commit operation, the SS sends messages to all the other
        SSs of that file as well as the CSS')."""
        gfs = gfile[0]
        css = self.mount.css_for(gfs)
        self._note_version(gfile, attrs["version"])
        payload = {"gfile": gfile, "attrs": attrs, "pages": pages,
                   "origin": self.sid}
        if css == self.sid:
            yield from self.h_notify(self.sid, payload)
        else:
            # Synchronous to the CSS so its latest-version knowledge is
            # current before the committing call returns.
            try:
                yield from self.site.rpc(css, "fs.notify", payload)
            except NetworkError:
                pass
        for target in self.mount.pack_sites(gfs):
            if target in (self.sid, css):
                continue
            yield from self.site.oneway_quiet(target, "fs.notify", payload)
        if attrs["deleted"]:
            yield from self._local_delete_seen(gfile, attrs)
        return None

    # ------------------------------------------------------------------
    # Commit notification / propagation intake
    # ------------------------------------------------------------------

    def h_notify(self, src: int, p: dict) -> Generator:
        gfile: Gfile = p["gfile"]
        attrs: dict = p["attrs"]
        self._note_version(gfile, attrs["version"])
        if self.mount.css.get(gfile[0]) == self.sid:
            entry = self.css_entries.get(gfile)
            if entry is not None:
                if attrs["version"].dominates(entry.latest_vv):
                    entry.latest_vv = attrs["version"].copy()
                entry.storage_sites = list(attrs["storage_sites"])
        if p.get("_recovery_reply"):
            # A holder superseded what our recovery sweep pushed: the
            # sweep's inventory snapshot went stale.  Re-reconcile from
            # fresh state (and fall through — this site may be behind too).
            recovery = getattr(self.site, "recovery", None)
            if recovery is not None:
                recovery.note_stale_sweep(gfile)
        pack = self.local_pack(gfile[0])
        if pack is None or p["origin"] == self.sid:
            # No pack here, or the commit originated at this very site (the
            # SS already holds the data).  Note: recovery sends itself
            # notifies with origin = the winning site, which must proceed.
            return None
        inode = pack.get_inode(gfile[1])
        if p.get("_scrub_placement"):
            # Anti-entropy placement repair: this pack stores data the
            # inode no longer advertises here.  The normal path below
            # returns "already current" on an equal version before ever
            # reaching the replica-drop branch, so the scrub's retire
            # request is honoured explicitly (and only when the pushed
            # attributes are at least as new as the local copy).
            if inode is not None and inode.has_data \
                    and self.sid not in attrs["storage_sites"] \
                    and attrs["version"].dominates(inode.version):
                pack.drop_data(gfile[1])
                inode.apply_attrs(attrs)
                inode.has_data = False
                self.site.cache.invalidate_file(*gfile)
            return None
        if inode is not None and inode.version.dominates(attrs["version"]):
            if p.get("_recovery") and inode.version != attrs["version"]:
                # A recovery sweep pushed a version this copy strictly
                # supersedes — its inventory raced a commit.  Answer with
                # our attributes so the sweep re-runs on fresh state;
                # dropping the stale push silently would strand every
                # other behind replica until the next membership change.
                yield from self.site.oneway_quiet(src, "fs.notify", {
                    "gfile": gfile, "attrs": inode.attrs(), "pages": None,
                    "origin": self.sid, "_recovery_reply": True})
            return None  # already current
        if attrs["deleted"]:
            yield from self._apply_remote_delete(gfile, attrs)
            return None
        if (inode is not None and inode.has_data
                and self.sid not in attrs["storage_sites"]):
            # This pack's copy was dropped (a replica move is an add
            # followed by a delete of a copy, section 2.2.1).
            pack.drop_data(gfile[1])
            inode.apply_attrs(attrs)
            inode.has_data = False
            self.site.cache.invalidate_file(*gfile)
            return None
        if inode is not None and inode.has_data \
                and not attrs["version"].dominates(inode.version):
            # Neither copy dominates (a dominant local copy returned
            # above): normal commit traffic just revealed concurrent
            # lineages — e.g. a merge installed while a writer was still
            # in flight.  A pull could only lose one side; hand the file
            # to recovery for a proper merge instead.
            recovery = getattr(self.site, "recovery", None)
            if recovery is not None:
                recovery.note_divergent_notify(gfile)
            return None
        if inode is not None and inode.has_data:
            # pages=None means "origin did not say what changed": full pull.
            self.propagator.enqueue(gfile, attrs, p.get("pages"),
                                    hint=p["origin"])
        elif self.sid in attrs["storage_sites"]:
            # A new file this pack should store: install and pull.
            pack.install_inode(dict(attrs, ino=gfile[1]), has_data=True)
            inode = pack.get_inode(gfile[1])
            inode.version = VersionVector()  # we have no pages yet
            inode.pages = []
            self.propagator.enqueue(gfile, attrs, None, hint=p["origin"])
        else:
            pack.install_inode(dict(attrs, ino=gfile[1]), has_data=False)
        return None

    def _apply_remote_delete(self, gfile: Gfile, attrs: dict) -> Generator:
        pack = self.local_pack(gfile[0])
        inode = pack.get_inode(gfile[1])
        had_data = inode is not None and inode.has_data
        if inode is None:
            pack.install_inode(dict(attrs, ino=gfile[1]), has_data=False)
        else:
            pack.drop_data(gfile[1])
            inode.apply_attrs(attrs)
            inode.has_data = False
        self.site.cache.invalidate_file(*gfile)
        yield from self.site.cpu(self.cost.disk_write)
        if had_data:
            yield from self._send_delete_seen(gfile, attrs)
        return None

    def _send_delete_seen(self, gfile: Gfile, attrs: dict) -> Generator:
        """Tell the inode's controlling pack this site has seen the delete."""
        owner = self._ino_owner_site(gfile)
        if owner is None:
            return None
        payload = {"gfile": gfile, "seen_at": self.sid,
                   "storage_sites": attrs["storage_sites"]}
        if owner == self.sid:
            yield from self.h_delete_seen(self.sid, payload)
        else:
            yield from self.site.oneway_quiet(owner, "fs.delete_seen",
                                              payload)
        return None

    def _local_delete_seen(self, gfile: Gfile, attrs: dict) -> Generator:
        pack = self.local_pack(gfile[0])
        if pack is not None:
            pack.drop_data(gfile[1])
        yield from self._send_delete_seen(gfile, attrs)
        return None

    def _ino_owner_site(self, gfile: Gfile) -> Optional[int]:
        sites = self.mount.pack_sites(gfile[0])
        idx = pack_index_of(gfile[1])
        if idx < len(sites):
            return sites[idx]
        return None

    def h_delete_seen(self, src: int, p: dict) -> Generator:
        """At the inode's controlling pack: 'when all the storage sites have
        seen the delete, the inode can be reallocated' (section 2.3.7).

        Before the number returns to the pool, every pack's tombstone entry
        for it is reaped — a reused number starts a fresh version-vector
        lineage, so stale tombstones must not linger to 'dominate' it.
        """
        gfile: Gfile = p["gfile"]
        acks = self._delete_acks.setdefault(gfile, set())
        acks.add(p["seen_at"])
        acks.add(self.sid)
        if set(p["storage_sites"]) <= acks:
            for s in self.mount.pack_sites(gfile[0]):
                if s == self.sid:
                    self._reap_local(gfile, release=True)
                else:
                    yield from self.site.oneway_quiet(s, "fs.reap",
                                                      {"gfile": gfile})
            self._delete_acks.pop(gfile, None)
        return None

    def h_scrub_orphan(self, src: int, p: dict) -> Generator:
        """Retire an inode that never became (or is no longer) referenced
        by any directory entry: create-compensation and fsck repair.

        Fans out to every pack site so data-holding replicas are retired
        too, not just the copy at the site that noticed the orphan.
        """
        gfile: Gfile = p["gfile"]
        pack = self.local_pack(gfile[0])
        inode = pack.get_inode(gfile[1]) if pack else None
        if inode is not None:
            inode.deleted = True
            pack.drop_data(gfile[1])
            self._reap_local(gfile, release=pack.owns_ino(gfile[1]))
        if p.get("fanout", True):
            for s in self.mount.pack_sites(gfile[0]):
                if s != self.sid:
                    yield from self.site.oneway_quiet(
                        s, "fs.scrub_orphan",
                        {"gfile": gfile, "fanout": False})
        return None

    def h_reap(self, src: int, p: dict) -> Generator:
        self._reap_local(p["gfile"], release=False)
        return None
        yield  # pragma: no cover

    def _reap_local(self, gfile: Gfile, release: bool) -> None:
        pack = self.local_pack(gfile[0])
        if pack is not None:
            inode = pack.get_inode(gfile[1])
            if inode is not None and inode.deleted:
                if release and pack.owns_ino(gfile[1]):
                    pack.release_inode(gfile[1])
                else:
                    pack.inodes.pop(gfile[1], None)
        self.known_latest.pop(gfile, None)
        self.css_entries.pop(gfile, None)
        so = self.ss.get(gfile)
        if so is not None and so.total_users == 0:
            self.ss.pop(gfile, None)   # never reuse a dead incarnation
        self.site.cache.invalidate_file(*gfile)

    # ------------------------------------------------------------------
    # Close (section 2.3.3)
    # ------------------------------------------------------------------

    def close(self, handle: UsHandle) -> Generator:
        if handle.closed:
            raise EBADF("double close")
        # "Closing a file commits it" (section 2.3.6).
        commit_error = None
        if handle.mode.writable and handle.dirty:
            try:
                yield from self.commit(handle)
            except FsError as exc:
                # The SS refused (e.g. a staged page hit a disk write
                # error): undo to the previous commit point — which also
                # drops locally cached pages of the never-committed data —
                # finish the close, and surface the failure through the
                # close like Unix's deferred write error.  Communication
                # failures are NOT caught: reconfiguration cleanup owns
                # those (the descriptor is marked in error instead).
                commit_error = exc
                yield from self.abort(handle)
        handle.closed = True
        self.us.pop(handle.hid, None)
        gfile = handle.gfile
        if handle.ss_site == self.sid:
            yield from self._ss_close_local(gfile, handle.mode, self.sid)
        elif handle.sync:
            if self.cost.exactly_once_writes and self.cost.supervise_remote_ops:
                # Stamped: fs.close decrements open counts, so a duplicate
                # delivery must replay, not double-close.  If the SS is
                # gone for good, release the CSS registration directly —
                # the commit (if any) is already durable, and leaving the
                # write token claimed would starve every later writer
                # until reconfiguration cleanup notices.
                try:
                    yield from self.site.supervised_rpc(
                        handle.ss_site, "fs.close",
                        {"gfile": gfile, "mode": handle.mode},
                        idempotent=False, once=True)
                except NetworkError:
                    self.site.metrics.count("fs.close_rescues")
                    css = self.mount.css_for(gfile[0])
                    payload = {"gfile": gfile, "us": self.sid,
                               "mode": handle.mode}
                    if css == self.sid:
                        yield from self.h_css_ss_close(self.sid, payload)
                    else:
                        # The release must actually land: a leaked write
                        # token starves every later writer with EBUSY
                        # until reconfiguration notices.  Supervised and
                        # stamped (note_close decrements reader counts),
                        # best-effort beyond that.
                        try:
                            yield from self.site.supervised_rpc(
                                lambda: self.mount.css_for(gfile[0]),
                                "fs.css_ss_close", payload,
                                idempotent=False, once=True)
                        except (NetworkError, FsError):
                            yield from self.site.oneway_quiet(
                                css, "fs.css_ss_close", payload)
            else:
                yield from self.site.rpc(handle.ss_site, "fs.close", {
                    "gfile": gfile, "mode": handle.mode,
                })
            self.site.cache.invalidate_file(*gfile)
        else:
            yield from self.site.oneway_quiet(handle.ss_site,
                                              "fs.close_unsync",
                                              {"gfile": gfile})
            self.site.cache.invalidate_file(*gfile)
        if commit_error is not None:
            raise commit_error
        return None

    def h_close(self, src: int, p: dict) -> Generator:
        yield from self._exactly_once(
            p, self.op_ledger,
            lambda: self._ss_close_local(p["gfile"], p["mode"], src))
        return None

    def h_close_unsync(self, src: int, p: dict) -> Generator:
        so = self.ss.get(p["gfile"])
        if so is not None:
            so.drop_user(src, Mode.UNSYNC)
            self._maybe_drop_ss(p["gfile"], so)
        return None
        yield  # pragma: no cover

    def _ss_close_local(self, gfile: Gfile, mode: Mode, us: int) -> Generator:
        so = self.ss.get(gfile)
        if so is None:
            return None
        so.drop_user(us, mode)
        if mode.synchronized:
            css = self.mount.css_for(gfile[0])
            payload = {"gfile": gfile, "us": us, "mode": mode}
            if css == self.sid:
                yield from self.h_css_ss_close(self.sid, payload)
            elif self.cost.exactly_once_writes \
                    and self.cost.supervise_remote_ops:
                # Stamped so a duplicate delivery replays instead of
                # double-decrementing open counts; the fault-free path
                # stays the paper's synchronous one-pair notification.
                payload["_stamp"] = self.site.next_stamp()
                payload["_ack"] = self.site.stamp_ack()
                try:
                    yield from self.site.rpc(
                        css, "fs.css_ss_close", payload,
                        timeout=self.cost.rpc_timeout or None)
                    self.site.stamp_done(payload["_stamp"][1])
                except NetworkError:
                    # The release must land or the writer token leaks
                    # and every later open gets EBUSY until
                    # reconfiguration.  Spawned: the close reply must
                    # not wait out a loss burst's worth of retries.
                    self.site.spawn(
                        self._notify_css_close(gfile, payload),
                        name=f"css-close:{gfile}@{self.sid}")
            else:
                try:
                    yield from self.site.rpc(css, "fs.css_ss_close", payload)
                except NetworkError:
                    pass  # reconfiguration will rebuild the CSS state
        self._maybe_drop_ss(gfile, so)
        return None

    def _notify_css_close(self, gfile: Gfile, payload: dict) -> Generator:
        """Background retry of a close notification whose first attempt
        timed out; reuses the caller's stamp so the CSS replays rather
        than re-executes if the first attempt actually landed."""
        try:
            yield from self.site.supervised_rpc(
                lambda: self.mount.css_for(gfile[0]),
                "fs.css_ss_close", payload, idempotent=False, once=True)
        except (NetworkError, FsError):
            pass  # reconfiguration will rebuild the CSS state
        finally:
            self.site.stamp_done(payload["_stamp"][1])
        return None

    def h_css_ss_close(self, src: int, p: dict) -> Generator:
        start = self.site.sim.now
        yield from self._exactly_once(
            p, self.op_ledger, lambda: self._css_ss_close_body(p))
        if self.site.load.enabled:
            self.site.load.note_css(p["gfile"][0],
                                    self.site.sim.now - start)
        return None

    def _css_ss_close_body(self, p: dict) -> Generator:
        entry = self.css_entries.get(p["gfile"])
        if entry is not None:
            entry.note_close(p["us"], p["mode"])
            if not entry.in_use:
                # State data that "might affect its next synchronization
                # policy decision" is updated; idle entries may be dropped.
                self.css_entries.pop(p["gfile"], None)
        return None
        yield  # pragma: no cover

    def _maybe_drop_ss(self, gfile: Gfile, so: SsOpen) -> None:
        if so.total_users == 0:
            if so.shadow.dirty:
                so.shadow.abort()
            self.ss.pop(gfile, None)

    def h_validate_open(self, src: int, p: dict) -> Generator:
        """US side of leaked-handle detection: does this site still hold
        open handles for the file?"""
        gfile = tuple(p["gfile"])
        n = sum(1 for h in self.us.values()
                if tuple(h.gfile) == gfile and not h.closed)
        return {"open": n}
        yield  # pragma: no cover

    def validate_ss_entry(self, gfile: Gfile) -> Generator:
        """A propagation pull has been deferring on a local SS entry for a
        long time: verify each registered using site still holds the file
        open, and drop registrations whose US does not.

        The close protocol tolerates a lost ``fs.close``: the US falls
        back to releasing the CSS write token directly, so later opens
        proceed — but the SS's own open entry stays counted, and while it
        exists every propagation pull into this replica defers.  With
        unchanged membership nothing else ever collects it (section 5.6
        cleanup only reaps entries whose US left the partition), so the
        replica would stay stale forever."""
        so = self.ss.get(gfile)
        if so is None:
            return None
        for us in sorted(set(list(so.users) + list(so.unsync_users))):
            if self.ss.get(gfile) is not so:
                return None   # closed/reaped while we were validating
            if us == self.sid:
                alive = any(tuple(h.gfile) == tuple(gfile) and not h.closed
                            for h in self.us.values())
            else:
                try:
                    reply = yield from self.site.rpc(
                        us, "fs.validate_open", {"gfile": gfile},
                        timeout=(self.cost.rpc_timeout or None)
                        if self.cost.supervise_remote_ops else None)
                    alive = bool(reply["open"])
                except (NetworkError, FsError):
                    continue   # unreachable: membership cleanup owns that
            if not alive:
                if so.writer == us and so.shadow.dirty:
                    so.shadow.abort()
                    self.site.cache.invalidate_file(*gfile)
                so.drop_site(us)
                self.site.metrics.count("fs.ss_leak_repairs")
        self._maybe_drop_ss(gfile, so)
        return None

    # ------------------------------------------------------------------
    # File creation (section 2.3.7)
    # ------------------------------------------------------------------

    def h_create_file(self, src: int, p: dict) -> Generator:
        result = yield from self._exactly_once(
            p, self._pack_ledger(p["gfs"]),
            lambda: self._create_file_body(src, p))
        return result

    def _create_file_body(self, src: int, p: dict) -> Generator:
        """At the primary storage site: allocate an inode from the local
        pack's pool (the placeholder protocol) and commit version 1."""
        pack = self.local_pack(p["gfs"])
        if pack is None:
            raise ESTALE(f"site {self.sid} holds no pack of fg {p['gfs']}")
        inode = pack.alloc_inode(ftype=p["ftype"], owner=p["owner"],
                                 perms=p["perms"],
                                 storage_sites=p["storage_sites"])
        inode.version = VersionVector().bump(self.sid)
        inode.mtime = self.site.sim.now
        gfile = (p["gfs"], inode.ino)
        attrs = inode.attrs()
        stamp = p.get("_stamp") if self.cost.exactly_once_writes else None
        if stamp is not None:
            # Recorded in the same atomic step as the allocation: a retry
            # arriving after a crash replays these attrs instead of
            # allocating a second (orphan) inode.
            key = tuple(stamp)
            pack.applied_ops[key] = pack.applied_ops.get(key, 0) + 1
            self._pack_ledger(p["gfs"]).commit(stamp[0], stamp[1], attrs)
        yield from self.site.cpu(self.cost.disk_write)
        # Let the other packs learn of the new file.
        yield from self._after_commit(gfile, attrs, [])
        return attrs

    # ------------------------------------------------------------------
    # Propagation pull service (section 2.3.6: data is "pulled")
    # ------------------------------------------------------------------

    def h_pull_open(self, src: int, p: dict) -> Generator:
        inode = self.local_inode(p["gfile"])
        if inode is None or not inode.has_data or inode.deleted:
            raise ENOENT(f"{p['gfile']} has no data at site {self.sid}")
        yield from self.site.cpu(self.cost.buffer_hit)
        return inode.attrs()

    def h_pull_manifest(self, src: int, p: dict) -> Generator:
        """One RPC replacing N ``fs.pull_open`` round trips after a heal:
        the attributes (version vector included) of every requested file
        this site can serve as a propagation source.  Files it cannot
        vouch for (no data here, or deleted) are omitted from the reply —
        the puller falls back to the paper's per-file ``fs.pull_open`` for
        those, exactly as if this site had answered ENOENT."""
        out: Dict[Gfile, dict] = {}
        for gfile in p["gfiles"]:
            inode = self.local_inode(gfile)
            if inode is None or not inode.has_data or inode.deleted:
                continue
            yield from self.site.cpu(self.cost.buffer_hit)
            out[gfile] = inode.attrs()
        return {"files": out}

    def h_pull_read(self, src: int, p: dict) -> Generator:
        """Serve one *committed* page to a propagation pull.

        Deliberately bypasses the buffer cache: the cache at a storage site
        holds the incore (possibly staged, uncommitted) page content for
        open-for-modification files, while propagation must only ever see
        the last committed version.
        """
        data = yield from self._committed_block(p["gfile"], p["page"])
        if src != self.sid:
            self.site.net.stats.record_pages("fs.pull_read", 1)
        return data

    def h_pull_read_range(self, src: int, p: dict) -> Generator:
        """Serve a contiguous run of *committed* pages to a propagation
        pull in one message (the batched counterpart of fs.pull_read)."""
        gfile: Gfile = p["gfile"]
        out: Dict[int, bytes] = {}
        for page in p["pages"]:
            out[page] = yield from self._committed_block(gfile, page)
        if src != self.sid:
            self.site.net.stats.record_pages("fs.pull_read_range", len(out))
        return {"pages": out}

    # ------------------------------------------------------------------
    # Recovery support
    # ------------------------------------------------------------------

    def h_invalidate_file(self, src: int, p: dict) -> Generator:
        self.site.cache.invalidate_file(*p["gfile"])
        return None
        yield  # pragma: no cover

    def _check_merge_base(self, gfile: Gfile, inode, base_vv) -> None:
        """Refuse a merged install whose base snapshot went stale.

        Recovery computed ``base_vv`` from an inventory taken earlier; if
        this copy has committed past (or diverged from) that snapshot in
        the meantime, stamping the merge result with ``base_vv.bump()``
        would reuse a version vector another content already carries —
        equal vectors, different bytes, undetectable divergence.  The
        caller retries against a fresh inventory.
        """
        if inode is not None and not base_vv.dominates(inode.version):
            raise ESTALE(
                f"merge base for {gfile} is stale: local copy at "
                f"{inode.version}, merge snapshot covered {base_vv}")

    def h_install_merged(self, src: int, p: dict) -> Generator:
        """Install a reconciled file version (recovery's write path).

        The content arrives whole; it is committed under the merged version
        vector bumped at this site, so it dominates every divergent copy and
        normal propagation distributes it.
        """
        gfile: Gfile = p["gfile"]
        pack = self.local_pack(gfile[0])
        if pack is None:
            raise ESTALE(f"site {self.sid} holds no pack of fg {gfile[0]}")
        if gfile in self.ss or self.propagator.is_pulling(gfile):
            # A writer or a propagation pull is active right now; its
            # commit would interleave with ours.  Recovery retries with a
            # fresh inventory once the activity drains.
            raise EBUSY(f"merge install of {gfile} raced local activity")
        inode = pack.get_inode(gfile[1])
        self._check_merge_base(gfile, inode, p["base_vv"])
        if inode is None:
            pack.install_inode({
                "ino": gfile[1], "ftype": p["ftype"], "size": 0,
                "owner": p["owner"], "perms": p["perms"],
                "nlink": p["nlink"], "version": VersionVector(),
                "deleted": False, "storage_sites": p["storage_sites"],
                "conflict": False, "mtime": self.site.sim.now,
            }, has_data=True)
        shadow = ShadowFile(pack, gfile[1])
        shadow.truncate()
        data: bytes = p["data"]
        psz = self.cost.page_size
        for page in range((len(data) + psz - 1) // psz):
            shadow.write_page(page, data[page * psz:(page + 1) * psz])
            yield from self.site.cpu(self.cost.disk_write)
        shadow.set_attrs(size=len(data), ftype=p["ftype"], owner=p["owner"],
                         perms=p["perms"], nlink=p["nlink"],
                         storage_sites=list(p["storage_sites"]),
                         deleted=False, conflict=False, has_data=True)
        # Page writes yielded above: re-check in the same atomic step as
        # the commit that nothing moved the file while we staged.
        try:
            self._check_merge_base(gfile, pack.get_inode(gfile[1]),
                                   p["base_vv"])
        except FsError:
            shadow.abort()
            raise
        merged_vv = p["base_vv"].bump(self.sid)
        shadow.commit(new_version=merged_vv, mtime=self.site.sim.now)
        yield from self.site.cpu(self.cost.disk_write)
        self.site.cache.invalidate_file(*gfile)
        attrs = pack.get_inode(gfile[1]).attrs()
        # pages=None: receivers must full-pull (the whole content changed).
        yield from self._after_commit(gfile, attrs, None)
        return attrs

    def h_patch_nlink(self, src: int, p: dict) -> Generator:
        """Set a file's link count in place, version vector untouched.

        The recovery census repairs conflicted files this way: their
        divergent copies refuse the locked open/commit repair path, but
        the live directory entries naming them are unambiguous, and a
        plain metadata patch (like the conflict flag itself) cannot widen
        the divergence.
        """
        inode = self.local_inode(p["gfile"])
        if inode is not None and not inode.deleted:
            inode.nlink = p["nlink"]
            self.site.cache.invalidate_file(*p["gfile"])
        return None
        yield  # pragma: no cover

    def h_mark_conflict(self, src: int, p: dict) -> Generator:
        """Flag divergent copies so normal access attempts fail
        (section 4.6); the flag clears when a reconciled version arrives."""
        inode = self.local_inode(p["gfile"])
        if inode is not None:
            inode.conflict = True
            self.site.cache.invalidate_file(*p["gfile"])
        return None
        yield  # pragma: no cover

    def h_pack_inventory(self, src: int, p: dict) -> Generator:
        pack = self.local_pack(p["gfs"])
        if pack is None:
            return {}
        yield from self.site.cpu(self.cost.disk_read)
        return pack.inventory()

    def h_scrub_digest(self, src: int, p: dict) -> Generator:
        """Anti-entropy summary: the pack inventory plus a digest of each
        data-holding inode's committed content, so the scrub can detect
        copies whose version vectors agree but whose bytes do not.  The
        reply is a superset of ``fs.pack_inventory``'s shape — the scrub
        reuses it wherever recovery expects an inventory."""
        from repro.fs.scrub import committed_digest
        pack = self.local_pack(p["gfs"])
        if pack is None:
            return {}
        summary = {}
        blocks_read = 0
        for ino, inode in pack.inodes.items():
            digest = None
            if inode.has_data and not inode.deleted:
                digest = committed_digest(pack, ino, self.cost.page_size)
                blocks_read += max(1, len(inode.pages))
            summary[ino] = {"attrs": inode.attrs(),
                            "has_data": inode.has_data,
                            "digest": digest}
        yield from self.site.cpu(self.cost.disk_read * max(1, blocks_read))
        return summary

    def h_css_rebuild(self, src: int, p: dict) -> Generator:
        """Report local open-file state so a new CSS can reconstruct its
        lock table after reconfiguration (section 5.6)."""
        gfs = p["gfs"]
        report = []
        for handle in self.us.values():
            if handle.gfile[0] == gfs and handle.sync and not handle.closed:
                report.append({"gfile": handle.gfile,
                               "mode": handle.mode,
                               "us": self.sid,
                               "ss": handle.ss_site})
        yield from self.site.cpu(self.cost.buffer_hit)
        return report
