"""Pathname searching (paper section 2.3.4) and hidden directories (2.4.1).

Pathnames start from the root or the process's working directory.  Each
directory on the path is opened with an internal unsynchronized read — no
global locking — and its pages are read "in the same manner as other file
data pages", which is why remote directories cost network messages here.

Hidden directories implement context-sensitive names: when pathname search
hits an inode of type HIDDEN_DIR, the directory "is examined for a match
with the process's context rather than the next component of the pathname".
An escape (``hidden_visible``) makes hidden directories visible so specific
entries can be examined and manipulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.errors import EINVAL, ENOENT, ENOTDIR, NetworkError
from repro.fs.directory import DirView, decode_entries
from repro.fs.types import Gfile, Mode, ROOT_GFS
from repro.storage.inode import FileType
from repro.storage.pack import ROOT_INO

ROOT_GFILE: Gfile = (ROOT_GFS, ROOT_INO)


@dataclass
class Leaf:
    """A resolved final path component."""

    gfile: Gfile
    ftype: FileType


class PathMixin:
    """Pathname machinery; mixed into :class:`FsManager`."""

    # -- attribute fetch -------------------------------------------------

    def _fetch_attrs_anywhere(self, gfile: Gfile) -> Generator:
        """Inode attributes from the freshest convenient place: the local
        pack if present, else any reachable pack site of the filegroup."""
        inode = self.local_inode(gfile)
        if inode is not None:
            yield from self.site.cpu(self.cost.buffer_hit)
            return inode.attrs()
        unreachable = []
        for s in self.mount.pack_sites(gfile[0]):
            if s == self.sid:
                continue
            try:
                attrs = yield from self.site.rpc(s, "fs.fetch_attrs",
                                                 {"gfile": gfile})
                return attrs
            except ENOENT:
                continue
            except NetworkError:
                unreachable.append(s)
        if unreachable and self._any_believed_up(unreachable):
            # Transient: a pack site believed up was cut off mid-exchange.
            # A NetworkError lets supervised callers retry; an ENOENT here
            # would turn a circuit blip into a phantom missing file.  Pack
            # sites already declared gone stay ENOENT (a filegroup isolated
            # in another partition really is unavailable, not in flux).
            raise NetworkError(f"no pack site for {gfile} reachable")
        raise ENOENT(f"gfile {gfile}: no pack site reachable")

    # -- directory reading -------------------------------------------------

    def _dir_cache_version(self, gfile: Gfile) -> Generator:
        """The version vector a name-cache hit must match to be usable, or
        None when the cache must be bypassed.

        Mirrors exactly the authority the uncached interrogation would
        consult: a clean local committed copy is served without informing
        the CSS (§2.3.4), so its version is the truth here; otherwise the
        CSS's merged latest-version knowledge decides (it is updated
        synchronously by every commit, §2.3.6), so a remote commit is
        visible before the next lookup returns.
        """
        inode = self.local_inode(gfile)
        recovery = self.site.recovery
        if inode is not None:
            if (inode.has_data and not inode.deleted and not inode.conflict
                    and not self.propagator.is_pending(gfile)
                    and not (recovery is not None and recovery.needs(gfile))):
                heard = self.known_latest.get(gfile)
                if heard is not None and not inode.version.dominates(heard):
                    return None   # a newer commit was announced: revalidate
                yield from self.site.cpu(self.cost.buffer_hit)
                return inode.version
            return None
        css = self.mount.css_for(gfile[0])
        try:
            out = yield from self.site.rpc(css, "fs.dir_version",
                                           {"gfile": gfile})
        except (ENOENT, NetworkError):
            return None
        if out["deleted"] or out["conflict"]:
            return None
        return out["version"]

    def h_dir_version(self, src: int, p: dict) -> Generator:
        """CSS service for name-cache validation: the latest committed
        version this CSS knows of, merged from its local inode and every
        commit notification heard so far."""
        gfile: Gfile = p["gfile"]
        attrs = yield from self._css_local_attrs(gfile)
        latest = attrs["version"]
        heard = self.known_latest.get(gfile)
        if heard is not None:
            latest = latest.merge(heard)
        yield from self.site.cpu(self.cost.buffer_hit)
        return {"version": latest, "deleted": attrs["deleted"],
                "conflict": attrs["conflict"]}

    def _negative_lookup(self, gfile: Gfile, name: str) -> Generator:
        """Validated cached-ENOENT probe: True iff ``name`` was absent from
        exactly the committed directory version the authority (the same one
        the positive cache consults) reports right now."""
        nc = self.site.name_cache
        if not nc.peek_negative(gfile, name):
            return False
        version = yield from self._dir_cache_version(gfile)
        if version is None:
            return False
        return nc.get_negative(gfile, name, version)

    def _negative_fill(self, gfile: Gfile, name: str) -> None:
        """Remember a lookup miss, keyed to the directory version the just
        -decoded entries were verified against.  If that verification
        failed (no positive entry landed), the absence proof is skipped —
        a negative entry must never outlive its version check."""
        nc = self.site.name_cache
        cached = nc.peek(gfile)
        if cached is not None:
            nc.put_negative(gfile, name, cached.version)

    def _name_cache_lookup(self, gfile: Gfile) -> Generator:
        """Validated name-cache probe; returns the entries or None."""
        nc = self.site.name_cache
        cached = nc.peek(gfile)
        if cached is None:
            nc.stats.misses += 1
            return None
        version = yield from self._dir_cache_version(gfile)
        if version is None:
            nc.stats.misses += 1
            return None
        entries = nc.get(gfile, version)
        if entries is None:
            return None
        yield from self.site.cpu(self.cost.buffer_hit)
        return entries

    def _name_cache_fill(self, gfile: Gfile, handle, entries) -> Generator:
        """Install decoded entries, but only when the committed version
        they correspond to can be verified.

        Version vectors are bumped by every commit, so 'version unchanged
        across the read' proves the pages all belong to that version.
        """
        nc = self.site.name_cache
        version = handle.attrs.get("version")
        if version is None:
            return None
        if handle.ss_site == self.sid:
            inode = self.local_inode(gfile)
            if (inode is not None and inode.has_data and not inode.deleted
                    and not inode.conflict and inode.version == version):
                nc.put(gfile, version, entries)
            return None
        try:
            attrs = yield from self.site.rpc(handle.ss_site,
                                             "fs.fetch_attrs",
                                             {"gfile": gfile})
        except (ENOENT, NetworkError):
            return None
        if (attrs["version"] == version and not attrs["deleted"]
                and not attrs["conflict"]):
            nc.put(gfile, version, entries)
        return None

    def read_dir_entries(self, gfile: Gfile) -> Generator:
        """Read and decode one directory via an unsynchronized open.

        A multi-page interrogation can race a commit and tear (half old
        pages, half new); the codec detects the tear and the read retries
        against the fresh committed state.  Each individual entry operation
        is atomic, so a clean decode is a consistent picture (§2.3.4).

        With ``CostModel.name_cache`` on, a validated cache hit skips the
        whole open/read/decode/close cycle.
        """
        use_cache = self.cost.name_cache
        if use_cache:
            cached = yield from self._name_cache_lookup(gfile)
            if cached is not None:
                return cached
        last_error: Optional[Exception] = None
        for attempt in range(8):
            handle = yield from self.open_gfile(gfile, Mode.UNSYNC)
            try:
                if handle.attrs["ftype"] not in (FileType.DIRECTORY,
                                                 FileType.HIDDEN_DIR):
                    raise ENOTDIR(f"gfile {gfile}")
                data = yield from self.read(handle, 0, handle.size)
            finally:
                yield from self.close(handle)
            try:
                entries = decode_entries(data)
            except ValueError as exc:
                last_error = exc
                self.site.cache.invalidate_file(*gfile)
                yield 1.0 + attempt
                continue
            yield from self.site.cpu(self.cost.cpu_dir_entry * max(
                1, len(entries)))
            if use_cache:
                yield from self._name_cache_fill(gfile, handle, entries)
            return entries
        raise EINVAL(f"directory {gfile} unreadable after retries: "
                     f"{last_error}")

    # -- walking -----------------------------------------------------------

    def _start_dir(self, proc, path: str) -> Gfile:
        if path.startswith("/"):
            return ROOT_GFILE
        if proc is not None and getattr(proc, "cwd", None) is not None:
            return proc.cwd
        return ROOT_GFILE

    def _split(self, path: str) -> List[str]:
        if not isinstance(path, str) or not path:
            raise EINVAL(f"bad path {path!r}")
        return [c for c in path.split("/") if c and c != "."]

    def walk(self, proc, path: str,
             follow_leaf_hidden: bool = True) -> Generator:
        """Resolve a pathname.

        Returns ``(parent_gfile, leaf_name, leaf)`` where ``leaf`` is a
        :class:`Leaf` or None when the final component does not exist.
        For the root itself, ``parent_gfile`` and ``leaf_name`` are None.
        """
        current = self._start_dir(proc, path)
        comps = self._split(path)
        if not comps:
            return None, None, Leaf(current, FileType.DIRECTORY)
        if self.cost.pathname_shipping:
            result = yield from self._walk_shipped(
                proc, current, comps, follow_leaf_hidden)
            return result
        result = yield from self._walk_from(proc, current, comps, 0,
                                            follow_leaf_hidden)
        return result

    def _walk_from(self, proc, current: Gfile, comps: List[str],
                   start_index: int,
                   follow_leaf_hidden: bool) -> Generator:
        """The component-by-component interrogation loop (section 2.3.4)."""
        path = "/".join(comps)
        hidden_visible = bool(proc and getattr(proc, "hidden_visible", False))

        i = start_index
        parent: Optional[Gfile] = None
        while i < len(comps):
            comp = comps[i]
            last = (i == len(comps) - 1)
            if comp == "..":
                current = yield from self._dotdot(current)
                if last:
                    return None, None, Leaf(current, FileType.DIRECTORY)
                i += 1
                continue
            if self.cost.name_cache:
                absent = yield from self._negative_lookup(current, comp)
                if absent:
                    if last:
                        return current, comp, None
                    raise ENOENT(f"{comp!r} in path {path!r}")
            entries = yield from self.read_dir_entries(current)
            view = DirView(entries)
            entry = view.lookup(comp)
            if entry is None:
                if self.cost.name_cache:
                    self._negative_fill(current, comp)
                if last:
                    return current, comp, None
                raise ENOENT(f"{comp!r} in path {path!r}")
            child: Gfile = (current[0], entry.ino)
            ftype = entry.ftype
            # Mount crossing: descend into the mounted filegroup's root.
            crossed = self.mount.crossing(child)
            if crossed is not None:
                child = crossed
                ftype = FileType.DIRECTORY
            # Hidden directory: substitute the per-process context match.
            if ftype is FileType.HIDDEN_DIR and not hidden_visible and (
                    not last or follow_leaf_hidden):
                parent = child
                child, ftype = yield from self._resolve_hidden(proc, child)
                if last:
                    return parent, comp, Leaf(child, ftype)
            if last:
                return current, comp, Leaf(child, ftype)
            if ftype not in (FileType.DIRECTORY, FileType.HIDDEN_DIR):
                raise ENOTDIR(f"{comp!r} in path {path!r}")
            parent = current
            current = child
            i += 1
        raise AssertionError("unreachable")

    def _dotdot(self, current: Gfile) -> Generator:
        """One step up, handling filegroup-root crossings."""
        if current[1] == ROOT_INO:
            mount_point = self.mount.parent_of_root(current[0])
            if mount_point is None:
                return current  # '/..' is '/'
            current = mount_point
        entries = yield from self.read_dir_entries(current)
        view = DirView(entries)
        entry = view.lookup("..")
        if entry is None:
            return current
        return (current[0], entry.ino)

    def _resolve_hidden(self, proc, hidden: Gfile) -> Generator:
        """Pick the entry matching the process's context (section 2.4.1)."""
        context = list(getattr(proc, "hidden_context", []) or []) if proc \
            else []
        entries = yield from self.read_dir_entries(hidden)
        view = DirView(entries)
        for ctx_name in context:
            entry = view.lookup(ctx_name)
            if entry is not None:
                child: Gfile = (hidden[0], entry.ino)
                crossed = self.mount.crossing(child)
                if crossed is not None:
                    return crossed, FileType.DIRECTORY
                return child, entry.ftype
        raise ENOENT(f"no context match in hidden directory {hidden} "
                     f"(context={context})")

    # -- pathname shipping (the section 2.3.4 extension) ----------------------

    def _walk_shipped(self, proc, current: Gfile, comps: List[str],
                      follow_leaf_hidden: bool) -> Generator:
        """Resolve by shipping partial pathnames: expand locally as far as
        possible, then hand the remainder to a site storing the next
        directory; resume on return (the SS for each intermediate directory
        can differ)."""
        context = list(getattr(proc, "hidden_context", []) or []) \
            if proc else []
        hidden_visible = bool(proc and getattr(proc, "hidden_visible",
                                               False))
        i = 0
        for __ in range(64):   # progress guard
            out = yield from self._ship_expand_local(
                context, hidden_visible, current, comps, i,
                follow_leaf_hidden)
            if out["st"] == "done":
                return out["parent"], out["name"], out["leaf"]
            if out["st"] == "error":
                raise out["exc"]
            current, i = out["current"], out["i"]
            attrs = yield from self._fetch_attrs_anywhere(current)
            targets = [s for s in attrs["storage_sites"] if s != self.sid]
            if not targets:
                break   # nobody to ship to: interrogate page by page
            try:
                out = yield from self.site.rpc(targets[0], "fs.walk_path", {
                    "current": current, "comps": comps, "i": i,
                    "hidden_context": context,
                    "hidden_visible": hidden_visible,
                    "follow_leaf_hidden": follow_leaf_hidden,
                })
            except NetworkError:
                break
            if out["st"] == "done":
                return out["parent"], out["name"], out["leaf"]
            if out["st"] == "error":
                raise out["exc"]
            if (out["current"], out["i"]) == (current, i):
                break   # the remote made no progress either: fall back
            current, i = out["current"], out["i"]
        result = yield from self._walk_from(proc, current, comps, i,
                                            follow_leaf_hidden)
        return result

    def h_walk_path(self, src: int, p: dict) -> Generator:
        """Serve a shipped partial pathname: expand over local directories
        and return either the answer or the resume point."""
        out = yield from self._ship_expand_local(
            list(p["hidden_context"]), p["hidden_visible"],
            tuple(p["current"]), list(p["comps"]), p["i"],
            p["follow_leaf_hidden"])
        return out

    def _local_dir_entries(self, gfile: Gfile) -> Generator:
        """Committed entries of a directory stored cleanly at this site, or
        None when expansion here cannot continue."""
        pack = self.site.packs.get(gfile[0])
        inode = pack.get_inode(gfile[1]) if pack else None
        if (inode is None or not inode.has_data or inode.deleted
                or inode.conflict
                or self.propagator.is_pending(gfile)
                or (self.site.recovery is not None
                    and self.site.recovery.needs(gfile))):
            return None
        if inode.ftype not in (FileType.DIRECTORY, FileType.HIDDEN_DIR):
            raise ENOTDIR(f"gfile {gfile}")
        if self.cost.name_cache:
            # Parity with the uncached path: this function serves the local
            # committed copy, so its version is the validation authority.
            cached = self.site.name_cache.get(gfile, inode.version)
            if cached is not None:
                yield from self.site.cpu(self.cost.buffer_hit)
                return cached
        psz = self.cost.page_size
        from repro.fs.directory import decode_entries as _decode
        for attempt in range(8):
            version_before = inode.version
            size = inode.size
            chunks = []
            for page in range((size + psz - 1) // psz):
                data = yield from self._committed_block(gfile, page)
                chunks.append(data.ljust(psz, b"\x00"))
            try:
                entries = _decode(b"".join(chunks)[:size])
            except ValueError:
                entries = None
            inode = self.site.packs[gfile[0]].get_inode(gfile[1])
            if inode is None or not inode.has_data or inode.deleted:
                return None
            if entries is not None and inode.version == version_before:
                yield from self.site.cpu(self.cost.cpu_dir_entry
                                         * max(1, len(entries)))
                if self.cost.name_cache:
                    # The stability check above proved every page belongs
                    # to version_before: safe to remember the decode.
                    self.site.name_cache.put(gfile, version_before, entries)
                return entries
            self.site.cache.invalidate_file(*gfile)
            yield 1.0 + attempt    # torn by a concurrent commit: retry
        return None   # persistently contended: let the caller fall back

    def _ship_expand_local(self, context, hidden_visible, current: Gfile,
                           comps: List[str], i: int,
                           follow_leaf_hidden: bool) -> Generator:
        """Expand components while every needed directory is local."""
        path = "/".join(comps)

        def stuck():
            return {"st": "continue", "current": current, "i": i}

        def err(exc):
            return {"st": "error", "exc": exc}

        while i < len(comps):
            comp = comps[i]
            last = (i == len(comps) - 1)
            if comp == "..":
                up = current
                if up[1] == ROOT_INO:
                    mount_point = self.mount.parent_of_root(up[0])
                    if mount_point is None:
                        if last:
                            return {"st": "done", "parent": None,
                                    "name": None,
                                    "leaf": Leaf(up, FileType.DIRECTORY)}
                        i += 1
                        continue
                    up = mount_point
                entries = yield from self._local_dir_entries(up)
                if entries is None:
                    return stuck()
                parent_entry = DirView(entries).lookup("..")
                current = (up[0], parent_entry.ino) if parent_entry else up
                if last:
                    return {"st": "done", "parent": None, "name": None,
                            "leaf": Leaf(current, FileType.DIRECTORY)}
                i += 1
                continue
            try:
                entries = yield from self._local_dir_entries(current)
            except ENOTDIR:
                return err(ENOTDIR(f"{comp!r} in path {path!r}"))
            if entries is None:
                return stuck()
            entry = DirView(entries).lookup(comp)
            if entry is None:
                if last:
                    return {"st": "done", "parent": current, "name": comp,
                            "leaf": None}
                return err(ENOENT(f"{comp!r} in path {path!r}"))
            child: Gfile = (current[0], entry.ino)
            ftype = entry.ftype
            crossed = self.mount.crossing(child)
            if crossed is not None:
                child = crossed
                ftype = FileType.DIRECTORY
            if ftype is FileType.HIDDEN_DIR and not hidden_visible and (
                    not last or follow_leaf_hidden):
                hidden_entries = yield from self._local_dir_entries(child)
                if hidden_entries is None:
                    return stuck()
                view = DirView(hidden_entries)
                match = None
                for ctx_name in context:
                    match = view.lookup(ctx_name)
                    if match is not None:
                        break
                if match is None:
                    return err(ENOENT(
                        f"no context match in hidden directory {child} "
                        f"(context={context})"))
                hidden_parent = child
                child = (child[0], match.ino)
                ftype = match.ftype
                crossed = self.mount.crossing(child)
                if crossed is not None:
                    child = crossed
                    ftype = FileType.DIRECTORY
                if last:
                    return {"st": "done", "parent": hidden_parent,
                            "name": comp, "leaf": Leaf(child, ftype)}
            if last:
                return {"st": "done", "parent": current, "name": comp,
                        "leaf": Leaf(child, ftype)}
            if ftype not in (FileType.DIRECTORY, FileType.HIDDEN_DIR):
                return err(ENOTDIR(f"{comp!r} in path {path!r}"))
            current = child
            i += 1
        raise AssertionError("unreachable")

    # -- public conveniences -------------------------------------------------

    def resolve_gfile(self, proc, path: str,
                      follow_leaf_hidden: bool = True) -> Generator:
        """Path to ``(gfile, ftype)``; raises ENOENT when missing."""
        __, name, leaf = yield from self.walk(
            proc, path, follow_leaf_hidden=follow_leaf_hidden)
        if leaf is None:
            raise ENOENT(path if name is None else f"{name!r} in {path!r}")
        return leaf.gfile, leaf.ftype

    def stat(self, proc, path: str) -> Generator:
        gfile, __ = yield from self.resolve_gfile(proc, path)
        attrs = yield from self._fetch_attrs_anywhere(gfile)
        return attrs
