"""Pull-based update propagation (paper section 2.3.6).

"A queue of propagation requests is kept by the kernel at each site and a
kernel process services the queue.  Propagation is done by 'pulling' the
data ...  When each page arrives, the buffer that contains it is renamed and
sent out to secondary storage ...  Note also that this propagation-in
procedure uses the standard commit mechanism, so if contact is lost with the
site containing the newer version, the local site is still left with a
coherent, complete copy of the file, albeit still out of date."

With ``CostModel.pull_manifest`` on, a backlog of queued requests (a
recovery sweep after a partition heal sends one ``fs.notify`` per behind
file) is serviced as a batch: one ``fs.pull_manifest`` RPC per source
replaces that source's per-file ``fs.pull_open`` round trips, and up to
``pull_pipeline`` per-file pulls run concurrently.  Any file the manifest
cannot vouch for falls back to the paper's per-file protocol, and every
pull still installs through the standard shadow-page commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.errors import EIO, FsError, NetworkError
from repro.fs.types import Gfile
from repro.sim.sync import SimQueue
from repro.storage.shadow import ShadowFile
from repro.storage.version_vector import VersionVector

_ATTR_FIELDS = ("size", "owner", "perms", "nlink", "ftype",
                "storage_sites", "mtime", "conflict")

_MAX_DEFERRALS = 20
_DEFER_DELAY = 25.0
_VALIDATE_AFTER = 5   # deferrals before probing for a leaked SS handle


@dataclass
class PropStats:
    pulls: int = 0
    pages_pulled: int = 0
    delta_pulls: int = 0
    full_pulls: int = 0
    skipped: int = 0
    deferred: int = 0
    failed: int = 0
    range_requests: int = 0     # batched fs.pull_read_range messages issued
    pipelined_rounds: int = 0   # rounds with >1 range request in flight
    manifest_requests: int = 0  # fs.pull_manifest RPCs issued
    manifest_hits: int = 0      # per-file fs.pull_open round trips avoided
    sync_waits: int = 0         # sequential round-trip waits in the pull path


@dataclass
class _Request:
    gfile: Gfile
    attrs: dict
    pages: Optional[List[int]]    # None forces a full pull
    hint: int                     # site that announced the new version
    deferrals: int = 0


class Propagator:
    """Per-site kernel process that brings local copies up to date."""

    def __init__(self, fs):
        self.fs = fs
        self.site = fs.site
        self.queue = SimQueue(self.site.sim,
                              name=f"prop@{self.site.site_id}")
        self._pending: Set[Gfile] = set()
        # Replication-lag accounting (ISSUE 10): first-enqueue vtime per
        # pending file.  Pure bookkeeping — read by the load gauges and a
        # metrics histogram, never by the pull protocol itself.
        self._enqueued: Dict[Gfile, float] = {}
        # Files whose pull is in flight right now: storage-site opens must
        # not snapshot the pack mid-pull (they would later commit over it).
        self._pulling: Set[Gfile] = set()
        self._task = None
        self.stats = PropStats()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._task is None or self._task.finished:
            self._task = self.site.spawn(self._run(),
                                         name=f"propagator@{self.site.site_id}")

    def reset(self) -> None:
        """Crash: queued requests are volatile (recovery re-derives them).

        The queue is recreated: the dead kernel process may have left a
        stale getter registered, which would otherwise swallow the first
        request enqueued after restart.
        """
        self.queue = SimQueue(self.site.sim,
                              name=f"prop@{self.site.site_id}")
        self._pending.clear()
        self._enqueued.clear()
        self._pulling.clear()   # in-flight pull tasks died with the site
        self._task = None

    def is_pending(self, gfile: Gfile) -> bool:
        return gfile in self._pending

    def pending(self) -> List[Gfile]:
        """Files queued (or mid-pull) for propagation, sorted — the public
        accessor used by inspection and the metrics registry."""
        return sorted(self._pending)

    def is_pulling(self, gfile: Gfile) -> bool:
        return gfile in self._pulling

    @property
    def idle(self) -> bool:
        return not self._pending

    # -- replication-lag accounting (ISSUE 10) ------------------------------

    def lag_ages(self) -> List[float]:
        """Replication lag of each still-pending file: virtual time since
        its first enqueue, in pending-set order (sorted by gfile)."""
        now = self.site.sim.now
        return [round(now - self._enqueued[g], 6)
                for g in sorted(self._pending) if g in self._enqueued]

    def _retire(self, gfile: Gfile, outcome: str) -> None:
        """A request left the pending set.  ``pulled`` / ``skipped`` /
        ``failed`` are terminal: the enqueue timestamp is dropped, and a
        completed pull records its replication lag (first-enqueue vtime →
        committed vtime).  ``requeued`` keeps the timestamp so the
        eventual pull measures the full lag."""
        self._pending.discard(gfile)
        if outcome == "requeued":
            return
        enqueued = self._enqueued.pop(gfile, None)
        if outcome == "pulled" and enqueued is not None \
                and self.site.cost.load_accounting:
            self.site.metrics.observe("prop.lag",
                                      self.site.sim.now - enqueued)

    # -- intake -------------------------------------------------------------

    def enqueue(self, gfile: Gfile, attrs: dict,
                pages: Optional[List[int]], hint: int) -> None:
        if gfile not in self._pending:
            self._enqueued[gfile] = self.site.sim.now
        self._pending.add(gfile)
        self.queue.put(_Request(gfile=gfile, attrs=attrs,
                                pages=pages, hint=hint))
        self.start()

    # -- the kernel process ----------------------------------------------------

    def _run(self) -> Generator:
        while True:
            req = yield from self.queue.get()
            if self.fs.cost.pull_manifest and len(self.queue):
                batch = [req] + self.queue.drain()
                yield from self._service_batch(batch)
                continue
            yield from self._service_one(req)

    def _service_one(self, req: _Request) -> Generator:
        try:
            yield from self._service(req)
        except (NetworkError, EIO):
            # EIO here is a *physical write* failure installing pulled
            # pages: the shadow already rolled back to the coherent old
            # copy.  Dropping the request would strand this replica stale
            # forever (no later membership change re-derives it), so a
            # transient disk fault gets the same bounded retry as contact
            # loss.
            self._retry_later(req)
        except FsError:
            self.stats.failed += 1
            self._pulling.discard(req.gfile)
            self._retire(req.gfile, "failed")
            self._retire_placeholder(req.gfile)

    def _retry_later(self, req: _Request) -> None:
        """Contact lost mid-pull: the shadow mechanism already left a
        coherent old copy.  Retry later — the source (or another holder)
        may come back; the recovery sweep also covers us at the next
        membership change."""
        self.stats.failed += 1
        self._pulling.discard(req.gfile)
        req.deferrals += 1
        if req.deferrals <= _MAX_DEFERRALS:
            self.site.sim.schedule(_DEFER_DELAY * req.deferrals,
                                   self.queue.put, req)
        else:
            self._retire(req.gfile, "failed")
            self._retire_placeholder(req.gfile)

    def _retire_placeholder(self, gfile: Gfile) -> None:
        """A pull permanently given up must not strand an empty-vv
        placeholder inode.

        A recovery notify can install an inode entry ahead of the data it
        advertises; if every source then vanishes, the placeholder has no
        pages, no committed history (empty version vector) and no
        directory entry pointing at it — fsck counts it as an orphan and
        an anti-entropy scrub would try to spread it.  Only such
        never-filled placeholders are retired; any copy with committed
        history stays, coherent and merely out of date."""
        fs = self.fs
        if gfile in fs.ss:
            return
        pack = fs.local_pack(gfile[0])
        inode = pack.get_inode(gfile[1]) if pack else None
        if inode is None or inode.has_data or inode.pages:
            return
        if inode.version.total() != 0:
            return
        pack.inodes.pop(gfile[1], None)
        self.site.cache.invalidate_file(*gfile)

    def _defer(self, req: _Request) -> None:
        """The file is busy locally; retry once the activity drains."""
        req.deferrals += 1
        self.stats.deferred += 1
        if req.deferrals == _VALIDATE_AFTER:
            # A genuinely active open drains in a couple of delays; one
            # stuck this long is likely a leaked SS registration (its
            # fs.close lost in a burst — nothing else collects it while
            # membership holds).  Ask each registered US whether it still
            # has the file open and drop the dead registrations.
            self.site.spawn(self.fs.validate_ss_entry(req.gfile),
                            name=f"ss-validate:{req.gfile}")
        if req.deferrals <= _MAX_DEFERRALS:
            self.site.sim.schedule(_DEFER_DELAY, self.queue.put, req)
        else:
            self._retire(req.gfile, "failed")

    def _precheck(self, req: _Request) -> str:
        """'skip' (nothing to pull into), 'defer' (busy locally), or
        'pull'."""
        fs = self.fs
        gfile = req.gfile
        pack = fs.local_pack(gfile[0])
        inode = pack.get_inode(gfile[1]) if pack else None
        if inode is None:
            return "skip"
        if (inode.deleted or not inode.has_data) and \
                self.site.site_id not in req.attrs["storage_sites"]:
            # Not a resurrection target; nothing to pull into.
            return "skip"
        target_vv: VersionVector = req.attrs["version"]
        if inode.version.dominates(target_vv):
            return "skip"
        if inode.version.conflicts(target_vv):
            # Divergent histories cannot be propagated over; recovery's
            # type-specific merge handles this (section 4).
            return "skip"
        if gfile in fs.ss:
            # The file is open locally; retry once the activity drains.
            return "defer"
        return "pull"

    def _service(self, req: _Request) -> Generator:
        verdict = self._precheck(req)
        if verdict == "skip":
            self.stats.skipped += 1
            self._retire(req.gfile, "skipped")
            return None
        if verdict == "defer":
            self._defer(req)
            return None
        pack = self.fs.local_pack(req.gfile[0])
        before = self.stats.pulls
        yield from self._pull(req, pack, pack.get_inode(req.gfile[1]).version)
        self._retire(req.gfile,
                     "pulled" if self.stats.pulls > before else "requeued")
        return None

    # -- manifest batch service (CostModel.pull_manifest) ------------------

    def _service_batch(self, batch: List[_Request]) -> Generator:
        """Service a drained queue backlog with one ``fs.pull_manifest``
        round trip per source site and up to ``pull_pipeline`` per-file
        pulls in flight.  Each file keeps the serial path's retry/defer
        policy; only the round-trip count changes."""
        pull: List[_Request] = []
        chosen: Dict[Gfile, _Request] = {}
        for req in batch:
            verdict = self._precheck(req)
            if verdict == "skip":
                self.stats.skipped += 1
                self._retire(req.gfile, "skipped")
            elif verdict == "defer":
                self._defer(req)
            else:
                prev = chosen.get(req.gfile)
                if prev is None:
                    chosen[req.gfile] = req
                    pull.append(req)
                elif req.attrs["version"].dominates(prev.attrs["version"]):
                    # Duplicate notifies for one file: pull the newest
                    # announced version once, not the file twice at once.
                    pull[pull.index(prev)] = req
                    chosen[req.gfile] = req
                else:
                    self.stats.skipped += 1
        if not pull:
            return None
        by_hint: Dict[int, List[_Request]] = {}
        for req in pull:
            by_hint.setdefault(req.hint, []).append(req)
        manifests: Dict[int, Dict[Gfile, dict]] = {}
        for hint in sorted(by_hint):
            self.stats.manifest_requests += 1
            self.stats.sync_waits += 1
            try:
                resp = yield from self._rpc(hint, "fs.pull_manifest", {
                    "gfiles": [r.gfile for r in by_hint[hint]],
                })
            except (FsError, NetworkError):
                continue   # per-file fs.pull_open fallback below
            manifests[hint] = resp["files"]
        depth = max(1, self.fs.cost.pull_pipeline)
        for i in range(0, len(pull), depth):
            wave = pull[i:i + depth]
            tasks = [self.site.spawn(
                self._pull_task(req, manifests.get(req.hint, {})),
                name=f"manifestpull:{req.gfile}") for req in wave]
            rounds = yield self.site.sim.gather([t.done for t in tasks],
                                                label="manifestwave")
            # The wave's pulls run concurrently: its critical path is the
            # *deepest* member's sequential round count, not their sum.
            self.stats.sync_waits += max(
                [r for r in rounds if r] + [1])
        return None

    def _pull_task(self, req: _Request,
                   manifest: Dict[Gfile, dict]) -> Generator:
        """One file's pull inside a manifest wave, wrapped in the same
        error policy the serial kernel process applies.  Returns the
        number of sequential round-trip waits the pull performed, so the
        wave accounting above can take the max across the wave."""
        source = None
        attrs = manifest.get(req.gfile)
        if attrs is not None and attrs["version"].dominates(
                req.attrs["version"]):
            source = (req.hint, attrs)
            self.stats.manifest_hits += 1
        waits = [0]
        try:
            pack = self.fs.local_pack(req.gfile[0])
            inode = pack.get_inode(req.gfile[1]) if pack else None
            if inode is None:
                self.stats.skipped += 1
                self._retire(req.gfile, "skipped")
                return waits[0]
            before = self.stats.pulls
            yield from self._pull(req, pack, inode.version,
                                  manifest_source=source, waits=waits)
            self._retire(req.gfile, "pulled" if self.stats.pulls > before
                         else "requeued")
        except (NetworkError, EIO):
            # Same policy as _service_one: a transient disk-write fault
            # must not permanently abandon convergence.
            self._retry_later(req)
        except FsError:
            self.stats.failed += 1
            self._pulling.discard(req.gfile)
            self._retire(req.gfile, "failed")
            self._retire_placeholder(req.gfile)
        return waits[0]


    def _rpc(self, dst: int, op: str, payload: dict) -> Generator:
        """Pull-protocol RPC with the supervised per-op timeout backstop.
        Timeouts are NetworkErrors (unified contract), so every existing
        retry/fallback path in this module handles them unchanged."""
        cost = self.fs.cost
        timeout = (cost.rpc_timeout or None) if cost.supervise_remote_ops \
            else None
        result = yield from self.site.rpc(dst, op, payload, timeout=timeout)
        return result

    # -- the pull itself ----------------------------------------------------

    def _count_wait(self, waits: Optional[List[int]]) -> None:
        """One sequential round-trip wait.  Serial pulls count straight
        into the stats; pulls inside a manifest wave accumulate into the
        wave's ``waits`` sink, which the wave reduces with ``max`` (its
        members wait concurrently, not back to back)."""
        if waits is None:
            self.stats.sync_waits += 1
        else:
            waits[0] += 1

    def _pull(self, req: _Request, pack, local_vv: VersionVector,
              manifest_source: Optional[Tuple[int, dict]] = None,
              waits: Optional[List[int]] = None) -> Generator:
        """Internally open the file at a site with the latest version and
        page the changes (or the whole file) across."""
        fs = self.fs
        gfile = req.gfile
        if manifest_source is not None:
            # The manifest already vouched for the source's version: the
            # per-file fs.pull_open round trip is unnecessary.
            source, remote_attrs = manifest_source
        else:
            source, remote_attrs = yield from self._open_source(req, waits)
        target_vv = remote_attrs["version"]
        if local_vv.dominates(target_vv):
            self.stats.skipped += 1
            return None

        # Delta pull is only sound when the remote version is exactly one
        # commit (originated at the announcing site) ahead of our copy, and
        # the file did not shrink (shrinks need the page list rebuilt).
        psz = fs.cost.page_size
        n_pages = (remote_attrs["size"] + psz - 1) // psz
        local_inode = pack.get_inode(req.gfile[1])
        delta_ok = (fs.cost.delta_propagation
                    and req.pages is not None
                    and remote_attrs["version"] == req.attrs["version"]
                    and target_vv == local_vv.bump(req.hint)
                    and local_inode is not None
                    and not local_inode.deleted
                    and local_inode.has_data
                    and n_pages >= len(local_inode.pages))
        pull_pages = (sorted(p for p in req.pages if p < n_pages)
                      if delta_ok else list(range(n_pages)))
        if delta_ok:
            self.stats.delta_pulls += 1
        else:
            self.stats.full_pulls += 1

        shadow = ShadowFile(pack, gfile[1])
        self._pulling.add(gfile)
        try:
            if not delta_ok:
                shadow.truncate()
            yield from self._pull_pages(source, gfile, pull_pages, shadow,
                                        waits)
            if gfile in fs.ss:
                # A local open slipped in before the pull gate existed (or
                # via an unsynchronized path): committing now would be
                # clobbered by that open's stale shadow.  Defer instead.
                shadow.abort()
                req.deferrals += 1
                self.stats.deferred += 1
                if req.deferrals <= _MAX_DEFERRALS:
                    self._pending.add(gfile)
                    self.site.sim.schedule(_DEFER_DELAY, self.queue.put, req)
                return None
            shadow.set_attrs(**{k: remote_attrs[k] for k in _ATTR_FIELDS})
            # Pulling a live version resurrects a locally-tombstoned copy
            # (the undo-delete of section 4.4 rule d).
            shadow.set_attrs(deleted=False, has_data=True)
            shadow.commit(new_version=target_vv.copy(),
                          mtime=remote_attrs["mtime"])
        except BaseException:
            shadow.abort()   # coherent, complete, out-of-date copy remains
            raise
        finally:
            self._pulling.discard(gfile)
        self.site.cache.invalidate_file(*gfile)
        self.stats.pulls += 1
        return None

    def _pull_pages(self, source: int, gfile: Gfile, pages: List[int],
                    shadow: ShadowFile,
                    waits: Optional[List[int]] = None) -> Generator:
        """Page the data across from ``source`` into ``shadow``.

        The paper's protocol is one ``fs.pull_read`` round trip per page.
        With ``batch_pages`` > 1 the pages travel in ``fs.pull_read_range``
        chunks, and with ``pull_pipeline`` > 1 several chunk requests are
        kept in flight at once — the source reads the next chunk off its
        disk while earlier ones are on the wire.  Pages are still written
        to secondary storage here in file order, so the shadow-commit
        invariant (a coherent copy survives any failure) is untouched.
        """
        fs = self.fs
        batch = max(1, fs.cost.batch_pages)
        depth = max(1, fs.cost.pull_pipeline)
        if batch == 1 and depth == 1:
            for page in pages:
                self._count_wait(waits)
                data = yield from self._rpc(source, "fs.pull_read", {
                    "gfile": gfile, "page": page,
                })
                shadow.write_page(page, data)
                yield from self.site.cpu(fs.cost.disk_write)
                self.stats.pages_pulled += 1
            return None
        chunks = [pages[i:i + batch] for i in range(0, len(pages), batch)]
        for r in range(0, len(chunks), depth):
            in_flight = chunks[r:r + depth]
            tasks = [self.site.spawn(self._fetch_chunk(source, gfile, chunk),
                                     name=f"pullrange:{gfile}")
                     for chunk in in_flight]
            if len(tasks) > 1:
                self.stats.pipelined_rounds += 1
            self._count_wait(waits)
            results = yield self.site.sim.gather(
                [t.done for t in tasks], label=f"pullround:{gfile}")
            for fetched in results:
                for page in sorted(fetched):
                    shadow.write_page(page, fetched[page])
                    yield from self.site.cpu(fs.cost.disk_write)
                    self.stats.pages_pulled += 1
        return None

    def _fetch_chunk(self, source: int, gfile: Gfile,
                     chunk: List[int]) -> Generator:
        """Fetch one chunk of committed pages; ``{page: data}``."""
        if len(chunk) == 1 and self.fs.cost.batch_pages == 1:
            data = yield from self._rpc(source, "fs.pull_read", {
                "gfile": gfile, "page": chunk[0],
            })
            return {chunk[0]: data}
        self.stats.range_requests += 1
        resp = yield from self._rpc(source, "fs.pull_read_range", {
            "gfile": gfile, "pages": list(chunk),
        })
        return resp["pages"]

    def _open_source(self, req: _Request,
                     waits: Optional[List[int]] = None) -> Generator:
        """Find a site holding the (at least) announced version."""
        fs = self.fs
        candidates = [req.hint] + [
            s for s in req.attrs["storage_sites"]
            if s not in (req.hint, self.site.site_id)]
        last_exc: Optional[Exception] = None
        for cand in candidates:
            self._count_wait(waits)
            try:
                attrs = yield from self._rpc(cand, "fs.pull_open",
                                                 {"gfile": req.gfile})
            except (FsError, NetworkError) as exc:
                last_exc = exc
                continue
            if attrs["version"].dominates(req.attrs["version"]):
                return cand, attrs
        raise last_exc or NetworkError("no propagation source available")
