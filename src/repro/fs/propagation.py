"""Pull-based update propagation (paper section 2.3.6).

"A queue of propagation requests is kept by the kernel at each site and a
kernel process services the queue.  Propagation is done by 'pulling' the
data ...  When each page arrives, the buffer that contains it is renamed and
sent out to secondary storage ...  Note also that this propagation-in
procedure uses the standard commit mechanism, so if contact is lost with the
site containing the newer version, the local site is still left with a
coherent, complete copy of the file, albeit still out of date."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Set

from repro.errors import FsError, NetworkError
from repro.fs.types import Gfile
from repro.sim.sync import SimQueue
from repro.storage.shadow import ShadowFile
from repro.storage.version_vector import VersionVector

_ATTR_FIELDS = ("size", "owner", "perms", "nlink", "ftype",
                "storage_sites", "mtime", "conflict")

_MAX_DEFERRALS = 20
_DEFER_DELAY = 25.0


@dataclass
class PropStats:
    pulls: int = 0
    pages_pulled: int = 0
    delta_pulls: int = 0
    full_pulls: int = 0
    skipped: int = 0
    deferred: int = 0
    failed: int = 0
    range_requests: int = 0     # batched fs.pull_read_range messages issued
    pipelined_rounds: int = 0   # rounds with >1 range request in flight


@dataclass
class _Request:
    gfile: Gfile
    attrs: dict
    pages: Optional[List[int]]    # None forces a full pull
    hint: int                     # site that announced the new version
    deferrals: int = 0


class Propagator:
    """Per-site kernel process that brings local copies up to date."""

    def __init__(self, fs):
        self.fs = fs
        self.site = fs.site
        self.queue = SimQueue(self.site.sim,
                              name=f"prop@{self.site.site_id}")
        self._pending: Set[Gfile] = set()
        # Files whose pull is in flight right now: storage-site opens must
        # not snapshot the pack mid-pull (they would later commit over it).
        self._pulling: Set[Gfile] = set()
        self._task = None
        self.stats = PropStats()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._task is None or self._task.finished:
            self._task = self.site.spawn(self._run(),
                                         name=f"propagator@{self.site.site_id}")

    def reset(self) -> None:
        """Crash: queued requests are volatile (recovery re-derives them).

        The queue is recreated: the dead kernel process may have left a
        stale getter registered, which would otherwise swallow the first
        request enqueued after restart.
        """
        self.queue = SimQueue(self.site.sim,
                              name=f"prop@{self.site.site_id}")
        self._pending.clear()
        self._task = None

    def is_pending(self, gfile: Gfile) -> bool:
        return gfile in self._pending

    def is_pulling(self, gfile: Gfile) -> bool:
        return gfile in self._pulling

    @property
    def idle(self) -> bool:
        return not self._pending

    # -- intake -------------------------------------------------------------

    def enqueue(self, gfile: Gfile, attrs: dict,
                pages: Optional[List[int]], hint: int) -> None:
        self._pending.add(gfile)
        self.queue.put(_Request(gfile=gfile, attrs=attrs,
                                pages=pages, hint=hint))
        self.start()

    # -- the kernel process ----------------------------------------------------

    def _run(self) -> Generator:
        while True:
            req = yield from self.queue.get()
            try:
                yield from self._service(req)
            except NetworkError:
                # Contact lost mid-pull: the shadow mechanism already left a
                # coherent old copy.  Retry later — the source (or another
                # holder) may come back; the recovery sweep also covers us
                # at the next membership change.
                self.stats.failed += 1
                self._pulling.discard(req.gfile)
                req.deferrals += 1
                if req.deferrals <= _MAX_DEFERRALS:
                    self.site.sim.schedule(_DEFER_DELAY * req.deferrals,
                                           self.queue.put, req)
                else:
                    self._pending.discard(req.gfile)
            except FsError:
                self.stats.failed += 1
                self._pulling.discard(req.gfile)
                self._pending.discard(req.gfile)

    def _service(self, req: _Request) -> Generator:
        fs = self.fs
        gfile = req.gfile
        pack = fs.local_pack(gfile[0])
        inode = pack.get_inode(gfile[1]) if pack else None
        if inode is None:
            self.stats.skipped += 1
            self._pending.discard(gfile)
            return None
        if (inode.deleted or not inode.has_data) and \
                self.site.site_id not in req.attrs["storage_sites"]:
            # Not a resurrection target; nothing to pull into.
            self.stats.skipped += 1
            self._pending.discard(gfile)
            return None
        target_vv: VersionVector = req.attrs["version"]
        if inode.version.dominates(target_vv):
            self.stats.skipped += 1
            self._pending.discard(gfile)
            return None
        if inode.version.conflicts(target_vv):
            # Divergent histories cannot be propagated over; recovery's
            # type-specific merge handles this (section 4).
            self.stats.skipped += 1
            self._pending.discard(gfile)
            return None
        if gfile in fs.ss:
            # The file is open locally; retry once the activity drains.
            req.deferrals += 1
            self.stats.deferred += 1
            if req.deferrals <= _MAX_DEFERRALS:
                self.site.sim.schedule(_DEFER_DELAY, self.queue.put, req)
            else:
                self._pending.discard(gfile)
            return None
        yield from self._pull(req, pack, inode.version)
        self._pending.discard(gfile)
        return None

    def _pull(self, req: _Request, pack, local_vv: VersionVector) -> Generator:
        """Internally open the file at a site with the latest version and
        page the changes (or the whole file) across."""
        fs = self.fs
        gfile = req.gfile
        source, remote_attrs = yield from self._open_source(req)
        target_vv = remote_attrs["version"]
        if local_vv.dominates(target_vv):
            self.stats.skipped += 1
            return None

        # Delta pull is only sound when the remote version is exactly one
        # commit (originated at the announcing site) ahead of our copy, and
        # the file did not shrink (shrinks need the page list rebuilt).
        psz = fs.cost.page_size
        n_pages = (remote_attrs["size"] + psz - 1) // psz
        local_inode = pack.get_inode(req.gfile[1])
        delta_ok = (fs.cost.delta_propagation
                    and req.pages is not None
                    and remote_attrs["version"] == req.attrs["version"]
                    and target_vv == local_vv.bump(req.hint)
                    and local_inode is not None
                    and not local_inode.deleted
                    and local_inode.has_data
                    and n_pages >= len(local_inode.pages))
        pull_pages = (sorted(p for p in req.pages if p < n_pages)
                      if delta_ok else list(range(n_pages)))
        if delta_ok:
            self.stats.delta_pulls += 1
        else:
            self.stats.full_pulls += 1

        shadow = ShadowFile(pack, gfile[1])
        self._pulling.add(gfile)
        try:
            if not delta_ok:
                shadow.truncate()
            yield from self._pull_pages(source, gfile, pull_pages, shadow)
            if gfile in fs.ss:
                # A local open slipped in before the pull gate existed (or
                # via an unsynchronized path): committing now would be
                # clobbered by that open's stale shadow.  Defer instead.
                shadow.abort()
                req.deferrals += 1
                self.stats.deferred += 1
                if req.deferrals <= _MAX_DEFERRALS:
                    self._pending.add(gfile)
                    self.site.sim.schedule(_DEFER_DELAY, self.queue.put, req)
                return None
            shadow.set_attrs(**{k: remote_attrs[k] for k in _ATTR_FIELDS})
            # Pulling a live version resurrects a locally-tombstoned copy
            # (the undo-delete of section 4.4 rule d).
            shadow.set_attrs(deleted=False, has_data=True)
            shadow.commit(new_version=target_vv.copy(),
                          mtime=remote_attrs["mtime"])
        except BaseException:
            shadow.abort()   # coherent, complete, out-of-date copy remains
            raise
        finally:
            self._pulling.discard(gfile)
        self.site.cache.invalidate_file(*gfile)
        self.stats.pulls += 1
        return None

    def _pull_pages(self, source: int, gfile: Gfile, pages: List[int],
                    shadow: ShadowFile) -> Generator:
        """Page the data across from ``source`` into ``shadow``.

        The paper's protocol is one ``fs.pull_read`` round trip per page.
        With ``batch_pages`` > 1 the pages travel in ``fs.pull_read_range``
        chunks, and with ``pull_pipeline`` > 1 several chunk requests are
        kept in flight at once — the source reads the next chunk off its
        disk while earlier ones are on the wire.  Pages are still written
        to secondary storage here in file order, so the shadow-commit
        invariant (a coherent copy survives any failure) is untouched.
        """
        fs = self.fs
        batch = max(1, fs.cost.batch_pages)
        depth = max(1, fs.cost.pull_pipeline)
        if batch == 1 and depth == 1:
            for page in pages:
                data = yield from self.site.rpc(source, "fs.pull_read", {
                    "gfile": gfile, "page": page,
                })
                shadow.write_page(page, data)
                yield from self.site.cpu(fs.cost.disk_write)
                self.stats.pages_pulled += 1
            return None
        chunks = [pages[i:i + batch] for i in range(0, len(pages), batch)]
        for r in range(0, len(chunks), depth):
            in_flight = chunks[r:r + depth]
            tasks = [self.site.spawn(self._fetch_chunk(source, gfile, chunk),
                                     name=f"pullrange:{gfile}")
                     for chunk in in_flight]
            if len(tasks) > 1:
                self.stats.pipelined_rounds += 1
            results = yield self.site.sim.gather(
                [t.done for t in tasks], label=f"pullround:{gfile}")
            for fetched in results:
                for page in sorted(fetched):
                    shadow.write_page(page, fetched[page])
                    yield from self.site.cpu(fs.cost.disk_write)
                    self.stats.pages_pulled += 1
        return None

    def _fetch_chunk(self, source: int, gfile: Gfile,
                     chunk: List[int]) -> Generator:
        """Fetch one chunk of committed pages; ``{page: data}``."""
        if len(chunk) == 1 and self.fs.cost.batch_pages == 1:
            data = yield from self.site.rpc(source, "fs.pull_read", {
                "gfile": gfile, "page": chunk[0],
            })
            return {chunk[0]: data}
        self.stats.range_requests += 1
        resp = yield from self.site.rpc(source, "fs.pull_read_range", {
            "gfile": gfile, "pages": list(chunk),
        })
        return resp["pages"]

    def _open_source(self, req: _Request) -> Generator:
        """Find a site holding the (at least) announced version."""
        fs = self.fs
        candidates = [req.hint] + [
            s for s in req.attrs["storage_sites"]
            if s not in (req.hint, self.site.site_id)]
        last_exc: Optional[Exception] = None
        for cand in candidates:
            try:
                attrs = yield from self.site.rpc(cand, "fs.pull_open",
                                                 {"gfile": req.gfile})
            except (FsError, NetworkError) as exc:
                last_exc = exc
                continue
            if attrs["version"].dominates(req.attrs["version"]):
                return cand, attrs
        raise last_exc or NetworkError("no propagation source available")
