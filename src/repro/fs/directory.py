"""Directory content: entries, tombstones, and the on-disk codec.

"A directory can be viewed as a set of records, each one containing the
character string comprising one element in the path name of a file.
Associated with that string is an index that points at a descriptor (inode)"
(paper section 4.4).  The only operations are *insert* and *remove*; each is
atomic, which is why unsynchronized directory interrogation never sees an
inconsistent picture (section 2.3.4).

Removals leave tombstones recording the removed file's version vector at
deletion time, so the partition-merge rules of section 4.4 can decide
whether "there has been a modification of the data since the delete".
Entries also carry the target's file type so pathname searching can detect
hidden directories without an extra inode fetch (the d_type convention).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import EEXIST, EINVAL, ENAMETOOLONG, ENOENT
from repro.storage.inode import FileType
from repro.storage.version_vector import VersionVector

MAX_NAME = 255


@dataclass
class DirEntry:
    name: str
    ino: int
    ftype: FileType = FileType.REGULAR
    deleted: bool = False
    # Version vector of the target file when the entry was removed; used by
    # the merge rules ("unless there has been a modification since the
    # delete").
    dvv: Optional[VersionVector] = None

    def to_record(self) -> dict:
        rec = {
            "n": self.name,
            "i": self.ino,
            "t": self.ftype.value,
        }
        if self.deleted:
            rec["d"] = 1
            rec["v"] = (self.dvv or VersionVector()).to_dict()
        return rec

    @classmethod
    def from_record(cls, rec: dict) -> "DirEntry":
        deleted = bool(rec.get("d"))
        dvv = None
        if deleted:
            dvv = VersionVector({int(k): v
                                 for k, v in rec.get("v", {}).items()})
        return cls(name=rec["n"], ino=rec["i"],
                   ftype=FileType(rec["t"]), deleted=deleted, dvv=dvv)


def check_name(name: str) -> None:
    if not name or "/" in name or name in (".", ".."):
        raise EINVAL(f"bad file name {name!r}")
    if len(name) > MAX_NAME:
        raise ENAMETOOLONG(name[:32] + "...")


def encode_entries(entries: List[DirEntry]) -> bytes:
    """Serialize directory content (sorted for canonical layout)."""
    records = [e.to_record() for e in
               sorted(entries, key=lambda e: (e.name, e.ino))]
    return json.dumps(records, separators=(",", ":")).encode()


def decode_entries(data: bytes) -> List[DirEntry]:
    if not data:
        return []
    text = data.rstrip(b"\x00").decode()
    if not text:
        return []
    return [DirEntry.from_record(rec) for rec in json.loads(text)]


class DirView:
    """In-memory view of one directory's entries with the atomic ops."""

    def __init__(self, entries: Optional[List[DirEntry]] = None):
        self.entries: List[DirEntry] = list(entries or [])

    def _find(self, name: str) -> Optional[DirEntry]:
        """The record for ``name``, preferring the live entry: a name may
        carry tombstones of earlier files alongside its current binding."""
        found = None
        for entry in self.entries:
            if entry.name == name:
                if not entry.deleted:
                    return entry
                found = entry
        return found

    def lookup(self, name: str) -> Optional[DirEntry]:
        """Live entry by name; tombstones are invisible to lookups."""
        entry = self._find(name)
        if entry is not None and not entry.deleted:
            return entry
        return None

    def insert(self, name: str, ino: int, ftype: FileType) -> DirEntry:
        check_name(name)
        existing = self._find(name)
        if existing is not None and not existing.deleted:
            raise EEXIST(name)
        # Resurrecting the *same* file replaces its tombstone; a tombstone
        # of a *different* file must survive the insert — it is the only
        # record telling a partition merge that the old file's binding was
        # removed, not concurrently created (rules (b)/(d), section 4.4).
        for tomb in [e for e in self.entries
                     if e.name == name and e.ino == ino]:
            self.entries.remove(tomb)
        entry = DirEntry(name=name, ino=ino, ftype=ftype)
        self.entries.append(entry)
        return entry

    def remove(self, name: str, target_vv: VersionVector) -> DirEntry:
        entry = self.lookup(name)
        if entry is None:
            raise ENOENT(name)
        entry.deleted = True
        entry.dvv = target_vv.copy()
        return entry

    def live_entries(self) -> List[DirEntry]:
        return [e for e in self.entries if not e.deleted]

    def names(self) -> List[str]:
        return sorted(e.name for e in self.live_entries()
                      if e.name not in (".", ".."))

    def is_empty(self) -> bool:
        return not self.names()

    def by_name(self) -> Dict[str, DirEntry]:
        """All entries (tombstones included) keyed by name — merge input."""
        return {e.name: e for e in self.entries}
