"""The recovery orchestrator: filegroup sweeps, per-type merges, conflict
marking, owner notification, and demand recovery (section 4).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Generator, List, Optional, Set, Tuple

from repro.errors import EEXIST, FsError, NetworkError
from repro.fs.directory import decode_entries, encode_entries
from repro.fs.types import Gfile, Mode
from repro.recovery.dir_merge import merge_directories
from repro.recovery.mailbox import (MailMessage, decode_mailbox,
                                    encode_mailbox, merge_mailboxes)
from repro.storage.inode import FileType
from repro.storage.version_vector import VersionVector, latest


def _same_entries(a, b) -> bool:
    """Entry-set equality, order-independent (merge output is sorted,
    on-disk copies are not)."""
    key = lambda e: (e.name, e.ino, e.ftype, e.deleted,
                     None if e.dvv is None else tuple(sorted(
                         e.dvv.to_dict().items())))
    return sorted(map(key, a)) == sorted(map(key, b))


class RecoveryStats:
    def __init__(self):
        self.files_examined = 0
        self.propagations_scheduled = 0
        self.dir_merges = 0
        self.mailbox_merges = 0
        self.type_manager_merges = 0
        self.conflicts_marked = 0
        self.deletes_undone = 0
        self.name_conflicts = 0
        self.nlink_repairs = 0
        self.mails_sent = 0
        self.retries_scheduled = 0


class RecoveryManager:
    """Runs at the CSS of each filegroup after a merge (section 5.3: "the
    recovery procedure runs as a privileged application program")."""

    def __init__(self, site):
        self.site = site
        self.stats = RecoveryStats()
        # gfs -> inos still awaiting reconciliation (demand recovery pulls
        # individual files forward in the queue, section 4.4).
        self.pending: Dict[int, Set[int]] = {}
        self._sweep_inventories: Dict[int, Dict[int, dict]] = {}
        # Demand reconciliations currently executing: gfile -> completion
        # future.  ``needs`` stays true for these so a writer open racing a
        # mid-flight merge is still refused (the conflict window would
        # otherwise reopen between the pending-discard and the install).
        self._demanding: Dict[Gfile, object] = {}
        # Registered higher-level recovery/merge managers by file type
        # (section 4.3): ftype -> callable(copies) -> merged bytes or None.
        self.merge_managers: Dict[FileType, Callable] = {}
        self._mail_seq = itertools.count(1)

    @property
    def sid(self) -> int:
        return self.site.site_id

    def reset_volatile(self) -> None:
        self.pending.clear()
        self._sweep_inventories.clear()
        self._demanding.clear()

    def on_restart(self) -> None:
        pass

    def register_merge_manager(self, ftype: FileType, fn: Callable) -> None:
        """Install a per-type recovery/merge manager (e.g. for DATABASE
        files); ``fn(copies)`` gets ``[(site, attrs, content_bytes)]`` and
        returns merged bytes, or None to fall back to conflict marking."""
        self.merge_managers[ftype] = fn

    # ------------------------------------------------------------------
    # Sweep scheduling
    # ------------------------------------------------------------------

    def schedule_filegroup(self, gfs: int) -> None:
        self.site.spawn(self._traced_sweep(gfs),
                        name=f"recovery:fg{gfs}@{self.sid}")

    def _traced_sweep(self, gfs: int) -> Generator:
        """Run one recovery sweep under its own root span, bracketed by
        instant events so the pass shows up on the exported timeline."""
        tracer = getattr(self.site, "tracer", None)
        span = prev = None
        if tracer is not None and tracer.enabled:
            tracer.instant("recovery.start", site=self.sid,
                           attrs={"gfs": gfs})
            span, prev = tracer.begin(f"recovery:fg{gfs}", "recovery",
                                      self.sid, inherit=False,
                                      attrs={"gfs": gfs})
        status_label = "ok"
        try:
            result = yield from self.reconcile_filegroup(gfs)
            return result
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
            status_label = type(exc).__name__
            raise
        finally:
            if span is not None:
                tracer.finish(span, prev, status=status_label)
                tracer.instant("recovery.complete", site=self.sid,
                               attrs={"gfs": gfs,
                                      "files_examined":
                                          self.stats.files_examined,
                                      "status": status_label})

    def needs(self, gfile: Gfile) -> bool:
        return (gfile[1] in self.pending.get(gfile[0], ())
                or gfile in self._demanding)

    def demand(self, gfile: Gfile) -> Generator:
        """Demand recovery: reconcile one file out of order so regular
        traffic sees only a small delay (section 4.4)."""
        gfs, ino = gfile
        inflight = self._demanding.get(gfile)
        if inflight is not None:
            # Another access is already reconciling this file; running a
            # second merge concurrently would race the first's install.
            yield inflight
            return None
        if not self.needs(gfile):
            return None
        tracer = getattr(self.site, "tracer", None)
        if tracer is not None and tracer.enabled:
            # The delayed access's span shows why it waited.
            tracer.event_on(tracer.current_ctx(), "demand_recovery",
                            {"gfile": list(gfile)})
        inventories = self._sweep_inventories.get(gfs, {})
        self.pending.get(gfs, set()).discard(ino)
        done = self.site.sim.create_future(f"demand:{gfile}")
        self._demanding[gfile] = done
        try:
            yield from self._reconcile_ino(gfs, ino, inventories)
        finally:
            self._demanding.pop(gfile, None)
            done.resolve(None)
        return None

    def demand_soon(self, gfile: Gfile) -> None:
        """Schedule demand reconciliation without blocking the caller.

        The conflict-window retirement path: the CSS refuses a writer open
        with EWOULDCONFLICT and kicks the merge off here, so the writer's
        supervised retry finds the file reconciled instead of waiting for
        the sweep to reach it."""
        if gfile in self._demanding or not self.needs(gfile):
            return
        self.site.spawn(self.demand(gfile),
                        name=f"demand:{gfile}@{self.sid}")

    # ------------------------------------------------------------------
    # The filegroup sweep
    # ------------------------------------------------------------------


    def _rpc(self, dst: int, op: str, payload: dict) -> Generator:
        """Read-only recovery RPC with the supervised per-op timeout
        backstop; timeouts are NetworkErrors, so the existing skip/retry
        handling covers them.  Installs stay on the plain call."""
        cost = self.site.cost
        timeout = (cost.rpc_timeout or None) if cost.supervise_remote_ops \
            else None
        result = yield from self.site.rpc(dst, op, payload, timeout=timeout)
        return result

    def reconcile_filegroup(self, gfs: int) -> Generator:
        members = self.site.topology.partition_set if self.site.topology \
            else set(self.site.net.site_ids)
        pack_sites = [s for s in self.site.fs.mount.pack_sites(gfs)
                      if s in members]
        inventories: Dict[int, dict] = {}
        for s in pack_sites:
            try:
                inv = yield from self._rpc(s, "fs.pack_inventory",
                                               {"gfs": gfs})
            except (NetworkError, FsError):
                continue
            inventories[s] = inv
        if not inventories:
            return None
        all_inos = set()
        for inv in inventories.values():
            all_inos |= set(inv)
        self._sweep_inventories[gfs] = inventories
        self.pending[gfs] = set(all_inos)
        for ino in sorted(all_inos):
            if ino not in self.pending.get(gfs, ()):
                continue  # demand recovery already handled it
            self.pending[gfs].discard(ino)
            try:
                yield from self._reconcile_ino(gfs, ino, inventories)
            except (NetworkError, FsError):
                # A site vanished, or an install write failed (EIO) while
                # the winner was being put in place.  Dropping the file
                # here would leave its replicas divergent until some
                # unrelated membership change re-sweeps; instead put it on
                # the same bounded deferral schedule the writer-active
                # path uses, with a fresh inventory per attempt.
                self.stats.retries_scheduled += 1
                self.pending.setdefault(gfs, set()).add(ino)
                self._schedule_retry(gfs, ino, attempt=1)
        try:
            yield from self._repair_link_counts(gfs)
        except (NetworkError, FsError):
            pass
        self.pending.pop(gfs, None)
        self._sweep_inventories.pop(gfs, None)
        return None

    def _link_census(self, gfs: int) -> Generator:
        """Count live directory references per inode across the filegroup.

        Returns ``(best, refs, conflicted)`` where ``best`` maps each live
        inode to its latest ``(site, attrs)`` copy, ``refs`` maps inode to
        the number of live entries naming it, and ``conflicted`` maps each
        version-conflicted regular file to its live ``(site, attrs)``
        holders — or None when any directory is unreadable or its copies
        are in version conflict (a partial census could shrink a correct
        nlink).
        """
        members = self.site.topology.partition_set if self.site.topology \
            else set(self.site.net.site_ids)
        inventories: Dict[int, dict] = {}
        for s in self.site.fs.mount.pack_sites(gfs):
            if s not in members:
                continue
            try:
                inventories[s] = yield from self._rpc(
                    s, "fs.pack_inventory", {"gfs": gfs})
            except (NetworkError, FsError):
                continue
        if not inventories:
            return None
        all_inos = set()
        for inv in inventories.values():
            all_inos |= set(inv)
        best: Dict[int, Tuple[int, dict]] = {}
        conflicted: Dict[int, List[Tuple[int, dict]]] = {}
        for ino in all_inos:
            holders = [(s, inv[ino]["attrs"])
                       for s, inv in inventories.items()
                       if ino in inv and inv[ino]["has_data"]]
            live = [(s, a) for s, a in holders if not a["deleted"]]
            if not live:
                continue
            __, best_vv, conflict = latest(
                (s, a["version"]) for s, a in live)
            if conflict or any(a["conflict"] for __, a in live):
                if live[0][1]["ftype"] in (FileType.DIRECTORY,
                                           FileType.HIDDEN_DIR):
                    return None
                conflicted[ino] = live
                continue
            best[ino] = next((s, a) for s, a in live
                             if a["version"] == best_vv)
        refs: Dict[int, int] = {}
        for ino, (s, attrs) in sorted(best.items()):
            if attrs["ftype"] not in (FileType.DIRECTORY,
                                      FileType.HIDDEN_DIR):
                continue
            try:
                data = yield from self._read_copy(s, (gfs, ino), attrs)
                entries = decode_entries(data)
            except (NetworkError, FsError):
                return None
            for entry in entries:
                if entry.deleted or entry.name in (".", ".."):
                    continue
                refs[entry.ino] = refs.get(entry.ino, 0) + 1
        return best, refs, conflicted

    def _repair_link_counts(self, gfs: int) -> Generator:
        """Post-sweep nlink repair.

        Directory merges union inserts and undo deletes (section 4.4
        rules a/d), which changes how many live names reference a file
        without ever opening its inode; a link/unlink that committed the
        entry but lost the count update in a partition leaves the same
        skew.  Recount live references from the reconciled directories
        and fix any regular file whose nlink disagrees — what ``fsck
        -y`` would do, run as part of the merge procedure.
        """
        census = yield from self._link_census(gfs)
        if census is None:
            return None
        best, refs, conflicted = census
        for ino in sorted(best):
            s, attrs = best[ino]
            if attrs["ftype"] is not FileType.REGULAR or attrs["conflict"]:
                continue
            n = refs.get(ino, 0)
            if n == 0 or n == attrs["nlink"]:
                continue  # orphans are fsck's report, not a repair target
            try:
                yield from self._repair_one_nlink(gfs, ino)
            except (NetworkError, FsError):
                pass
        for ino in sorted(conflicted):
            # A conflicted file cannot go through the locked open/commit
            # repair path (normal opens refuse, and a commit would stamp a
            # new version over the divergent copies).  Its live names are
            # still real: directory merges union inserts and undo deletes
            # regardless of the file's own conflict.  Patch the count in
            # place on every holder, version vectors untouched, the same
            # way the conflict flag itself is applied.
            if any(a["ftype"] is not FileType.REGULAR
                   for __, a in conflicted[ino]):
                continue
            n = refs.get(ino, 0)
            if n == 0:
                continue
            for s, attrs in conflicted[ino]:
                if attrs["nlink"] == n:
                    continue
                self.stats.nlink_repairs += 1
                payload = {"gfile": (gfs, ino), "nlink": n}
                if s == self.sid:
                    yield from self.site.fs.h_patch_nlink(self.sid, payload)
                else:
                    yield from self.site.oneway_quiet(
                        s, "fs.patch_nlink", payload)
        return None

    def _repair_one_nlink(self, gfs: int, ino: int) -> Generator:
        """Fix one file's link count under its CSS write lock.

        A bare install races in-flight writers: a commit opened while
        the census ran would overwrite the repaired count.  Taking the
        normal open-for-modification lock serializes the repair with any
        writer, and the recount under the lock sees the final entry set.
        """
        fs = self.site.fs
        handle = yield from fs._open_write_retry((gfs, ino))
        try:
            census = yield from self._link_census(gfs)
            if census is None:
                return None
            __, refs, __ = census
            n = refs.get(ino, 0)
            if n and n != handle.attrs["nlink"]:
                self.stats.nlink_repairs += 1
                yield from fs.set_attrs(handle, nlink=n)
        finally:
            yield from fs.close(handle)
        return None

    # ------------------------------------------------------------------
    # Per-file reconciliation
    # ------------------------------------------------------------------

    def _reconcile_ino(self, gfs: int, ino: int,
                       inventories: Dict[int, dict],
                       attempt: int = 0) -> Generator:
        self.stats.files_examined += 1
        gfile: Gfile = (gfs, ino)
        entry = self.site.fs.css_entries.get(gfile)
        if entry is not None and entry.writer is not None and attempt < 10:
            # An operation in progress: "the desired action is to permit
            # these operations to continue to completion, and only then
            # perform file system conflict analysis" (section 5.6).
            self.pending.setdefault(gfs, set()).add(ino)
            self._schedule_retry(gfs, ino, attempt + 1)
            return None
        holders: List[Tuple[int, dict]] = []
        for s, inv in inventories.items():
            entry = inv.get(ino)
            if entry is not None and entry["has_data"]:
                holders.append((s, entry["attrs"]))
        if not holders:
            return None
        __, best_vv, conflict = latest(
            (s, attrs["version"]) for s, attrs in holders)
        all_equal = all(a["version"] == best_vv for __, a in holders)
        live = [(s, a) for s, a in holders if not a["deleted"]]
        dead = [(s, a) for s, a in holders if a["deleted"]]
        ftype = holders[0][1]["ftype"]
        if conflict and dead and live:
            # "A file which was deleted in one partition while it was
            # modified in another, wants to be saved": undo the delete.
            self.stats.deletes_undone += 1
            yield from self._install_winner(gfile, live, holders,
                                            content=None)
            return None
        if ftype in (FileType.DIRECTORY, FileType.HIDDEN_DIR) \
                and not all_equal and live:
            # Directories always go through the merge rules: even a
            # strictly-newer copy's tombstones must be checked against
            # "modified since the delete" (section 4.4 rule b/d).
            yield from self._merge_directory(gfile, live, inventories)
            return None
        if not conflict:
            yield from self._propagate_best(gfile, holders, best_vv)
            return None
        # Mutually inconsistent copies: dispatch by type (section 4.3).
        if ftype is FileType.MAILBOX:
            yield from self._merge_mailbox(gfile, live or holders)
        elif ftype in self.merge_managers:
            yield from self._merge_via_manager(gfile, live or holders, ftype)
        else:
            yield from self._mark_conflict(gfile, holders)
        return None

    def note_stale_sweep(self, gfile: Gfile) -> None:
        """A holder answered a sweep notify with a strictly newer version:
        the sweep's inventory snapshot went stale mid-run (a commit landed
        between the inventory and the propagation).  Re-reconcile the file
        against fresh inventories so every behind copy learns the real
        best, not just the site the answer reached."""
        self._note_reconcile_needed(gfile)

    def note_divergent_notify(self, gfile: Gfile) -> None:
        """A commit notify carried a version concurrent with the local
        copy: two lineages exist (e.g. a merge result raced a writer that
        was already in flight when the merge ran).  Neither side can be
        pulled without losing the other, so re-run full reconciliation —
        the merge machinery folds both lineages into one dominating
        version, or marks the file in conflict."""
        self._note_reconcile_needed(gfile)

    def _note_reconcile_needed(self, gfile: Gfile) -> None:
        gfs, ino = gfile
        if ino in self.pending.get(gfs, set()):
            return                       # a deferred reconcile is queued
        self.stats.retries_scheduled += 1
        self.pending.setdefault(gfs, set()).add(ino)
        self._schedule_retry(gfs, ino, attempt=1)

    def _schedule_retry(self, gfs: int, ino: int, attempt: int) -> None:
        """Queue a deferred single-file reconciliation attempt."""
        def _retry():
            self.site.spawn(self._retry_ino(gfs, ino, attempt),
                            name=f"recovery-retry:{gfs}:{ino}")

        self.site.sim.schedule(30.0 * attempt, _retry)

    def _retry_ino(self, gfs: int, ino: int, attempt: int) -> Generator:
        """Re-inventory one file and reconcile it (deferred recovery)."""
        members = self.site.topology.partition_set if self.site.topology \
            else set(self.site.net.site_ids)
        inventories: Dict[int, dict] = {}
        for s in self.site.fs.mount.pack_sites(gfs):
            if s not in members:
                continue
            try:
                inventories[s] = yield from self._rpc(
                    s, "fs.pack_inventory", {"gfs": gfs})
            except (NetworkError, FsError):
                continue
        self.pending.get(gfs, set()).discard(ino)
        try:
            yield from self._reconcile_ino(gfs, ino, inventories,
                                           attempt=attempt)
        except (NetworkError, FsError):
            if attempt < 10:
                self.stats.retries_scheduled += 1
                self.pending.setdefault(gfs, set()).add(ino)
                self._schedule_retry(gfs, ino, attempt + 1)
            return None
        # A deferred directory merge can resurrect entries after the
        # sweep's link-count pass already ran; recount once more.
        try:
            yield from self._repair_link_counts(gfs)
        except (NetworkError, FsError):
            pass
        return None

    def _propagate_best(self, gfile: Gfile, holders: List[Tuple[int, dict]],
                        best_vv: VersionVector) -> Generator:
        winners = [(s, a) for s, a in holders if a["version"] == best_vv]
        if not winners:
            return None
        win_site, win_attrs = winners[0]
        current = {s for s, a in holders if a["version"] == best_vv}
        behind = {s for s, __ in holders} - current
        # Advertised storage sites holding no data yet (e.g. replicas of a
        # file created while they were in the other partition) must be
        # seeded too.
        if not win_attrs["deleted"]:
            behind |= set(win_attrs["storage_sites"]) - current
        if not behind:
            return None
        self.stats.propagations_scheduled += len(behind)
        monitor = self.site.convergence
        if monitor is not None and monitor.enabled:
            monitor.note_repair("propagate", site=self.site.site_id,
                                gfile=gfile)
        # _recovery marks a sweep-driven notify (header-riding, zero wire
        # size): a receiver whose copy strictly supersedes win_attrs
        # answers with its own attributes instead of silently dropping the
        # stale push, so a commit that raced the inventory snapshot still
        # converges (note_stale_sweep below).
        payload = {"gfile": gfile, "attrs": win_attrs, "pages": None,
                   "origin": win_site, "_recovery": True}
        for s in sorted(behind):
            yield from self.site.oneway_quiet(s, "fs.notify", payload)
        return None

    # ------------------------------------------------------------------
    # Reading raw copies (bypassing CSS and conflict checks)
    # ------------------------------------------------------------------

    def _read_copy(self, source: int, gfile: Gfile,
                   attrs: dict) -> Generator:
        psz = self.site.cost.page_size
        n_pages = (attrs["size"] + psz - 1) // psz
        chunks = []
        for page in range(n_pages):
            data = yield from self._rpc(source, "fs.pull_read", {
                "gfile": gfile, "page": page,
            })
            chunks.append(data.ljust(psz, b"\x00"))
        return b"".join(chunks)[:attrs["size"]]

    # ------------------------------------------------------------------
    # Type-specific merges
    # ------------------------------------------------------------------

    def _merge_directory(self, gfile: Gfile,
                         holders: List[Tuple[int, dict]],
                         inventories: Dict[int, dict],
                         force: bool = False) -> Generator:
        copies = []
        owners = {}
        for s, attrs in holders:
            for attempt in range(3):
                data = yield from self._read_copy(s, gfile, attrs)
                try:
                    entries = decode_entries(data)
                    break
                except ValueError:
                    # Torn read: a live writer committed between the
                    # inventory snapshot and the page pulls, so the
                    # snapshot size sliced mid-record.  Re-fetch the
                    # inode and read again.
                    yield 5.0 * (attempt + 1)
                    try:
                        attrs = yield from self._rpc(
                            s, "fs.fetch_attrs", {"gfile": gfile})
                    except (NetworkError, FsError):
                        pass
            else:
                # Never stabilized: surface as transient so the caller
                # (a supervised open, or the deferred-retry sweep)
                # reschedules the whole reconcile instead of merging
                # from garbage.
                raise NetworkError(
                    f"directory copy of {gfile} at site {s} unstable")
            copies.append(entries)
            owners[s] = attrs["owner"]

        def file_version(ino: int) -> Optional[VersionVector]:
            vvs = []
            for inv in inventories.values():
                entry = inv.get(ino)
                if entry is not None and entry["has_data"] \
                        and not entry["attrs"]["deleted"]:
                    vvs.append(entry["attrs"]["version"])
            if not vvs:
                return None
            out = vvs[0]
            for vv in vvs[1:]:
                out = out.merge(vv)
            return out

        merged, report = merge_directories(copies, file_version)
        self.stats.dir_merges += 1
        self.stats.name_conflicts += len(report.name_conflicts)
        # When one copy dominates and the merge changed nothing relative to
        # it (no rule-d resurrection, no name aliasing), installing would
        # only mint a gratuitous new lineage — one that races any writer
        # already in flight against the dominant copy.  Propagate instead.
        # ``force`` (the scrub's equal-vv digest-skew repair) skips the
        # shortcut: the copies' bytes differ even though their vectors
        # agree, so only a fresh dominating install re-unifies them.
        __, best_vv, conflict = latest(
            (s, a["version"]) for s, a in holders)
        if not conflict and not force:
            for (s, attrs), entries in zip(holders, copies):
                if attrs["version"] != best_vv:
                    continue
                if _same_entries(merged, entries):
                    yield from self._propagate_best(gfile, holders, best_vv)
                    return None
                break
        yield from self._install_winner(gfile, holders, holders,
                                        content=encode_entries(merged))
        for name, ino_a, ino_b in report.name_conflicts:
            for ino in (ino_a, ino_b):
                owner = self._owner_of(gfile[0], ino, inventories)
                yield from self.send_mail(
                    owner, subject=f"name conflict on {name!r}",
                    body=(f"Directory merge found {name!r} bound to two "
                          f"different files; yours is now "
                          f"{name}@{ino}."))
        return None

    def _owner_of(self, gfs: int, ino: int,
                  inventories: Dict[int, dict]) -> str:
        for inv in inventories.values():
            entry = inv.get(ino)
            if entry is not None:
                return entry["attrs"]["owner"]
        return "root"

    def _merge_mailbox(self, gfile: Gfile,
                       holders: List[Tuple[int, dict]]) -> Generator:
        copies = []
        for s, attrs in holders:
            data = yield from self._read_copy(s, gfile, attrs)
            copies.append(decode_mailbox(data))
        merged = merge_mailboxes(copies)
        self.stats.mailbox_merges += 1
        yield from self._install_winner(gfile, holders, holders,
                                        content=encode_mailbox(merged))
        return None

    def _merge_via_manager(self, gfile: Gfile,
                           holders: List[Tuple[int, dict]],
                           ftype: FileType) -> Generator:
        triples = []
        for s, attrs in holders:
            data = yield from self._read_copy(s, gfile, attrs)
            triples.append((s, attrs, data))
        merged = self.merge_managers[ftype](triples)
        if merged is None:
            yield from self._mark_conflict(gfile, holders)
            return None
        self.stats.type_manager_merges += 1
        yield from self._install_winner(gfile, holders, holders,
                                        content=merged)
        return None

    # ------------------------------------------------------------------
    # Installing merge results
    # ------------------------------------------------------------------

    def _install_winner(self, gfile: Gfile,
                        winners: List[Tuple[int, dict]],
                        all_holders: List[Tuple[int, dict]],
                        content: Optional[bytes]) -> Generator:
        """Write the reconciled version at one site with a vector that
        dominates every copy; normal propagation distributes it."""
        merged_vv = VersionVector()
        for __, attrs in all_holders:
            merged_vv = merged_vv.merge(attrs["version"])
        target_site, target_attrs = winners[0]
        if content is None:
            content = yield from self._read_copy(target_site, gfile,
                                                 target_attrs)
        yield from self.site.rpc(target_site, "fs.install_merged", {
            "gfile": gfile,
            "data": content,
            "base_vv": merged_vv,
            "ftype": target_attrs["ftype"],
            "owner": target_attrs["owner"],
            "perms": target_attrs["perms"],
            "nlink": max(1, target_attrs["nlink"]),
            "storage_sites": sorted(
                set(itertools.chain.from_iterable(
                    a["storage_sites"] for __, a in all_holders))),
        })
        return None

    # ------------------------------------------------------------------
    # Untyped conflicts (section 4.6)
    # ------------------------------------------------------------------

    def _mark_conflict(self, gfile: Gfile,
                       holders: List[Tuple[int, dict]]) -> Generator:
        self.stats.conflicts_marked += 1
        monitor = self.site.convergence
        if monitor is not None and monitor.enabled:
            monitor.note_repair("mark_conflict", site=self.site.site_id,
                                gfile=gfile)
        for s, __ in holders:
            yield from self.site.oneway_quiet(s, "fs.mark_conflict",
                                              {"gfile": gfile})
        owner = holders[0][1]["owner"]
        yield from self.send_mail(
            owner, subject=f"update conflict on file {gfile}",
            body=("The file was updated independently in different "
                  "partitions.  Normal access attempts will fail; use "
                  "split_conflict or resolve_conflict to reconcile."))
        return None

    def resolve_conflict(self, gfile: Gfile, keep_site: int) -> Generator:
        """User tool: declare one site's copy the winner."""
        inv = {}
        for s in self.site.fs.mount.pack_sites(gfile[0]):
            try:
                inv[s] = yield from self._rpc(s, "fs.pack_inventory",
                                                  {"gfs": gfile[0]})
            except (NetworkError, FsError):
                continue
        holders = [(s, e[gfile[1]]["attrs"]) for s, e in inv.items()
                   if gfile[1] in e and e[gfile[1]]["has_data"]]
        winner = [(s, a) for s, a in holders if s == keep_site]
        if not winner:
            raise FsError(f"site {keep_site} stores no copy of {gfile}")
        yield from self._install_winner(gfile, winner, holders, content=None)
        return None

    def split_conflict(self, proc, path: str) -> Generator:
        """User tool (section 4.6): rename each version of a conflicted file
        into a separate normal file; returns the new names."""
        fs = self.site.fs
        gfile, __ = yield from fs.resolve_gfile(proc, path)
        parent, name, __ = yield from fs.walk(proc, path,
                                              follow_leaf_hidden=False)
        inv = {}
        for s in fs.mount.pack_sites(gfile[0]):
            try:
                inv[s] = yield from self._rpc(s, "fs.pack_inventory",
                                                  {"gfs": gfile[0]})
            except (NetworkError, FsError):
                continue
        seen_versions = {}
        for s, entries in inv.items():
            entry = entries.get(gfile[1])
            if entry is None or not entry["has_data"]:
                continue
            seen_versions.setdefault(entry["attrs"]["version"],
                                     (s, entry["attrs"]))
        new_names = []
        for vv, (s, attrs) in seen_versions.items():
            data = yield from self._read_copy(s, gfile, attrs)
            new_name = f"{path}@site{s}"
            fd_gfile, __ = yield from fs.create_file(proc, new_name,
                                                     exclusive=True)
            handle = yield from fs.open_gfile(fd_gfile, Mode.WRITE)
            try:
                if data:
                    yield from fs.write(handle, 0, data)
            finally:
                yield from fs.close(handle)
            new_names.append(new_name)
        # Remove the conflicted original.
        yield from fs.unlink(proc, path)
        return new_names

    # ------------------------------------------------------------------
    # Electronic mail (the notification channel of sections 4.4-4.6)
    # ------------------------------------------------------------------

    def send_mail(self, owner: str, subject: str, body: str) -> Generator:
        fs = self.site.fs
        self.stats.mails_sent += 1
        try:
            yield from fs.mkdir(None, "/mail")
        except EEXIST:
            pass
        path = f"/mail/{owner}"
        gfile, __ = yield from fs.create_file(None, path,
                                              ftype=FileType.MAILBOX)
        handle = yield from fs.open_gfile(gfile, Mode.WRITE)
        try:
            data = yield from fs.read(handle, 0, handle.size)
            messages = decode_mailbox(data)
            messages.append(MailMessage(
                msg_id=f"{self.sid}-{int(self.site.sim.now * 1000)}-"
                       f"{next(self._mail_seq)}",
                sender="recovery-daemon",
                subject=subject, body=body,
                stamp=self.site.sim.now))
            yield from fs.truncate(handle)
            yield from fs.write(handle, 0, encode_mailbox(messages))
        finally:
            yield from fs.close(handle)
        return None

    def delete_mail(self, owner: str, msg_id: str) -> Generator:
        """Mark one message deleted (a tombstone, so partition merges never
        resurrect read-and-deleted mail, section 4.5)."""
        fs = self.site.fs
        gfile, __ = yield from fs.resolve_gfile(None, f"/mail/{owner}")
        handle = yield from fs.open_gfile(gfile, Mode.WRITE)
        try:
            data = yield from fs.read(handle, 0, handle.size)
            messages = decode_mailbox(data)
            for message in messages:
                if message.msg_id == msg_id:
                    message.deleted = True
            yield from fs.truncate(handle)
            yield from fs.write(handle, 0, encode_mailbox(messages))
        finally:
            yield from fs.close(handle)
        return None

    def read_mail(self, owner: str) -> Generator:
        """Convenience for tests/examples: the owner's mailbox contents."""
        fs = self.site.fs
        try:
            gfile, __ = yield from fs.resolve_gfile(None, f"/mail/{owner}")
        except FsError:
            return []
        handle = yield from fs.open_gfile(gfile, Mode.READ)
        try:
            data = yield from fs.read(handle, 0, handle.size)
        finally:
            yield from fs.close(handle)
        return [m for m in decode_mailbox(data) if not m.deleted]
