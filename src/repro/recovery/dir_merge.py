"""Reconciliation of a distributed hierarchical directory (section 4.4).

For directories there are two operations — insert and remove — yet the
merge rules are not simple, because (a) operations may be done to a file in
a partition which does not store the file, (b) a file deleted in one
partition while modified in another wants to be saved, and (c) a directory
may have to be resolved without either partition storing particular files.

Rules implemented (quoting the paper):

1. "Check for name conflicts.  For each name in the union of the
   directories, check that the inode numbers are the same.  If they aren't,
   both file names are slightly altered to be distinguished.  The owners of
   the two files are notified by electronic mail."
2. Per-inode resolution:
   a. entry in one and not the other: propagate the entry;
   b. deleted entry in one, absent in the other: propagate the delete,
      unless the data was modified since the delete;
   c. live entries in both: no action;
   d. delete in one, live in the other: interrogate the inode — if the data
      was modified since the delete, undo the delete; otherwise propagate
      the delete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.fs.directory import DirEntry
from repro.storage.version_vector import VersionVector


@dataclass
class DirMergeReport:
    """What the merge did, for mail notification and statistics."""

    name_conflicts: List[Tuple[str, int, int]] = field(default_factory=list)
    propagated_entries: int = 0
    propagated_deletes: int = 0
    undone_deletes: int = 0
    unchanged: int = 0


def _altered_name(name: str, ino: int) -> str:
    """Slightly alter a conflicting name so both files stay reachable."""
    return f"{name}@{ino}"


def _modified_since_delete(entry: DirEntry,
                           current_vv: Optional[VersionVector]) -> bool:
    """Has the file's data been modified since the tombstone was written?

    The tombstone recorded the file's version vector at delete time; a
    strictly dominating current vector means later modification.
    """
    if current_vv is None or entry.dvv is None:
        return False
    return (current_vv.dominates(entry.dvv)
            and current_vv != entry.dvv)


def merge_directories(
        copies: List[List[DirEntry]],
        file_version: Callable[[int], Optional[VersionVector]],
) -> Tuple[List[DirEntry], DirMergeReport]:
    """Merge k >= 1 divergent copies of one directory.

    ``file_version(ino)`` returns the file's *current* (post-merge) version
    vector, or None if no partition stores it — the rule-(d) inode
    interrogation.
    """
    report = DirMergeReport()
    merged: Dict[str, DirEntry] = {}
    # Once a name conflicts, every inode bound to it gets a stable alias so
    # folding a third or fourth copy maps entries consistently.
    aliases: Dict[str, Dict[int, str]] = {}
    # Tombstones displaced from a name by a different live file: remembered
    # so a later copy's live entry for the tombstoned inode still meets its
    # delete (keeps the fold order-independent).
    shadow_tombs: Dict[str, Dict[int, DirEntry]] = {}

    def place(entry: DirEntry, orig_name: str) -> None:
        tomb = shadow_tombs.get(orig_name, {}).get(entry.ino)
        if tomb is not None and not entry.deleted:
            entry = _resolve_pair(entry, _clone(tomb), file_version, report)
        current = merged.get(entry.name)
        if current is None:
            merged[entry.name] = _clone(entry)
            report.propagated_entries += 1
        else:
            merged[entry.name] = _resolve_pair(current, entry,
                                               file_version, report)

    def remember_tomb(orig_name: str, tomb: DirEntry) -> None:
        known = shadow_tombs.setdefault(orig_name, {})
        old = known.get(tomb.ino)
        if old is None or (tomb.dvv is not None
                           and (old.dvv is None
                                or tomb.dvv.dominates(old.dvv))):
            known[tomb.ino] = _clone(tomb)

    for entries in copies:
        for entry in entries:
            name = entry.name
            if name in aliases:
                amap = aliases[name]
                if entry.ino not in amap:
                    amap[entry.ino] = _altered_name(name, entry.ino)
                    report.name_conflicts.append(
                        (name, entry.ino, next(iter(amap))))
                aliased = _clone(entry)
                aliased.name = amap[entry.ino]
                place(aliased, name)
                continue
            # A live entry whose file was tombstoned under this name in
            # another copy (rename or remove, then the name re-used):
            # interrogate the inode first.  If the delete stands, the
            # entry folds in as a tombstone and never reaches the rule-1
            # name-conflict aliasing below.
            tomb = shadow_tombs.get(name, {}).get(entry.ino)
            if tomb is not None and not entry.deleted:
                entry = _resolve_pair(entry, _clone(tomb), file_version,
                                      report)
            current = merged.get(name)
            if current is not None and current.ino != entry.ino \
                    and name not in (".", ".."):
                live_current = not current.deleted
                live_entry = not entry.deleted
                if live_current and live_entry:
                    # Rule 1: same name, different files: rename both and
                    # remember the aliases for later copies.
                    report.name_conflicts.append(
                        (name, current.ino, entry.ino))
                    amap = {
                        current.ino: _altered_name(name, current.ino),
                        entry.ino: _altered_name(name, entry.ino),
                    }
                    aliases[name] = amap
                    del merged[name]
                    renamed_a = _clone(current)
                    renamed_a.name = amap[current.ino]
                    place(renamed_a, name)
                    renamed_b = _clone(entry)
                    renamed_b.name = amap[entry.ino]
                    place(renamed_b, name)
                    continue
                # A tombstone of a different file under the same name: the
                # live entry wins the name, and the tombstone is remembered
                # in case its file reappears from another copy.  Two
                # foreign tombstones keep the lower inode's record.
                if live_entry:
                    remember_tomb(name, current)
                    del merged[name]
                    place(entry, name)  # may meet its own shadow tombstone
                elif current.deleted and entry.deleted:
                    keep, remember = (entry, current) \
                        if entry.ino < current.ino else (current, entry)
                    remember_tomb(name, remember)
                    merged[name] = _clone(keep)
                else:
                    remember_tomb(name, entry)
                continue
            place(entry, name)

    result = sorted(merged.values(), key=lambda e: (e.name, e.ino))
    return result, report


def _resolve_pair(a: DirEntry, b: DirEntry,
                  file_version: Callable[[int], Optional[VersionVector]],
                  report: DirMergeReport) -> DirEntry:
    if a.deleted == b.deleted:
        if a.deleted:
            # Two tombstones: keep the one recording the later version.
            report.unchanged += 1
            if b.dvv is not None and (a.dvv is None
                                      or b.dvv.dominates(a.dvv)):
                return _clone(b)
            return _clone(a)
        report.unchanged += 1          # rule (c): both live, no action
        return _clone(a)
    dead, live = (a, b) if a.deleted else (b, a)
    current_vv = file_version(dead.ino)
    if _modified_since_delete(dead, current_vv):
        report.undone_deletes += 1     # rule (d): modified since: undo delete
        return _clone(live)
    report.propagated_deletes += 1     # rules (b)/(d): propagate the delete
    return _clone(dead)


def _clone(entry: DirEntry) -> DirEntry:
    return DirEntry(name=entry.name, ino=entry.ino, ftype=entry.ftype,
                    deleted=entry.deleted,
                    dvv=entry.dvv.copy() if entry.dvv is not None else None)
