"""Recovery: reconciliation of replicated storage after partition (section 4).

"The basic approach in LOCUS is to maintain, within a single partition,
strict synchronization among copies ...  Each partition operates
independently, however.  Upon merge, conflicts are reliably detected.  For
those data types which the system understands, automatic reconciliation is
done.  Otherwise, the problem is reported to a higher level ...  Eventually,
if necessary, the user is notified and tools are provided by which he can
interactively merge the copies."

The hierarchy implemented here:

* version vectors detect all conflicts ([PARK83]),
* directories and mailboxes are merged mechanically (sections 4.4, 4.5),
* registered per-type merge managers get a chance next (section 4.3),
* untyped files are marked in conflict, the owner is notified by mail, and
  a rename-based tool makes each version a normal file again (section 4.6).
"""

from repro.recovery.manager import RecoveryManager
from repro.recovery.dir_merge import merge_directories
from repro.recovery.mailbox import decode_mailbox, encode_mailbox, \
    merge_mailboxes

__all__ = ["RecoveryManager", "merge_directories", "decode_mailbox",
           "encode_mailbox", "merge_mailboxes"]
