"""Mailbox files and their reconciliation (section 4.5).

"Automatic reconciliation of user mailboxes is important in the LOCUS
replication system, since notification of name conflicts in files is done
by sending the user electronic mail ...  Mailboxes are even easier to merge
than directories: the operations are the same — insert and delete — but it
is easy to arrange for no name conflicts, and there are no link problems."

A mailbox is a MAILBOX-typed file whose content is a list of messages, each
globally uniquely identified; deletion keeps a tombstone so merges never
resurrect read-and-deleted mail.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List


@dataclass
class MailMessage:
    msg_id: str
    sender: str
    subject: str
    body: str
    stamp: float = 0.0
    deleted: bool = False

    def to_record(self) -> dict:
        return {"id": self.msg_id, "from": self.sender,
                "subject": self.subject, "body": self.body,
                "stamp": self.stamp, "deleted": self.deleted}

    @classmethod
    def from_record(cls, rec: dict) -> "MailMessage":
        return cls(msg_id=rec["id"], sender=rec["from"],
                   subject=rec["subject"], body=rec["body"],
                   stamp=rec.get("stamp", 0.0),
                   deleted=bool(rec.get("deleted")))


def encode_mailbox(messages: List[MailMessage]) -> bytes:
    records = [m.to_record()
               for m in sorted(messages, key=lambda m: (m.stamp, m.msg_id))]
    return json.dumps(records, separators=(",", ":")).encode()


def decode_mailbox(data: bytes) -> List[MailMessage]:
    if not data:
        return []
    text = data.rstrip(b"\x00").decode()
    if not text:
        return []
    return [MailMessage.from_record(rec) for rec in json.loads(text)]


def merge_mailboxes(copies: List[List[MailMessage]]) -> List[MailMessage]:
    """Union by message id; a delete seen anywhere wins."""
    merged: Dict[str, MailMessage] = {}
    for messages in copies:
        for msg in messages:
            existing = merged.get(msg.msg_id)
            if existing is None:
                merged[msg.msg_id] = msg
            elif msg.deleted and not existing.deleted:
                merged[msg.msg_id] = msg
    return sorted(merged.values(), key=lambda m: (m.stamp, m.msg_id))
