"""An interactive operator console for a simulated LOCUS network.

Run with::

    python -m repro.cli [--sites N] [--seed S]

and type ``help`` at the prompt.  Commands operate through an ordinary
per-site shell, so everything the console does exercises the real system
call paths; topology commands drive the experiment harness's hand on the
cables (partition / heal / crash / restart).

The ``trace`` subcommand runs a canned workload (or a FaultPlan file)
with the flight recorder on and dumps the causal trace::

    python -m repro.cli trace --workload storm --seed 11 --out /tmp/t \\
        --check

producing ``trace.jsonl`` (span schema, one record per line) and
``trace.chrome.json`` (load in https://ui.perfetto.dev).  See
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import os
import shlex
import sys
from typing import Dict, List, Optional

from repro import LocusCluster
from repro.errors import LocusError
from repro.tools import cluster_report, fsck
from repro.tools.inspect import format_report

HELP = """\
commands:
  ls [path]                 list a directory
  cat <path>                print a file
  write <path> <text...>    (over)write a file with text
  append <path> <text...>   append text
  mkdir <path>              create a directory
  rm <path>                 unlink a file
  rmdir <path>              remove an empty directory
  mv <old> <new>            rename
  ln <old> <new>            hard link
  stat <path>               inode attributes
  copies <n>                set this shell's replication factor
  site <n>                  switch to a shell on site n
  partition <g1> <g2> ...   split, e.g.  partition 0,1 2,3
  heal                      repair the network and merge
  crash <n> | boot <n>      fail / restart a site
  status                    cluster report
  fsck                      consistency check
  mail <user>               read a user's mailbox
  quit
"""


class Console:
    """State of one interactive session: a cluster plus per-site shells."""

    def __init__(self, n_sites: int = 3, seed: int = 0):
        self.cluster = LocusCluster(n_sites=n_sites, seed=seed)
        self._shells: Dict[int, object] = {}
        self.current = 0

    @property
    def shell(self):
        if self.current not in self._shells:
            self._shells[self.current] = self.cluster.shell(self.current)
        return self._shells[self.current]

    # -- command dispatch -------------------------------------------------

    def run_command(self, line: str) -> Optional[str]:
        """Execute one command line; returns output text (None to quit)."""
        try:
            argv = shlex.split(line)
        except ValueError as exc:
            return f"parse error: {exc}"
        if not argv:
            return ""
        cmd, args = argv[0], argv[1:]
        handler = getattr(self, f"cmd_{cmd}", None)
        if handler is None:
            return f"unknown command {cmd!r} (try: help)"
        try:
            return handler(args)
        except LocusError as exc:
            return f"error: {exc}"
        except (TypeError, IndexError):
            return f"usage error for {cmd!r} (try: help)"

    # -- filesystem commands -------------------------------------------------

    def cmd_help(self, args: List[str]) -> str:
        return HELP

    def cmd_ls(self, args: List[str]) -> str:
        path = args[0] if args else "/"
        return "  ".join(self.shell.readdir(path)) or "(empty)"

    def cmd_cat(self, args: List[str]) -> str:
        return self.shell.read_file(args[0]).decode(errors="replace")

    def cmd_write(self, args: List[str]) -> str:
        self.shell.write_file(args[0], " ".join(args[1:]).encode())
        return "ok"

    def cmd_append(self, args: List[str]) -> str:
        fd = self.shell.open(args[0], "w")
        try:
            self.shell.lseek(fd, 0, "end")
            self.shell.write(fd, (" ".join(args[1:])).encode())
        finally:
            self.shell.close(fd)
        return "ok"

    def cmd_mkdir(self, args: List[str]) -> str:
        self.shell.mkdir(args[0])
        return "ok"

    def cmd_rm(self, args: List[str]) -> str:
        self.shell.unlink(args[0])
        return "ok"

    def cmd_rmdir(self, args: List[str]) -> str:
        self.shell.rmdir(args[0])
        return "ok"

    def cmd_mv(self, args: List[str]) -> str:
        self.shell.rename(args[0], args[1])
        return "ok"

    def cmd_ln(self, args: List[str]) -> str:
        self.shell.link(args[0], args[1])
        return "ok"

    def cmd_stat(self, args: List[str]) -> str:
        attrs = self.shell.stat(args[0])
        return "\n".join(
            f"{key}: {attrs[key]}"
            for key in ("ino", "ftype", "size", "owner", "perms", "nlink",
                        "storage_sites", "version", "conflict"))

    def cmd_copies(self, args: List[str]) -> str:
        self.shell.setcopies(int(args[0]))
        return f"replication factor {args[0]}"

    def cmd_mail(self, args: List[str]) -> str:
        site = self.cluster.site(self.current)
        mail = self.cluster.call(self.current,
                                 site.recovery.read_mail(args[0]))
        if not mail:
            return "(no mail)"
        return "\n".join(f"[{m.subject}] {m.body}" for m in mail)

    # -- topology commands -------------------------------------------------

    def cmd_site(self, args: List[str]) -> str:
        n = int(args[0])
        if not 0 <= n < len(self.cluster.sites):
            return f"no site {n}"
        self.current = n
        return f"now at site {n}"

    def cmd_partition(self, args: List[str]) -> str:
        groups = [{int(x) for x in group.split(",")} for group in args]
        self.cluster.partition(*groups)
        return "partitioned: " + " | ".join(
            str(sorted(g)) for g in groups)

    def cmd_heal(self, args: List[str]) -> str:
        self.cluster.heal()
        return "healed; partition sets: " + str(
            [sorted(s.topology.partition_set)
             for s in self.cluster.sites if s.up])

    def cmd_crash(self, args: List[str]) -> str:
        self.cluster.fail_site(int(args[0]))
        self._shells.pop(int(args[0]), None)
        return f"site {args[0]} crashed"

    def cmd_boot(self, args: List[str]) -> str:
        self.cluster.restart_site(int(args[0]))
        return f"site {args[0]} rejoined"

    def cmd_status(self, args: List[str]) -> str:
        return format_report(cluster_report(self.cluster))

    def cmd_fsck(self, args: List[str]) -> str:
        return fsck(self.cluster).summary()

    def cmd_quit(self, args: List[str]) -> Optional[str]:
        return None

    cmd_exit = cmd_quit


# ----------------------------------------------------------------------
# trace subcommand: run a workload or FaultPlan, dump the flight recording
# ----------------------------------------------------------------------

def _storm_plan(seed: int, t0: float):
    """The T16 availability storm: crash/restart both storage sites, a
    loss burst, a latency spike, a scripted read drop, audited heals."""
    from repro.faults import FaultPlan
    return (FaultPlan(seed=seed, name="trace-storm")
            .crash(t0 + 300.0, site=1)
            .loss_burst(t0 + 1200.0, rate=0.08, duration=300.0)
            .restart(t0 + 2000.0, site=1)
            .heal(t0 + 2600.0)
            .crash(t0 + 3200.0, site=2)
            .latency_spike(t0 + 3600.0, delta=5.0, duration=400.0,
                           src=0, dst=1)
            .restart(t0 + 4800.0, site=2)
            .heal(t0 + 5400.0)
            .drop("fs.read_page", count=2, after_messages=600))


def _run_traced_workload(workload: str, seed: int, sites: int,
                         plan_file: Optional[str] = None):
    """Build a cluster with tracing on, drive the workload, return it."""
    from repro.faults import FaultPlan

    if workload == "storm":
        cluster = LocusCluster(n_sites=max(sites, 3), seed=seed,
                               root_pack_sites=[1, 2])
    else:
        cluster = LocusCluster(n_sites=sites, seed=seed,
                               root_pack_sites=[0] if sites > 1 else None)
    setup = cluster.shell(0)
    setup.setcopies(min(2, sites))
    content = bytes((i * 13) % 256 for i in range(4 * 1024))
    setup.write_file("/hot", content)
    setup.write_file("/w", b"w" * 256)
    cluster.settle()
    t0 = cluster.sim.now

    if plan_file is not None:
        with open(plan_file) as fh:
            cluster.inject(FaultPlan.from_json(fh.read()))
    elif workload == "storm":
        cluster.inject(_storm_plan(seed, t0))

    sim = cluster.sim
    api = cluster.shell(0).api
    n_reads = 60 if (workload == "storm" or plan_file) else 8
    n_writes = 12 if (workload == "storm" or plan_file) else 2

    def reader():
        for __ in range(n_reads):
            try:
                yield from api.read_file("/hot")
            except LocusError:
                pass
            yield 15.0

    def writer():
        for i in range(n_writes):
            try:
                yield from api.write_file("/w", bytes([i % 251]) * 256)
            except LocusError:
                pass
            yield 150.0

    cluster.spawn(0, reader())
    cluster.spawn(0, writer())
    cluster.settle(max_time=40_000.0)
    return cluster


def trace_main(argv: List[str]) -> int:
    from repro.obs import export_chrome, export_jsonl, validate_trace_jsonl
    parser = argparse.ArgumentParser(
        prog="repro.cli trace",
        description="Run a workload with the flight recorder on and dump "
                    "the trace (JSONL + Chrome/Perfetto format).")
    parser.add_argument("--workload", choices=("smoke", "storm"),
                        default="smoke")
    parser.add_argument("--plan", default=None,
                        help="FaultPlan JSON file to inject instead of the "
                             "canned storm")
    parser.add_argument("--sites", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--check", action="store_true",
                        help="validate the exported JSONL against the span "
                             "schema; non-zero exit on problems")
    parser.add_argument("--critical-path", action="store_true",
                        help="decompose each syscall's latency into "
                             "queue/wire/service/local blame tables "
                             "(also writes critpath.json)")
    opts = parser.parse_args(argv)

    cluster = _run_traced_workload(opts.workload, opts.seed, opts.sites,
                                   plan_file=opts.plan)
    os.makedirs(opts.out, exist_ok=True)
    jsonl_path = os.path.join(opts.out, "trace.jsonl")
    chrome_path = os.path.join(opts.out, "trace.chrome.json")
    from repro.obs.load import load_records
    n_records = export_jsonl(cluster.tracer, jsonl_path,
                             extra=load_records(cluster))
    n_events = export_chrome(cluster.tracer, chrome_path)

    tracer = cluster.tracer
    print(f"workload={opts.workload} seed={opts.seed} "
          f"vtime={cluster.sim.now:.1f}")
    print(f"{len(tracer.spans)} spans, {len(tracer.instants)} instants")
    print(f"wrote {jsonl_path} ({n_records} records)")
    print(f"wrote {chrome_path} ({n_events} events)")
    for site in cluster.sites:
        for name, stats in sorted(
                site.metrics.latency_summary("syscall.").items()):
            print(f"  site{site.site_id} {name}: n={stats['count']} "
                  f"p50={stats['p50']} p95={stats['p95']} "
                  f"p99={stats['p99']}")
    if opts.critical_path:
        import json
        from repro.obs.critpath import analyze, format_blame
        report = analyze(cluster.tracer)
        print(format_blame(report))
        critpath_path = os.path.join(opts.out, "critpath.json")
        with open(critpath_path, "w") as fh:
            json.dump(report.to_dict(), fh, sort_keys=True, indent=1)
            fh.write("\n")
        print(f"wrote {critpath_path}")
    if opts.check:
        problems = validate_trace_jsonl(jsonl_path)
        if problems:
            for p in problems:
                print(f"SCHEMA: {p}", file=sys.stderr)
            return 1
        print("schema check: ok")
    return 0


# ----------------------------------------------------------------------
# top subcommand: deterministic cluster status report
# ----------------------------------------------------------------------

def _top_workload(seed: int, sites: int, ops: int):
    """Drive a Zipf-skewed read workload over two filegroups and return
    ``(cluster, paths)``.  Everything is derived from the seed, so the
    ``top`` report over the result is byte-deterministic."""
    import random
    from repro.workloads.generators import build_tree, sample_paths

    rng = random.Random(seed * 7919 + 13)
    cluster = LocusCluster(n_sites=sites, seed=seed)
    setup = cluster.shell(0)
    paths = build_tree(setup, n_dirs=3, files_per_dir=4, file_size=512,
                       rng=rng, prefix="/w", copies=min(2, sites))
    # A second, cold filegroup so the CSS table has something to rank.
    setup.mkdir("/aux")
    cluster.add_filegroup("aux", pack_sites=[sites - 1], mount_at="/aux")
    setup.write_file("/aux/cold", b"c" * 256)
    cluster.settle()
    reader = cluster.shell(min(1, sites - 1))
    for path in sample_paths(rng, paths, ops):
        try:
            reader.read_file(path)
        except LocusError:
            pass
    try:
        reader.read_file("/aux/cold")
    except LocusError:
        pass
    cluster.settle()
    return cluster, paths


def top_main(argv: List[str]) -> int:
    from repro.obs.load import format_top
    parser = argparse.ArgumentParser(
        prog="repro.cli top",
        description="Deterministic cluster status report: per-site "
                    "syscall/RPC rates, hottest inodes, CSS load ranking, "
                    "open conflicts and scrub/recovery backlog.")
    parser.add_argument("--sites", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ops", type=int, default=60,
                        help="Zipf-sampled reads to drive before reporting")
    opts = parser.parse_args(argv)
    cluster, __ = _top_workload(opts.seed, opts.sites, opts.ops)
    print(format_top(cluster))
    return 0


# ----------------------------------------------------------------------
# fuzz subcommand: randomized scenarios, auto-shrinking, soak loops
# ----------------------------------------------------------------------

def fuzz_main(argv: List[str]) -> int:
    from repro.fuzz import FuzzPlan, run_plan, soak
    parser = argparse.ArgumentParser(
        prog="repro.cli fuzz",
        description="Chaos fuzzing: run seeded random workload+fault "
                    "scenarios against the cluster, judge the merged end "
                    "state, auto-shrink failures to minimal replayable "
                    "plans (see docs/FAULTS.md).")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; soak runs use seed, seed+1, ...")
    parser.add_argument("--runs", type=int, default=None,
                        help="number of scenarios (default 1, or until "
                             "--soak expires)")
    parser.add_argument("--soak", type=float, default=None, metavar="MIN",
                        help="keep fuzzing for this many wall-clock "
                             "minutes")
    parser.add_argument("--shrink", action="store_true",
                        help="auto-shrink failing scenarios to minimal "
                             "plans")
    parser.add_argument("--replay", default=None, metavar="PLAN.json",
                        help="replay a committed FuzzPlan instead of "
                             "generating scenarios")
    parser.add_argument("--ops", type=int, default=60,
                        help="workload ops per generated scenario")
    parser.add_argument("--faults", type=int, default=8,
                        help="fault events per generated scenario")
    parser.add_argument("--sites", type=int, default=3)
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write failing plans (and shrunk minima) "
                             "here, named fuzz-<seed>[-shrunk].json")
    opts = parser.parse_args(argv)

    if opts.replay is not None:
        with open(opts.replay) as fh:
            plan = FuzzPlan.from_json(fh.read())
        result = run_plan(plan)
        print(result.report())
        digest = result.digest()
        print(f"run digest: {digest}")
        if plan.expect_digest is not None and digest != plan.expect_digest:
            # The plan no longer reproduces the interleaving it was
            # minimised for: its regression value is gone even if the run
            # happens to pass, so fail loudly and say what drifted.
            print(f"digest mismatch: expected {plan.expect_digest}, "
                  f"got {digest} — the recorded fault interleaving no "
                  f"longer reproduces")
            return 1
        return 0 if result.ok else 1

    runs = opts.runs
    if runs is None and opts.soak is None:
        runs = 1
    stats = soak(opts.seed, runs=runs, minutes=opts.soak,
                 n_ops=opts.ops, n_faults=opts.faults,
                 n_sites=opts.sites, shrink=opts.shrink,
                 out_dir=opts.out, log=print)
    print(stats.report())
    return 0 if stats.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "top":
        return top_main(argv[1:])
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    opts = parser.parse_args(argv)
    console = Console(n_sites=opts.sites, seed=opts.seed)
    print(f"LOCUS console: {opts.sites} sites (type 'help')")
    while True:
        try:
            line = input(f"locus[site {console.current}]$ ")
        except EOFError:
            break
        out = console.run_command(line)
        if out is None:
            break
        if out:
            print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
