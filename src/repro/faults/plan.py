"""Fault plans: seeded, serialisable scripts of failure events.

A plan is data, not code: it round-trips through JSON so a violation report
can carry the exact script that produced it, and replaying the same seed and
plan yields an identical event trace (the simulator owns all randomness).

Events fire on one of two triggers:

* ``at`` — an absolute virtual time;
* ``after_messages`` — after the network has carried that many messages
  (optionally only counting a specific ``mtype``), for faults that must land
  mid-protocol regardless of how long the protocol takes to start.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, List, Optional

KINDS = ("crash", "restart", "partition", "heal", "loss_burst",
         "latency_spike", "disk_errors", "drop")


@dataclass
class FaultEvent:
    """One scripted fault.  Which fields matter depends on ``kind``:

    =============  ========================================================
    kind           fields used
    =============  ========================================================
    crash          at, site
    restart        at, site, merge
    partition      at, groups
    heal           at, merge
    loss_burst     at, rate, duration
    latency_spike  at, delta, duration, src/dst (omit both = every pair)
    disk_errors    at, site, count, gfs (omit = every local pack)
    drop           at and/or after_messages, mtype, count
    =============  ========================================================
    """

    kind: str
    at: Optional[float] = None
    after_messages: Optional[int] = None
    mtype: Optional[str] = None
    site: Optional[int] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    groups: Optional[List[List[int]]] = None
    rate: Optional[float] = None
    duration: Optional[float] = None
    delta: Optional[float] = None
    count: Optional[int] = None
    gfs: Optional[int] = None
    merge: bool = True

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at is None and self.after_messages is None:
            raise ValueError(f"{self.kind}: needs 'at' or 'after_messages'")

    def to_dict(self) -> dict:
        return {k: v for k, v in asdict(self).items() if v is not None}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(**data)


@dataclass
class FaultPlan:
    """An ordered fault script plus the seed that makes it reproducible.

    The builder methods chain::

        plan = (FaultPlan(seed=11)
                .crash(at=500.0, site=1)
                .restart(at=900.0, site=1)
                .heal(at=1500.0))
    """

    seed: int = 0
    name: str = "plan"
    # Queue a quiescence-time invariant check after every heal event.
    check_after_heal: bool = True
    events: List[FaultEvent] = field(default_factory=list)

    # -- builder ---------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def crash(self, at: float, site: int) -> "FaultPlan":
        return self.add(FaultEvent("crash", at=at, site=site))

    def restart(self, at: float, site: int, merge: bool = True) -> "FaultPlan":
        return self.add(FaultEvent("restart", at=at, site=site, merge=merge))

    def partition(self, at: float, *groups: Iterable[int]) -> "FaultPlan":
        return self.add(FaultEvent("partition", at=at,
                                   groups=[sorted(g) for g in groups]))

    def heal(self, at: float, merge: bool = True) -> "FaultPlan":
        return self.add(FaultEvent("heal", at=at, merge=merge))

    def loss_burst(self, at: float, rate: float,
                   duration: float) -> "FaultPlan":
        return self.add(FaultEvent("loss_burst", at=at, rate=rate,
                                   duration=duration))

    def latency_spike(self, at: float, delta: float, duration: float,
                      src: Optional[int] = None,
                      dst: Optional[int] = None) -> "FaultPlan":
        return self.add(FaultEvent("latency_spike", at=at, delta=delta,
                                   duration=duration, src=src, dst=dst))

    def disk_errors(self, at: float, site: int, count: int = 1,
                    gfs: Optional[int] = None) -> "FaultPlan":
        return self.add(FaultEvent("disk_errors", at=at, site=site,
                                   count=count, gfs=gfs))

    def drop(self, mtype: str, count: int = 1,
             after_messages: Optional[int] = None,
             at: Optional[float] = None) -> "FaultPlan":
        if after_messages is None and at is None:
            at = 0.0
        return self.add(FaultEvent("drop", at=at,
                                   after_messages=after_messages,
                                   mtype=mtype, count=count))

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        return {"seed": self.seed, "name": self.name,
                "check_after_heal": self.check_after_heal,
                "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(seed=data.get("seed", 0), name=data.get("name", "plan"),
                   check_after_heal=data.get("check_after_heal", True),
                   events=[FaultEvent.from_dict(e)
                           for e in data.get("events", [])])

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))
