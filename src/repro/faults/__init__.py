"""Deterministic fault-injection engine.

A :class:`FaultPlan` is a seeded script of failure events (site crashes,
partitions, loss bursts, latency spikes, disk write errors, targeted
message drops) fired at virtual times or message-count triggers.  The
:class:`FaultInjector` arms a plan against a live cluster and records a
deterministic event trace; the :class:`InvariantChecker` audits the
filesystem at quiescence after every heal and reports violations together
with the seed and plan JSON that reproduce them.

See docs/FAULTS.md for the schema and determinism guarantees.
"""

from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, Violation

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector", "InvariantChecker",
           "Violation"]
