"""The fault injector: arms a :class:`FaultPlan` against a live cluster.

Virtual-time events ride the simulator's own heap; message-count triggers
ride a network tap.  Either way the action itself runs from a scheduled
event (never from inside ``Network.send``), so injection can never reenter
the protocol mid-message.

Everything the injector does is recorded in ``trace`` — a list of
``(vtime, kind, detail)`` tuples — and because all randomness flows from
the simulator's seed, replaying the same seed and plan yields a
byte-identical trace.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.faults.invariants import InvariantChecker, Violation
from repro.faults.plan import FaultEvent, FaultPlan


class FaultInjector:

    def __init__(self, cluster, plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.checker = InvariantChecker(cluster, plan)
        self.trace: List[Tuple[float, str, str]] = []
        self.violations: List[Violation] = []
        self.messages_seen = 0
        self._per_mtype: Dict[str, int] = {}
        self._msg_triggers: List[FaultEvent] = []
        self._scheduled: List[object] = []
        self._pending_checks = 0
        self._armed = False

    # -- arming ----------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Schedule every event of the plan; install the counting tap and
        the quiescence hook for post-heal invariant checks."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        sim = self.cluster.sim
        for ev in self.plan.events:
            if ev.after_messages is not None:
                self._msg_triggers.append(ev)
            else:
                delay = max(0.0, ev.at - sim.now)
                self._scheduled.append(sim.schedule(delay, self._fire, ev))
        self.cluster.net.taps.append(self._tap)
        sim.idle_hooks.append(self._on_idle)
        return self

    def disarm(self) -> None:
        """Cancel everything still pending (scripts that outlive a test)."""
        for ev in self._scheduled:
            ev.cancel()
        self._scheduled.clear()
        self._msg_triggers.clear()
        net, sim = self.cluster.net, self.cluster.sim
        if self._tap in net.taps:
            net.taps.remove(self._tap)
        if self._on_idle in sim.idle_hooks:
            sim.idle_hooks.remove(self._on_idle)

    # -- triggers --------------------------------------------------------

    def _tap(self, msg) -> None:
        self.messages_seen += 1
        self._per_mtype[msg.mtype] = self._per_mtype.get(msg.mtype, 0) + 1
        ready = []
        for ev in self._msg_triggers:
            seen = (self._per_mtype.get(ev.mtype, 0) if ev.mtype
                    else self.messages_seen)
            if seen >= ev.after_messages:
                ready.append(ev)
        for ev in ready:
            self._msg_triggers.remove(ev)
            # Fire from the event queue, not from inside send().
            self.cluster.sim.call_soon(self._fire, ev)

    def _on_idle(self) -> None:
        """Quiescence: the moment a post-heal check is safe (no in-flight
        protocol activity left to race with)."""
        if not self._pending_checks:
            return
        self._pending_checks = 0
        found = self.checker.check()
        self.violations.extend(found)
        self._note("invariant_check", f"violations={len(found)}")

    # -- actions ---------------------------------------------------------

    def _fire(self, ev: FaultEvent) -> None:
        self._note(ev.kind, json.dumps(ev.to_dict(), sort_keys=True))
        getattr(self, f"_do_{ev.kind}")(ev)

    def _do_crash(self, ev: FaultEvent) -> None:
        self.cluster.site(ev.site).crash()

    def _do_restart(self, ev: FaultEvent) -> None:
        site = self.cluster.site(ev.site)
        site.restart()
        if ev.merge:
            site.topology.request_merge()

    def _do_partition(self, ev: FaultEvent) -> None:
        self.cluster.net.set_partitions([set(g) for g in ev.groups])

    def _do_heal(self, ev: FaultEvent) -> None:
        self.cluster.net.heal()
        if ev.merge:
            up = [s.site_id for s in self.cluster.sites if s.up]
            if up:
                self.cluster.site(min(up)).topology.request_merge()
        if self.plan.check_after_heal:
            self._pending_checks += 1

    def _do_loss_burst(self, ev: FaultEvent) -> None:
        net = self.cluster.net
        prev = net.loss_rate
        net.loss_rate = ev.rate

        def _restore() -> None:
            net.loss_rate = prev
            self._note("loss_restore", f"rate={prev}")

        self._scheduled.append(
            self.cluster.sim.schedule(ev.duration, _restore))

    def _latency_pairs(self, ev: FaultEvent) -> List[tuple]:
        if ev.src is not None and ev.dst is not None:
            return [(ev.src, ev.dst)]
        ids = self.cluster.net.site_ids
        if ev.src is not None:
            return [(ev.src, d) for d in ids if d != ev.src]
        if ev.dst is not None:
            return [(s, ev.dst) for s in ids if s != ev.dst]
        return [(s, d) for s in ids for d in ids if s != d]

    def _do_latency_spike(self, ev: FaultEvent) -> None:
        net = self.cluster.net
        pairs = self._latency_pairs(ev)
        for pair in pairs:
            net.extra_latency[pair] = net.extra_latency.get(pair, 0.0) \
                + ev.delta

        def _restore() -> None:
            for pair in pairs:
                left = net.extra_latency.get(pair, 0.0) - ev.delta
                if left <= 0:
                    net.extra_latency.pop(pair, None)
                else:
                    net.extra_latency[pair] = left
            self._note("latency_restore", f"delta={ev.delta}")

        self._scheduled.append(
            self.cluster.sim.schedule(ev.duration, _restore))

    def _do_disk_errors(self, ev: FaultEvent) -> None:
        site = self.cluster.site(ev.site)
        packs = ([site.packs[ev.gfs]] if ev.gfs is not None
                 else list(site.packs.values()))
        for pack in packs:
            pack.write_faults += ev.count or 1

    def _do_drop(self, ev: FaultEvent) -> None:
        net = self.cluster.net
        remaining = [ev.count or 1]

        def _filter(msg) -> bool:
            if ev.mtype is not None and msg.mtype != ev.mtype:
                return False
            if remaining[0] <= 0:
                return False
            remaining[0] -= 1
            self._note("dropped", msg.mtype)
            if remaining[0] == 0:
                # Remove from the event queue, not mid-iteration of send().
                self.cluster.sim.call_soon(self._remove_filter, _filter)
            return True

        net.drop_filters.append(_filter)

    def _remove_filter(self, fn) -> None:
        try:
            self.cluster.net.drop_filters.remove(fn)
        except ValueError:
            pass

    # -- reporting -------------------------------------------------------

    _DAMAGE_KINDS = frozenset({
        "crash", "restart", "partition", "heal", "loss_burst",
        "latency_spike", "disk_errors", "drop", "dropped"})

    def _note(self, kind: str, detail: str) -> None:
        self.trace.append((self.cluster.sim.now, kind, detail))
        # Mirror every injector action onto the flight-recorder timeline so
        # an exported trace shows faults alongside the spans they perturb.
        tracer = getattr(self.cluster, "tracer", None)
        if tracer is not None and tracer.enabled:
            tracer.instant(f"fault.{kind}", attrs={"detail": detail})
        # Damage-capable actions also stamp the convergence monitor: the
        # divergence detection-latency metric measures from the last such
        # vtime (audits and restores are excluded — they repair, not harm).
        if kind in self._DAMAGE_KINDS:
            monitor = getattr(self.cluster, "convergence", None)
            if monitor is not None and monitor.enabled:
                monitor.note_fault(kind)

    def report(self) -> str:
        lines = [f"plan {self.plan.name!r} seed={self.plan.seed}: "
                 f"{len(self.trace)} events, "
                 f"{len(self.violations)} violations"]
        lines += [f"  t={t:10.3f}  {kind:16s} {detail}"
                  for t, kind, detail in self.trace]
        lines += [f"  VIOLATION {v}" for v in self.violations]
        return "\n".join(lines)
