"""Invariants audited at quiescence after every heal.

Two layers:

* the full read-only :func:`repro.tools.fsck.fsck` audit (reachability,
  dangling entries, placement, unflagged version conflicts, link counts);
* replica divergence — stricter than fsck's conflict check: once a merge
  has settled, every reachable data copy of a file must carry *equal*
  version vectors.  A copy that is merely dominated (stale but not
  conflicting) means propagation silently failed to converge.

The checker is strictly read-only — it never repairs, settles, or
schedules events, so it is safe to run from the simulator's idle hook.
Violations carry the seed and plan JSON that reproduce them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class Violation:
    kind: str
    detail: str
    seed: int
    plan_json: str

    def __str__(self) -> str:
        return (f"[{self.kind}] {self.detail} "
                f"(reproduce: seed={self.seed} plan={self.plan_json})")


class InvariantChecker:

    def __init__(self, cluster, plan: Optional[object] = None):
        self.cluster = cluster
        self.plan = plan

    def _make(self, kind: str, detail: str) -> Violation:
        seed = self.plan.seed if self.plan is not None \
            else self.cluster.config.seed
        plan_json = self.plan.to_json() if self.plan is not None else "{}"
        return Violation(kind=kind, detail=detail, seed=seed,
                         plan_json=plan_json)

    def check(self) -> List[Violation]:
        out: List[Violation] = []
        out.extend(self._fsck_violations())
        out.extend(self._replica_divergence())
        out.extend(self._ledger_audit())
        return out

    def _fsck_violations(self) -> List[Violation]:
        from repro.tools.fsck import fsck
        report = fsck(self.cluster)
        out: List[Violation] = []
        for category in ("orphan_inodes", "dangling_entries",
                         "placement_errors", "content_mismatch",
                         "unflagged_conflicts", "nlink_errors"):
            for item in getattr(report, category):
                out.append(self._make(f"fsck:{category}", repr(item)))
        return out

    def _ledger_audit(self) -> List[Violation]:
        """Exactly-once audit over every pack's durable ledger.

        Two directions: no stamped op executed more than once against the
        same pack (the ledger's whole point), and no memoized reply exists
        for an op that never executed here (a forged or misplaced entry
        would silently swallow a real mutation).  The same stamp *may*
        legitimately execute at two different packs — a write-path failover
        re-homes an ambiguous commit, and the version-vector floor makes
        the survivor dominate — so the audit is strictly per-pack.
        """
        out: List[Violation] = []
        for site in self.cluster.sites:
            for gfs, pack in sorted(site.packs.items()):
                for key, count in sorted(pack.applied_ops.items()):
                    if count > 1:
                        out.append(self._make(
                            "ledger:double_apply",
                            f"site={site.site_id} gfs={gfs} stamp={key} "
                            f"applied {count} times"))
                if pack.ledger is None:
                    continue
                for client, seq in sorted(pack.ledger.entries()):
                    if (client, seq) not in pack.applied_ops:
                        out.append(self._make(
                            "ledger:entry_without_apply",
                            f"site={site.site_id} gfs={gfs} "
                            f"stamp=({client}, {seq}) memoized but never "
                            f"applied"))
        return out

    def _replica_divergence(self) -> List[Violation]:
        out: List[Violation] = []
        cluster = self.cluster
        mount = cluster.sites[0].fs.mount
        for gfs in sorted(mount.groups):
            packs = {}
            for site_id in mount.pack_sites(gfs):
                site = cluster.site(site_id)
                if site.up and gfs in site.packs:
                    packs[site_id] = site.packs[gfs]
            inos = sorted({ino for pack in packs.values()
                           for ino in pack.inodes})
            for ino in inos:
                copies = [(s, p.inodes[ino]) for s, p in sorted(packs.items())
                          if ino in p.inodes]
                data = [(s, i) for s, i in copies
                        if i.has_data and not i.deleted and not i.conflict]
                if len(data) < 2:
                    continue
                first = data[0][1].version
                if any(i.version != first for __, i in data[1:]):
                    versions = {s: i.version.to_dict() for s, i in data}
                    out.append(self._make(
                        "replica_divergence",
                        f"gfile=({gfs},{ino}) versions={versions}"))
        return out
