"""Partitioned operation and reconciliation (paper section 4).

These tests drive the full lifecycle: partition -> independent updates in
both subnetworks -> merge -> conflict detection by version vectors ->
type-specific reconciliation (directories, mailboxes) or conflict marking
with mail notification for untyped files.
"""

import pytest

from repro import FileType, LocusCluster
from repro.errors import ECONFLICT, ENOENT
from repro.recovery.mailbox import decode_mailbox


@pytest.fixture
def cluster():
    """Four sites, root filegroup packed everywhere, CSS at site 0."""
    return LocusCluster(n_sites=4, seed=23)


def fully_replicated(cluster, sh, path, data):
    sh.setcopies(4)
    sh.write_file(path, data)
    cluster.settle()


class TestPartitionedOperation:
    def test_both_partitions_keep_working(self, cluster):
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        fully_replicated(cluster, sh0, "/shared", b"base")
        cluster.partition({0, 1}, {2, 3})
        # Both sides read and write the replicated file independently.
        assert sh0.read_file("/shared") == b"base"
        assert sh2.read_file("/shared") == b"base"
        sh0.write_file("/left-only", b"left")
        sh2.write_file("/right-only", b"right")
        assert sh0.read_file("/left-only") == b"left"
        assert sh2.read_file("/right-only") == b"right"

    def test_cross_partition_single_copy_unavailable(self, cluster):
        sh0 = cluster.shell(0)
        sh3 = cluster.shell(3)
        sh3.write_file("/only3", b"x")    # one copy, at site 3
        cluster.settle()
        cluster.partition({0, 1}, {2, 3})
        with pytest.raises(ENOENT):
            sh0.read_file("/only3")
        assert sh3.read_file("/only3") == b"x"

    def test_css_reelected_per_partition(self, cluster):
        cluster.partition({0, 1}, {2, 3})
        # Each partition has exactly one CSS for the root filegroup.
        assert cluster.site(0).fs.mount.css_for(0) == 0
        assert cluster.site(1).fs.mount.css_for(0) == 0
        assert cluster.site(2).fs.mount.css_for(0) == 2
        assert cluster.site(3).fs.mount.css_for(0) == 2

    def test_update_allowed_in_every_partition(self, cluster):
        """Section 4.1: "can a data object be updated during partition?
        In our judgment, the answer must be yes"."""
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        fully_replicated(cluster, sh0, "/both", b"base")
        cluster.partition({0, 1}, {2, 3})
        sh0.write_file("/both", b"left version")
        sh2.write_file("/both", b"right version")
        assert sh0.read_file("/both") == b"left version"
        assert sh2.read_file("/both") == b"right version"


class TestMergeWithoutConflict:
    def test_single_sided_update_propagates_after_merge(self, cluster):
        """Modified at S1 only: the copy propagates, no conflict (the
        paper's f/f1 example in section 4.2)."""
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        fully_replicated(cluster, sh0, "/f", b"original")
        cluster.partition({0, 1}, {2, 3})
        sh0.write_file("/f", b"modified on the left")
        cluster.heal()
        cluster.settle()
        assert sh2.read_file("/f") == b"modified on the left"
        # All four copies converge to one version vector.
        ino = sh0.stat("/f")["ino"]
        versions = {cluster.site(s).packs[0].get_inode(ino).version
                    for s in range(4)}
        assert len(versions) == 1

    def test_files_created_in_partition_visible_after_merge(self, cluster):
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        cluster.partition({0, 1}, {2, 3})
        sh0.write_file("/new-left", b"L")
        sh2.write_file("/new-right", b"R")
        cluster.heal()
        cluster.settle()
        # Directory merge united both partitions' inserts.
        assert sh0.read_file("/new-right") == b"R"
        assert sh2.read_file("/new-left") == b"L"
        names = set(sh0.readdir("/"))
        assert {"new-left", "new-right"} <= names

    def test_partitioned_creates_never_collide(self, cluster):
        """Per-pack inode pools (section 2.3.7) make partitioned creates
        allocate disjoint inode numbers."""
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        cluster.partition({0, 1}, {2, 3})
        for i in range(5):
            sh0.write_file(f"/L{i}", b"l")
            sh2.write_file(f"/R{i}", b"r")
        cluster.heal()
        cluster.settle()
        inos = [sh0.stat(f"/L{i}")["ino"] for i in range(5)]
        inos += [sh0.stat(f"/R{i}")["ino"] for i in range(5)]
        assert len(set(inos)) == 10


class TestDirectoryMerge:
    def test_delete_in_one_partition_propagates(self, cluster):
        """Rule (b): a deleted entry in one directory propagates unless the
        data was modified since the delete."""
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        fully_replicated(cluster, sh0, "/doomed", b"delete me")
        cluster.partition({0, 1}, {2, 3})
        sh0.unlink("/doomed")
        cluster.heal()
        cluster.settle()
        with pytest.raises(ENOENT):
            sh2.read_file("/doomed")
        assert "doomed" not in sh2.readdir("/")

    def test_delete_vs_modify_saves_the_file(self, cluster):
        """Rule (d) and section 4.4(b): "a file which was deleted in one
        partition while it was modified in another, wants to be saved"."""
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        fully_replicated(cluster, sh0, "/contested", b"v1")
        cluster.partition({0, 1}, {2, 3})
        sh0.unlink("/contested")
        sh2.write_file("/contested", b"v2 modified on the right")
        cluster.heal()
        cluster.settle()
        # The modification survives; the delete is undone.
        assert sh0.read_file("/contested") == b"v2 modified on the right"
        assert sh2.read_file("/contested") == b"v2 modified on the right"

    def test_name_conflict_renames_both_and_mails_owners(self, cluster):
        """Rule 1: same name bound to different inodes in two partitions:
        both names are slightly altered and the owners notified by mail."""
        sh0, sh2 = cluster.shell(0, user="alice"), cluster.shell(2,
                                                                 user="bob")
        cluster.partition({0, 1}, {2, 3})
        sh0.write_file("/clash", b"alice's file")
        sh2.write_file("/clash", b"bob's file")
        cluster.heal()
        cluster.settle()
        names = [n for n in cluster.shell(0).readdir("/")
                 if n.startswith("clash")]
        assert len(names) == 2 and "clash" not in names
        contents = {cluster.shell(1).read_file(f"/{n}") for n in names}
        assert contents == {b"alice's file", b"bob's file"}
        # Owners got mail about it.
        mail_alice = cluster.call(
            0, cluster.site(0).recovery.read_mail("alice"))
        mail_bob = cluster.call(0, cluster.site(0).recovery.read_mail("bob"))
        assert any("name conflict" in m.subject for m in mail_alice)
        assert any("name conflict" in m.subject for m in mail_bob)

    def test_divergent_directory_inserts_union(self, cluster):
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        sh0.setcopies(4)
        sh0.mkdir("/proj")
        cluster.settle()
        cluster.partition({0, 1}, {2, 3})
        sh0.write_file("/proj/a", b"A")
        sh2.write_file("/proj/b", b"B")
        cluster.heal()
        cluster.settle()
        assert set(sh0.readdir("/proj")) == {"a", "b"}
        assert set(sh2.readdir("/proj")) == {"a", "b"}


class TestUntypedConflicts:
    def _make_conflict(self, cluster):
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        fully_replicated(cluster, sh0, "/data", b"base")
        cluster.partition({0, 1}, {2, 3})
        sh0.write_file("/data", b"left write")
        sh2.write_file("/data", b"right write")
        cluster.heal()
        cluster.settle()
        return sh0, sh2

    def test_conflicting_updates_detected_and_marked(self, cluster):
        sh0, __ = self._make_conflict(cluster)
        with pytest.raises(ECONFLICT):
            sh0.open("/data")

    def test_conflict_owner_notified_by_mail(self, cluster):
        self._make_conflict(cluster)
        mail = cluster.call(0, cluster.site(0).recovery.read_mail("root"))
        assert any("update conflict" in m.subject for m in mail)

    def test_conflict_access_can_be_overridden(self, cluster):
        sh0, __ = self._make_conflict(cluster)
        fd = sh0.open("/data", allow_conflict=True)
        assert sh0.read(fd, 100) in (b"left write", b"right write")
        sh0.close(fd)

    def test_resolve_conflict_picks_winner(self, cluster):
        sh0, sh2 = self._make_conflict(cluster)
        gfile = (0, sh0.stat("/data")["ino"])
        cluster.call(0, cluster.site(0).recovery.resolve_conflict(gfile, 2))
        cluster.settle()
        assert sh0.read_file("/data") == b"right write"
        assert sh2.read_file("/data") == b"right write"

    def test_split_conflict_makes_each_version_a_file(self, cluster):
        sh0, __ = self._make_conflict(cluster)
        new_names = cluster.call(
            0, cluster.site(0).recovery.split_conflict(None, "/data"))
        cluster.settle()
        assert len(new_names) == 2
        contents = {sh0.read_file(n) for n in new_names}
        assert contents == {b"left write", b"right write"}
        with pytest.raises(ENOENT):
            sh0.read_file("/data")


class TestMailboxMerge:
    def test_mailboxes_merge_by_union(self, cluster):
        """Section 4.5: mailbox merge unions messages; deletes win."""
        rec0 = cluster.site(0).recovery
        rec2 = cluster.site(2).recovery
        # Replicate /mail and the mailbox everywhere before partitioning
        # (a mailbox a partition cannot reach cannot receive mail there).
        boot = cluster.shell(0)
        boot.setcopies(4)
        boot.mkdir("/mail")
        cluster.call(0, rec0.send_mail("carol", "first", "hello"))
        for s in range(1, 4):
            boot.add_replica("/mail/carol", s)
        cluster.settle()
        cluster.partition({0, 1}, {2, 3})
        cluster.call(0, rec0.send_mail("carol", "from-left", "L"))
        cluster.call(2, rec2.send_mail("carol", "from-right", "R"))
        cluster.heal()
        cluster.settle()
        mail = cluster.call(0, rec0.read_mail("carol"))
        subjects = {m.subject for m in mail}
        assert {"first", "from-left", "from-right"} <= subjects
        mail3 = cluster.call(3, cluster.site(3).recovery.read_mail("carol"))
        assert {m.subject for m in mail3} == subjects

    def test_deleted_mail_stays_deleted_across_merge(self, cluster):
        """A message read-and-deleted in one partition must not be
        resurrected by the copy in the other (section 4.5 tombstones)."""
        boot = cluster.shell(0)
        boot.setcopies(4)
        boot.mkdir("/mail")
        rec0 = cluster.site(0).recovery
        cluster.call(0, rec0.send_mail("dave", "old-news", "stale"))
        for s in range(1, 4):
            boot.add_replica("/mail/dave", s)
        cluster.settle()
        victim_id = cluster.call(0, rec0.read_mail("dave"))[0].msg_id
        cluster.partition({0, 1}, {2, 3})
        cluster.call(0, rec0.delete_mail("dave", victim_id))
        cluster.call(2, cluster.site(2).recovery.send_mail(
            "dave", "fresh", "new"))
        cluster.heal()
        cluster.settle()
        mail = cluster.call(3, cluster.site(3).recovery.read_mail("dave"))
        assert {m.subject for m in mail} == {"fresh"}


class TestTypedMergeManagers:
    def test_registered_manager_merges_database_files(self, cluster):
        """Section 4.3: unhandled types are reflected up to a
        recovery/merge manager if one exists for the file type."""
        def line_union(copies):
            lines = set()
            for __, __, content in copies:
                lines |= {ln for ln in content.split(b"\n") if ln}
            return b"\n".join(sorted(lines)) + b"\n"

        for s in range(4):
            cluster.site(s).recovery.register_merge_manager(
                FileType.DATABASE, line_union)
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        fs0 = cluster.site(0).fs
        gfile, __ = cluster.call(0, fs0.create_file(
            sh0.proc, "/db", ftype=FileType.DATABASE,
            storage_sites=[0, 1, 2, 3]))
        sh0.write_file("/db", b"row1\n")
        cluster.settle()
        cluster.partition({0, 1}, {2, 3})
        fd = sh0.open("/db", "w")
        sh0.pwrite(fd, 5, b"row2\n")
        sh0.close(fd)
        fd = sh2.open("/db", "w")
        sh2.pwrite(fd, 5, b"row3\n")
        sh2.close(fd)
        cluster.heal()
        cluster.settle()
        merged = sh0.read_file("/db")
        assert merged == b"row1\nrow2\nrow3\n"
        assert cluster.site(0).recovery.stats.type_manager_merges >= 1


class TestDemandRecovery:
    def test_access_during_recovery_reconciles_on_demand(self, cluster):
        """Section 4.4: a particular file can be reconciled out of order to
        allow access to it with only a small delay."""
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        fully_replicated(cluster, sh0, "/hot", b"v1")
        cluster.partition({0, 1}, {2, 3})
        sh0.write_file("/hot", b"v2 from left")
        cluster.heal(settle=False)
        # Drive the merge just far enough for membership, then access the
        # file before the background sweep completes.
        cluster.sim.run(until=cluster.sim.now + 400)
        assert sh2.read_file("/hot") == b"v2 from left"
        cluster.settle()
        assert sh0.read_file("/hot") == b"v2 from left"
