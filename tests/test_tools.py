"""The fsck consistency checker and the cluster inspector."""

import pytest

from repro import LocusCluster
from repro.tools import cluster_report, fsck
from repro.tools.inspect import format_report


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=3, seed=88)


class TestFsck:
    def test_clean_after_normal_workload(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.mkdir("/a")
        sh.write_file("/a/one", b"1")
        sh.write_file("/a/two", b"2")
        sh.link("/a/one", "/a/alias")
        sh.unlink("/a/two")
        cluster.settle()
        report = fsck(cluster)
        assert report.clean, report.summary()
        assert report.inodes_checked >= 3

    def test_clean_after_partition_merge(self, cluster):
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        sh0.setcopies(3)
        sh0.write_file("/f", b"base")
        cluster.settle()
        cluster.partition({0, 1}, {2})
        sh0.write_file("/left", b"L")
        sh2.write_file("/right", b"R")
        cluster.heal()
        cluster.settle()
        report = fsck(cluster)
        assert report.clean, report.summary()

    def test_detects_unflagged_version_conflict(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(2)
        sh.write_file("/x", b"x")
        cluster.settle()
        ino = sh.stat("/x")["ino"]
        # Corrupt by hand: bump one copy's vector without propagation.
        inode = cluster.site(1).packs[0].get_inode(ino)
        inode.version = inode.version.bump(1)
        inode0 = cluster.site(0).packs[0].get_inode(ino)
        inode0.version = inode0.version.bump(0)
        report = fsck(cluster)
        assert (0, ino) in report.version_conflicts
        assert (0, ino) in report.unflagged_conflicts
        assert not report.clean

    def test_detects_dangling_entry(self, cluster):
        sh = cluster.shell(0)
        sh.write_file("/victim", b"x")
        ino = sh.stat("/victim")["ino"]
        # Vandalize: remove the inode but leave the directory entry.
        for s in range(3):
            pack = cluster.site(s).packs.get(0)
            if pack is not None:
                pack.inodes.pop(ino, None)
        report = fsck(cluster)
        assert any(name == "victim" for __, name, __ in
                   report.dangling_entries)

    def test_detects_orphan_inode(self, cluster):
        sh = cluster.shell(0)
        sh.write_file("/orphan-to-be", b"x")
        ino = sh.stat("/orphan-to-be")["ino"]
        # Vandalize: scrub the directory entry, keep the inode.
        from repro.fs.directory import decode_entries, encode_entries
        pack = cluster.site(0).packs[0]
        root = pack.get_inode(1)
        entries = [e for e in decode_entries(
            b"".join(pack.read_block(b) for b in root.pages)[:root.size])
            if e.name != "orphan-to-be"]
        data = encode_entries(entries)
        pack.write_block(root.pages[0], data)
        root.size = len(data)
        cluster.site(0).cache.clear()
        report = fsck(cluster, gfs_list=[0])
        assert (0, ino) in report.orphan_inodes

    def test_detects_nlink_mismatch(self, cluster):
        sh = cluster.shell(0)
        sh.write_file("/linked", b"x")
        sh.link("/linked", "/alias")
        ino = sh.stat("/linked")["ino"]
        cluster.site(0).packs[0].get_inode(ino).nlink = 7
        report = fsck(cluster)
        assert ((0, ino), 7, 2) in report.nlink_errors

    def test_summary_renders(self, cluster):
        text = fsck(cluster).summary()
        assert "verdict" in text and "CLEAN" in text

    def test_skips_down_sites(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/f", b"x")
        cluster.settle()
        cluster.fail_site(2)
        report = fsck(cluster)
        assert report.clean, report.summary()


class TestInspect:
    def test_cluster_report_fields(self, cluster):
        sh = cluster.shell(1)
        sh.write_file("/probe", b"x")
        report = cluster_report(cluster)
        assert len(report["sites"]) == 3
        assert report["network"]["messages"] >= 0
        site1 = report["sites"][1]
        assert site1["partition"] == [0, 1, 2]
        assert 0 in site1["packs"]
        assert site1["processes"]      # the shell's process

    def test_format_report_is_readable(self, cluster):
        text = format_report(cluster_report(cluster))
        assert "site 0" in text and "site 2" in text
        assert "partition=[0, 1, 2]" in text

    def test_report_under_live_partition(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/f", b"x")
        cluster.settle()
        cluster.partition({0, 1}, {2})
        sh.write_file("/f", b"left")    # diverge while split
        report = cluster_report(cluster)
        assert report["sites"][0]["partition"] == [0, 1]
        assert report["sites"][2]["partition"] == [2]
        # The divergent write is queued for propagation to the far side.
        assert report["sites"][0]["propagation_pending"] or \
            report["sites"][1]["propagation_pending"] is not None
        text = format_report(report)
        assert "partition=[0, 1]" in text and "partition=[2]" in text

    def test_report_survives_crashed_site(self, cluster):
        sh = cluster.shell(0)
        sh.write_file("/f", b"x")
        cluster.settle()
        cluster.fail_site(2)
        report = cluster_report(cluster)
        dead = report["sites"][2]
        # Crash resets volatile topology state: alone in its partition.
        assert dead["up"] is False
        assert dead["partition"] == [2]
        assert dead["processes"] == []
        text = format_report(report)
        assert "DOWN" in text

    def test_report_before_topology_attaches(self, cluster):
        # A site inspected before its topology service boots (or after a
        # teardown) must not crash the report: empty partition, epoch 0.
        cluster.fail_site(2)
        cluster.site(2).topology = None
        report = cluster_report(cluster)
        dead = report["sites"][2]
        assert dead["partition"] == []
        assert dead["epoch"] == 0
        assert "DOWN" in format_report(report)

    def test_report_reads_through_registry(self, cluster):
        sh = cluster.shell(0)
        sh.write_file("/f", b"payload")
        sh.read_file("/f")
        report = cluster_report(cluster)
        site0 = report["sites"][0]
        # Gauge sources merged in: cache, name cache, propagation,
        # write-behind — the counters inspect used to reach in for.
        assert {"cache", "name_cache", "propagation",
                "write_behind"} <= set(site0)
        assert site0["cache"]["pages"] >= 0
        # Latency percentiles from the same registry.
        assert "syscall.open" in site0["latency"]
        assert site0["latency"]["syscall.open"]["count"] >= 1
        assert report["trace"]["enabled"] is True
        assert report["trace"]["spans"] > 0
        assert "circuits_opened" in report["network"]
