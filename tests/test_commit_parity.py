"""Batched write/commit + manifest heal parity harness.

The batched write path (``CostModel.batch_writes``) and the manifest heal
pull (``CostModel.pull_manifest``) are pure message-count optimisations:
every scenario here runs once per flag combination and must end in an
*identical* on-disk state — same inodes, same version vectors, same
committed bytes on every pack of every site.  The snapshot excludes
``mtime`` only, because virtual timestamps legitimately differ when the
message count differs.

The fault half of the harness checks the one property parity cannot: a
virtual circuit closing in the middle of a staged-write flush must never
half-commit.  A lost ``fs.write_pages`` chunk followed by a commit RPC
(which silently reopens the circuit) has to surface as a failed commit
with the old content intact.
"""

import random

import pytest

from repro import LocusCluster
from repro.config import CostModel
from repro.errors import LocusError
from repro.tools import fsck

FLAG_COMBOS = [
    {},                                                  # paper-exact
    {"batch_writes": True, "batch_pages": 4},
    {"pull_manifest": True, "pull_pipeline": 4},
    {"batch_writes": True, "pull_manifest": True,
     "batch_pages": 4, "pull_pipeline": 4},
    # Exactly-once writes is ON in the default combo above; this leg
    # proves the whole stamping/ledger machinery is invisible on
    # fault-free runs — byte-identical post-state with it disabled.
    {"exactly_once_writes": False},
    # Same discipline for the anti-entropy scrub (on by default): its
    # sweeps only trigger from the merge procedure and a clean sweep
    # repairs nothing, so disabling it must change no committed byte —
    # including across the heal scenarios, where sweeps actually run.
    {"scrub_enabled": False},
]

COMBO_IDS = ["off", "batch_writes", "pull_manifest", "both",
             "no_exactly_once", "no_scrub"]


def poststate(cluster):
    """Canonical committed on-disk state of the whole cluster.

    Per (site, filegroup, inode): every attribute that must not depend on
    how many messages the protocol used, plus the committed page bytes.
    ``mtime`` is deliberately absent — commits land at different virtual
    times under different batching, and that is the *only* divergence the
    optimisation is allowed."""
    state = {}
    for site in cluster.sites:
        for gfs, pack in sorted(site.packs.items()):
            for ino, inode in sorted(pack.inodes.items()):
                content = tuple(
                    None if b is None else pack.read_block(b)
                    for b in inode.pages)
                state[(site.site_id, gfs, ino)] = (
                    tuple(sorted(inode.version.to_dict().items())),
                    inode.size,
                    inode.deleted,
                    inode.has_data,
                    inode.conflict,
                    tuple(sorted(inode.storage_sites)),
                    inode.nlink,
                    inode.perms,
                    inode.owner,
                    inode.ftype,
                    content,
                )
    return state


def _cluster(flags, n_sites=2, seed=11, root_pack_sites=(0,)):
    return LocusCluster(n_sites=n_sites, seed=seed,
                        root_pack_sites=list(root_pack_sites),
                        cost=CostModel().with_overrides(**flags))


# ---------------------------------------------------------------------------
# Scenarios.  Each drives a complete operation sequence from a diskless
# using site (so every write crosses the US/SS wire) and settles.
# ---------------------------------------------------------------------------

def scenario_big_sequential_write(cluster):
    """32 pages in one go: multiple fs.write_pages chunks per flush."""
    data = bytes((i * 7) % 256 for i in range(32 * 1024))
    cluster.shell(1).write_file("/big", data)
    cluster.settle()


def scenario_overwrite_shrink_and_grow(cluster):
    sh = cluster.shell(1)
    sh.write_file("/f", b"a" * 9000)
    sh.write_file("/f", b"b" * 2000)      # shrink (truncate + rewrite)
    sh.write_file("/f", b"c" * 12000)     # grow again
    cluster.settle()


def scenario_partial_page_writes(cluster):
    """Unaligned pwrites: read-modify-write against staged pages."""
    sh = cluster.shell(1)
    sh.write_file("/p", b"x" * 3000)
    fd = sh.open("/p", "w")
    sh.pwrite(fd, 700, b"MID")            # inside page 0
    sh.pwrite(fd, 1020, b"SPAN")          # straddles pages 0/1
    sh.pwrite(fd, 2900, b"TAIL-BEYOND-END" * 10)   # extends the file
    sh.commit(fd)
    sh.close(fd)
    cluster.settle()


def scenario_explicit_abort(cluster):
    """An aborted open changes nothing, staged pages included."""
    sh = cluster.shell(1)
    sh.write_file("/keep", b"original" * 500)
    fd = sh.open("/keep", "w")
    sh.pwrite(fd, 0, b"discarded" * 600)
    sh.abort(fd)
    sh.close(fd)
    cluster.settle()


def scenario_commit_then_more_writes(cluster):
    """Two commits on one open: the staged-page counter must reset."""
    sh = cluster.shell(1)
    fd = sh.open("/2c", "w", create=True)
    sh.pwrite(fd, 0, b"first" * 900)
    sh.commit(fd)
    sh.pwrite(fd, 2048, b"second" * 900)
    sh.commit(fd)
    sh.close(fd)
    cluster.settle()


def scenario_interleaved_files(cluster):
    """Alternating writes to two files: per-handle staging must not mix."""
    sh = cluster.shell(1)
    fa = sh.open("/a", "w", create=True)
    fb = sh.open("/b", "w", create=True)
    for i in range(6):
        sh.pwrite(fa, i * 1024, bytes([65 + i]) * 1024)
        sh.pwrite(fb, i * 512, bytes([97 + i]) * 512)
    sh.close(fa)
    sh.close(fb)
    cluster.settle()


def scenario_unlink_and_recreate(cluster):
    sh = cluster.shell(1)
    sh.write_file("/ghost", b"one" * 400)
    sh.unlink("/ghost")
    sh.write_file("/ghost", b"two" * 700)
    cluster.settle()


def scenario_heal_many_small_files(cluster):
    """Partitioned divergence over 20 files: the manifest batch path."""
    sh0, sh1 = cluster.shell(0), cluster.shell(1)
    sh0.setcopies(2)
    for i in range(20):
        sh0.write_file(f"/f{i}", b"a" * 100)
    cluster.settle()
    cluster.partition({0}, {1})
    for i in range(20):
        sh0.write_file(f"/f{i}", bytes([i]) * 200)
    cluster.heal()
    cluster.settle()
    for i in range(20):
        assert sh1.read_file(f"/f{i}") == bytes([i]) * 200


def scenario_heal_mixed_sizes(cluster):
    """Heal pull over files needing one page, many pages, and deletion."""
    sh0 = cluster.shell(0)
    sh0.setcopies(2)
    sh0.write_file("/small", b"s" * 50)
    sh0.write_file("/large", b"L" * 9000)
    sh0.write_file("/doomed", b"d" * 100)
    cluster.settle()
    cluster.partition({0}, {1})
    sh0.write_file("/small", b"S" * 80)
    sh0.write_file("/large", b"M" * 17000)
    sh0.unlink("/doomed")
    cluster.heal()
    cluster.settle()


SCENARIOS = [
    scenario_big_sequential_write,
    scenario_overwrite_shrink_and_grow,
    scenario_partial_page_writes,
    scenario_explicit_abort,
    scenario_commit_then_more_writes,
    scenario_interleaved_files,
    scenario_unlink_and_recreate,
]

HEAL_SCENARIOS = [
    scenario_heal_many_small_files,
    scenario_heal_mixed_sizes,
]


class TestCommitParity:
    @pytest.mark.parametrize("scenario", SCENARIOS,
                             ids=lambda s: s.__name__)
    def test_write_path_state_identical_across_flags(self, scenario):
        baseline = None
        for flags, cid in zip(FLAG_COMBOS, COMBO_IDS):
            cluster = _cluster(flags)
            scenario(cluster)
            assert fsck(cluster).clean, cid
            snap = poststate(cluster)
            if baseline is None:
                baseline = snap
            else:
                assert snap == baseline, f"{scenario.__name__}: {cid} diverged"

    @pytest.mark.parametrize("scenario", HEAL_SCENARIOS,
                             ids=lambda s: s.__name__)
    def test_heal_state_identical_across_flags(self, scenario):
        baseline = None
        for flags, cid in zip(FLAG_COMBOS, COMBO_IDS):
            cluster = LocusCluster(
                n_sites=2, seed=11,
                cost=CostModel().with_overrides(**flags))
            scenario(cluster)
            assert fsck(cluster).clean, cid
            snap = poststate(cluster)
            if baseline is None:
                baseline = snap
            else:
                assert snap == baseline, f"{scenario.__name__}: {cid} diverged"


# ---------------------------------------------------------------------------
# Satellite: seeded-random sequential schedules.  Each op completes before
# the next starts, so the final state is timing-independent and must be
# byte-identical across every flag combination.
# ---------------------------------------------------------------------------

def _random_schedule(rng, n_ops):
    """A reproducible op list; replayed verbatim under every combo."""
    ops = []
    for __ in range(n_ops):
        kind = rng.random()
        name = f"/fz{rng.randrange(5)}"
        if kind < 0.35:
            ops.append(("write", name, rng.randrange(1, 40) * 257))
        elif kind < 0.55:
            ops.append(("pwrite", name, rng.randrange(0, 3000),
                        rng.randrange(1, 3000)))
        elif kind < 0.70:
            ops.append(("abortwrite", name, rng.randrange(1, 3000)))
        elif kind < 0.85:
            ops.append(("truncwrite", name, rng.randrange(1, 5000)))
        else:
            ops.append(("unlink", name))
    return ops


def _apply_schedule(cluster, ops):
    sh = cluster.shell(1)
    for i, op in enumerate(ops):
        fill = bytes([33 + i % 90])
        try:
            if op[0] == "write":
                sh.write_file(op[1], fill * op[2])
            elif op[0] == "pwrite":
                fd = sh.open(op[1], "w", create=True)
                sh.pwrite(fd, op[2], fill * op[3])
                sh.commit(fd)
                sh.close(fd)
            elif op[0] == "abortwrite":
                fd = sh.open(op[1], "w", create=True)
                sh.pwrite(fd, 0, fill * op[2])
                sh.abort(fd)
                sh.close(fd)
            elif op[0] == "truncwrite":
                fd = sh.open(op[1], "w", create=True, trunc=True)
                sh.pwrite(fd, 0, fill * op[2])
                sh.close(fd)
            elif op[0] == "unlink":
                sh.unlink(op[1])
        except LocusError:
            pass          # e.g. unlink of a never-created name
        cluster.settle()


@pytest.mark.parametrize("seed", [101, 102, 103])
def test_random_schedule_parity(seed):
    ops = _random_schedule(random.Random(seed), 30)
    baseline = None
    for flags, cid in zip(FLAG_COMBOS, COMBO_IDS):
        cluster = _cluster(flags, seed=seed)
        _apply_schedule(cluster, ops)
        assert fsck(cluster).clean, cid
        snap = poststate(cluster)
        if baseline is None:
            baseline = snap
        else:
            assert snap == baseline, f"seed {seed}: {cid} diverged"


# ---------------------------------------------------------------------------
# Fault half: a circuit closing mid-batch must never half-commit.
# ---------------------------------------------------------------------------

def _drop_next(net, mtype):
    """Arm the network to lose the next ``mtype`` message, closing the
    circuit exactly as the paper's loss model does (section 5.1)."""
    orig_send = net.send
    state = {"dropped": 0}

    def send(src, dst, msg):
        if msg.mtype == mtype and not state["dropped"]:
            state["dropped"] += 1
            net.stats.record_send(msg.stat_key(), msg.size)
            net.stats.dropped += 1
            net._close_circuit(frozenset((src, dst)), "message lost")
            return
        orig_send(src, dst, msg)

    net.send = send
    return state


class TestMidBatchCircuitClose:
    def _run_lost_flush(self, lost_mtype, **flags):
        cluster = _cluster(
            dict({"batch_writes": True, "batch_pages": 4}, **flags))
        sh = cluster.shell(1)
        old = b"old" * 2000
        sh.write_file("/victim", old)
        cluster.settle()
        state = _drop_next(cluster.net, lost_mtype)
        fd = sh.open("/victim", "w")
        new = b"NEW" * 4000            # 12000 B = 12 pages = 3 chunks
        failed = False
        try:
            sh.pwrite(fd, 0, new)
            sh.commit(fd)
        except LocusError:
            failed = True
        try:
            sh.abort(fd)
            sh.close(fd)
        except LocusError:
            pass
        cluster.settle()
        assert state["dropped"] == 1, "fault never fired"
        return cluster, old, new, failed

    @pytest.mark.parametrize("lost", ["fs.write_pages", "fs.commit"])
    def test_lost_chunk_never_half_commits(self, lost):
        """Losing a staged-write chunk (or the commit itself) must leave
        either the complete old content or the complete new content —
        the commit RPC reopening the closed circuit must not slip a
        partial batch through."""
        cluster, old, new, failed = self._run_lost_flush(lost)
        content = cluster.shell(0).read_file("/victim")
        if failed:
            assert content == old, "half-commit: old content corrupted"
        else:
            assert content == new
        assert fsck(cluster).clean

    def test_commit_reports_missing_pages(self):
        """The guard itself: fewer pages received than the commit claims
        were sent raises EWRITELOST at the storage site.  With
        exactly-once writes on (the default) the using site replays its
        retained staged pages and the retried commit completes — no
        half-commit either way."""
        cluster, __, new, failed = self._run_lost_flush("fs.write_pages")
        assert not failed, "replayed commit should complete"
        assert cluster.shell(0).read_file("/victim") == new
        assert cluster.site(1).metrics.counters["fs.commit_retries"] >= 1

    def test_commit_fails_without_replay(self):
        """Flag-off leg: without the exactly-once machinery the same lost
        chunk surfaces as a failed commit with the old content intact."""
        cluster, old, __, failed = self._run_lost_flush(
            "fs.write_pages", exactly_once_writes=False)
        assert failed, "commit must fail when a flush chunk was lost"
        assert cluster.shell(0).read_file("/victim") == old

    def test_ss_crash_before_commit_leaves_old_content(self):
        """Kill the storage site after the flush but before the commit:
        the shadow pages die with it; restart exposes the old content."""
        cluster = _cluster({"batch_writes": True, "batch_pages": 4})
        sh = cluster.shell(1)
        old = b"old" * 1000
        sh.write_file("/v", old)
        cluster.settle()
        fs1 = cluster.site(1).fs

        def half_op():
            from repro.fs.types import Mode
            gfile, __ = yield from fs1.resolve_gfile(None, "/v")
            handle = yield from fs1.open_gfile(gfile, Mode.WRITE)
            yield from fs1.write(handle, 0, b"NEW" * 3000)
            # Flush is staged/sent; die before commit by parking forever.
            yield 10_000_000.0

        cluster.spawn(1, half_op())
        cluster.sim.run(until=cluster.sim.now + 50)
        cluster.fail_site(0)
        cluster.settle()
        cluster.restart_site(0)
        cluster.settle()
        assert cluster.shell(0).read_file("/v") == old
        assert fsck(cluster).clean
