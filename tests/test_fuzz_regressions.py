"""Tier-1 replay of the committed fuzz-regression corpus.

Every ``tests/regressions/*.json`` file is a shrunk :class:`FuzzPlan`
that once reproduced a real bug.  Replaying them must now produce zero
violations — the corpus is a permanent ratchet: a fix that regresses
re-fails the exact minimal scenario that found the bug.

Each plan is also checked for byte-stable serialization (the committed
file must equal its own decode→encode round trip) and deterministic
execution (same plan ⇒ identical run digest).
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.fuzz import FuzzPlan, run_plan
from repro.fuzz.runner import PlanRunner

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "regressions")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _load(path: str) -> FuzzPlan:
    with open(path) as fh:
        return FuzzPlan.from_json(fh.read())


def test_corpus_is_seeded():
    """The ISSUE's floor: the corpus ships with at least two shrunk
    reproductions of fixed bugs."""
    assert len(CORPUS) >= 2, f"regression corpus missing in {CORPUS_DIR}"


@pytest.mark.parametrize("path", CORPUS,
                         ids=[os.path.basename(p) for p in CORPUS])
def test_regression_plan_round_trips(path):
    with open(path) as fh:
        text = fh.read()
    plan = FuzzPlan.from_json(text)
    assert plan.to_json() == text, \
        f"{path} is not canonical JSON; rewrite it with plan.to_json()"


@pytest.mark.parametrize("path", CORPUS,
                         ids=[os.path.basename(p) for p in CORPUS])
def test_regression_plan_replays_clean(path):
    plan = _load(path)
    result = run_plan(plan)
    assert result.ok, (
        f"{os.path.basename(path)} regressed:\n" + result.report())
    if plan.expect_digest is not None:
        # The pinned digest guards the plan's *regression value*: if the
        # interleaving drifts, the replay may pass without exercising the
        # bug it was minimised for.  Re-shrink and re-pin when this fires.
        assert result.digest() == plan.expect_digest, (
            f"{os.path.basename(path)} no longer reproduces its recorded "
            f"interleaving (digest {result.digest()} != pinned "
            f"{plan.expect_digest})")


def test_regression_replay_is_deterministic():
    """Byte-identical reproduction: two executions of the same committed
    plan must produce identical run digests (oplog + fault trace)."""
    plan_path = CORPUS[0]
    digests = {PlanRunner(_load(plan_path)).run().digest()
               for __ in range(2)}
    assert len(digests) == 1
