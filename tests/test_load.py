"""Load/hotspot accounting, the convergence monitor, and the ``top``
report (ISSUE 10)."""

import json

import pytest

from repro import LocusCluster
from repro.cli import _top_workload
from repro.config import CostModel
from repro.obs.export import validate_trace_jsonl
from repro.obs.load import (ConvergenceMonitor, RollingWindow, SpaceSaving,
                            cluster_load_report, format_top, load_records,
                            merge_sketches)


class FakeSim:
    def __init__(self, now=0.0):
        self.now = now


# ----------------------------------------------------------------------
# Space-saving sketch
# ----------------------------------------------------------------------

class TestSpaceSaving:
    def test_exact_below_capacity(self):
        sk = SpaceSaving(capacity=4)
        for key in "aabbbc":
            sk.observe(key)
        assert sk.top() == [("b", 3, 0), ("a", 2, 0), ("c", 1, 0)]

    def test_eviction_inherits_floor_as_error(self):
        sk = SpaceSaving(capacity=2)
        sk.observe("a")
        sk.observe("a")
        sk.observe("b")
        # "c" evicts the minimum ("b", count 1) and inherits its count.
        sk.observe("c")
        assert set(sk.counts) == {"a", "c"}
        assert sk.counts["c"] == 2
        assert sk.errors["c"] == 1
        # Reported counts over-estimate by at most the error bound.
        assert sk.counts["c"] - sk.errors["c"] == 1

    def test_eviction_tie_breaks_on_key(self):
        sk = SpaceSaving(capacity=2)
        sk.observe("b")
        sk.observe("a")          # both count 1 -> victim is "a" (min key)
        sk.observe("z")
        assert set(sk.counts) == {"b", "z"}

    def test_heavy_hitter_survives_churn(self):
        sk = SpaceSaving(capacity=8)
        for i in range(200):
            sk.observe("hot")
            sk.observe(f"cold-{i}")
        top_key, count, err = sk.top(1)[0]
        assert top_key == "hot"
        assert count >= 200
        assert len(sk) == 8

    def test_top_k_truncates(self):
        sk = SpaceSaving(capacity=8)
        for key in "aaabbc":
            sk.observe(key)
        assert [k for k, _, __ in sk.top(2)] == ["a", "b"]

    def test_merge_sums_counts_and_errors(self):
        a, b = SpaceSaving(4), SpaceSaving(4)
        for __ in range(3):
            a.observe("x")
        b.observe("x")
        b.observe("y")
        merged = merge_sketches([a, b], capacity=4)
        assert merged.counts["x"] == 4
        assert merged.top(1)[0][0] == "x"

    def test_merge_empty(self):
        assert merge_sketches([]).top() == []


# ----------------------------------------------------------------------
# Rolling window
# ----------------------------------------------------------------------

class TestRollingWindow:
    def test_counts_within_window(self):
        sim = FakeSim()
        win = RollingWindow(sim, width=100.0, buckets=4)
        win.add()
        sim.now = 150.0
        win.add()
        win.add()
        assert win.total == 3
        assert win.windowed() == 3

    def test_old_buckets_age_out(self):
        sim = FakeSim()
        win = RollingWindow(sim, width=100.0, buckets=4)
        win.add(5)
        sim.now = 1000.0           # 10 buckets later, window is [7..10]
        assert win.windowed() == 0
        assert win.total == 5      # lifetime total keeps everything

    def test_rate_uses_elapsed_then_window_span(self):
        sim = FakeSim(now=50.0)
        win = RollingWindow(sim, width=100.0, buckets=4)
        win.add(10)
        # Early in the run the denominator is clamped to one width.
        assert win.rate() == pytest.approx(10 / 100.0)
        sim.now = 10_000.0
        win.add(4)
        assert win.rate() == pytest.approx(4 / 400.0)


# ----------------------------------------------------------------------
# Convergence monitor
# ----------------------------------------------------------------------

class TestConvergenceMonitor:
    def test_detection_latency_from_last_fault(self):
        sim = FakeSim(now=100.0)
        mon = ConvergenceMonitor(sim, enabled=True)
        mon.note_fault("crash")
        sim.now = 160.0
        mon.note_detection("digest_skew", site=1, gfile=(0, 5))
        sim.now = 200.0
        mon.note_repair("propagate", site=1, gfile=(0, 5))
        assert len(mon.detections()) == 1
        assert len(mon.repairs()) == 1
        det = mon.detections()[0]
        assert det["fault_ts"] == 100.0
        assert det["latency"] == pytest.approx(60.0)
        # Only detections feed the latency histogram.
        assert mon.detection_latency.count == 1
        summary = mon.summary()
        assert summary["faults"] == 1
        assert summary["detection_latency"]["count"] == 1

    def test_latency_measured_from_most_recent_fault(self):
        sim = FakeSim(now=0.0)
        mon = ConvergenceMonitor(sim, enabled=True)
        mon.note_fault("crash")
        sim.now = 500.0
        mon.note_fault("loss_burst")
        sim.now = 530.0
        mon.note_detection("reconcile")
        assert mon.detections()[0]["latency"] == pytest.approx(30.0)

    def test_detection_without_fault_has_no_latency(self):
        mon = ConvergenceMonitor(FakeSim(), enabled=True)
        mon.note_detection("placement", site=0, gfile=(0, 2))
        det = mon.detections()[0]
        assert det["fault_ts"] is None and det["latency"] is None
        assert mon.detection_latency.count == 0

    def test_disabled_monitor_records_nothing(self):
        mon = ConvergenceMonitor(FakeSim(), enabled=False)
        mon.note_fault("crash")
        mon.note_detection("digest_skew")
        mon.note_repair("propagate")
        assert mon.faults == [] and mon.events == []


# ----------------------------------------------------------------------
# Zero-cost property: vtime and messages identical with accounting off
# ----------------------------------------------------------------------

def _drive(load_accounting: bool):
    cluster = LocusCluster(
        n_sites=3, seed=42,
        cost=CostModel().with_overrides(load_accounting=load_accounting))
    sh = cluster.shell(0)
    sh.setcopies(2)
    sh.write_file("/f", b"x" * 2048)
    cluster.settle()
    cluster.partition({0}, {1, 2})
    sh.write_file("/f", b"y" * 2048)       # diverge behind the partition
    cluster.heal()
    cluster.settle()
    for __ in range(5):
        cluster.shell(1).read_file("/f")
    cluster.settle()
    return cluster


class TestZeroCost:
    def test_on_off_parity(self):
        on = _drive(True)
        off = _drive(False)
        assert on.sim.now == off.sim.now
        assert on.stats.total_messages == off.stats.total_messages

    def test_off_disables_gauges_and_records(self):
        off = _drive(False)
        assert not off.site(0).load.enabled
        assert not off.convergence.enabled
        assert load_records(off) == []

    def test_on_populates_accounting(self):
        on = _drive(True)
        acct = on.site(0).load
        assert acct.syscall_window.total > 0
        g = acct.gauges()
        assert g["syscalls"] > 0
        # Synchronized opens were noted: /f is hot somewhere.
        merged = merge_sketches([s.load.hot_inodes for s in on.sites])
        assert len(merged) > 0
        records = load_records(on)
        assert [r for r in records if r["type"] == "load"]


# ----------------------------------------------------------------------
# The ``top`` report
# ----------------------------------------------------------------------

class TestTopReport:
    def test_byte_deterministic(self):
        a, __ = _top_workload(seed=5, sites=3, ops=40)
        b, __ = _top_workload(seed=5, sites=3, ops=40)
        assert format_top(a) == format_top(b)

    def test_ranks_zipf_hot_inodes_and_filegroups(self):
        cluster, paths = _top_workload(seed=5, sites=3, ops=60)
        report = cluster_load_report(cluster)
        counts = [count for __, count, ___ in report["hot_inodes"]]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > 1                  # Zipf head is genuinely hot
        # The root filegroup carries the workload; /aux saw one read.
        css = report["css"]
        assert css[0]["gfs"] == 0
        assert css[0]["opens"] > css[-1]["opens"]
        assert len(css) >= 2

    def test_report_sections_present(self):
        cluster, __ = _top_workload(seed=3, sites=2, ops=20)
        text = format_top(cluster)
        for marker in ("LOCUS top", "-- sites --", "hottest inodes",
                       "CSS load by filegroup", "backlog:", "convergence:"):
            assert marker in text

    def test_load_records_validate_in_export(self, tmp_path):
        from repro.obs.export import export_jsonl
        cluster, __ = _top_workload(seed=3, sites=2, ops=20)
        path = tmp_path / "t.jsonl"
        n = export_jsonl(cluster.tracer, str(path),
                         extra=load_records(cluster))
        assert n > 0
        assert validate_trace_jsonl(str(path)) == []


# ----------------------------------------------------------------------
# Schema validation: forged load/detection records must be rejected
# ----------------------------------------------------------------------

class TestForgedRecords:
    META = '{"type":"meta","spans":0,"instants":0,"vtime":0}\n'

    def test_forged_load_record_rejected(self, tmp_path):
        path = tmp_path / "forged.jsonl"
        path.write_text(self.META + '{"type":"load","site":0}\n')
        problems = validate_trace_jsonl(str(path))
        assert any("load missing" in p for p in problems)

    def test_forged_detection_record_rejected(self, tmp_path):
        path = tmp_path / "forged.jsonl"
        path.write_text(self.META + '{"type":"detection","seq":1}\n')
        problems = validate_trace_jsonl(str(path))
        assert any("detection missing" in p for p in problems)

    def test_detection_event_vocabulary_enforced(self, tmp_path):
        rec = {"type": "detection", "seq": 1, "ts": 0.0, "event": "guess",
               "kind": "digest_skew", "site": 0, "gfile": [0, 1],
               "fault_ts": None, "latency": None}
        path = tmp_path / "forged.jsonl"
        path.write_text(self.META + json.dumps(rec) + "\n")
        problems = validate_trace_jsonl(str(path))
        assert any("not detect/repair" in p for p in problems)

    def test_wellformed_records_pass(self, tmp_path):
        load = {"type": "load", "site": 0, "ts": 1.0,
                "window": [2000.0, 8], "syscalls": 1, "syscall_rate": 0.0,
                "rpcs": 0, "rpc_rate": 0.0, "rpc_ops": {},
                "hot_inodes": [], "css": {}, "queues": {},
                "replication": {}}
        det = {"type": "detection", "seq": 1, "ts": 2.0, "event": "detect",
               "kind": "digest_skew", "site": 0, "gfile": [0, 1],
               "fault_ts": 1.0, "latency": 1.0}
        path = tmp_path / "ok.jsonl"
        path.write_text(self.META + json.dumps(load) + "\n"
                        + json.dumps(det) + "\n")
        assert validate_trace_jsonl(str(path)) == []
