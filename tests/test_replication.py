"""File replication and update propagation (paper sections 2.2, 2.3.6)."""

import pytest

from repro import LocusCluster
from repro.errors import ENOENT
from repro.net.stats import StatsWindow


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=4, seed=11)


class TestReplicationFactor:
    def test_default_single_copy_stored_locally(self, cluster):
        sh = cluster.shell(1)
        sh.write_file("/one", b"x")
        assert sh.stat("/one")["storage_sites"] == [1]

    def test_setcopies_controls_replication(self, cluster):
        sh = cluster.shell(1)
        sh.setcopies(3)
        sh.write_file("/three", b"x")
        sites = sh.stat("/three")["storage_sites"]
        assert len(sites) == 3
        assert sites[0] == 1            # local site first (section 2.3.7 b)

    def test_replication_capped_by_parent_directory(self, cluster):
        """Initial factor = min(requested, parent's factor); storage sites
        must store the parent directory (section 2.3.7 a)."""
        sh = cluster.shell(0)
        sh.setcopies(2)
        sh.mkdir("/sub")                # /sub stored at 2 sites
        parent_sites = set(sh.stat("/sub")["storage_sites"])
        sh.setcopies(4)
        sh.write_file("/sub/f", b"x")
        child_sites = set(sh.stat("/sub/f")["storage_sites"])
        assert len(child_sites) == 2
        assert child_sites <= parent_sites

    def test_each_copy_same_inode_number(self, cluster):
        """All copies share the <filegroup, inode> low-level name."""
        sh = cluster.shell(0)
        sh.setcopies(4)
        sh.write_file("/rep", b"x")
        cluster.settle()
        ino = sh.stat("/rep")["ino"]
        for s in sh.stat("/rep")["storage_sites"]:
            pack = cluster.site(s).packs[0]
            assert pack.stores(ino)


class TestPropagation:
    def test_update_propagates_to_all_copies(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(4)
        sh.write_file("/p", b"v1")
        cluster.settle()
        sh.write_file("/p", b"v2-new-content")
        cluster.settle()
        ino = sh.stat("/p")["ino"]
        versions = set()
        for s in range(4):
            inode = cluster.site(s).packs[0].get_inode(ino)
            versions.add(inode.version)
            assert inode.size == len(b"v2-new-content")
        assert len(versions) == 1       # all copies converged

    def test_propagation_is_pull_based(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/pull", b"a" * 100)
        cluster.settle()
        win = StatsWindow(cluster.stats)
        sh.write_file("/pull", b"b" * 100)
        cluster.settle()
        snap = win.close()
        # Other storage sites pulled the pages with read-style requests
        # (fs.pull_read_range is the batched framing of the same pull).
        assert (snap.sent.get("fs.pull_read", 0)
                + snap.sent.get("fs.pull_read_range", 0)) >= 2

    def test_delta_propagation_pulls_only_changed_pages(self, cluster):
        psz = cluster.config.cost.page_size
        sh = cluster.shell(0)
        sh.setcopies(2)
        sh.write_file("/delta", b"x" * (8 * psz))
        cluster.settle()
        win = StatsWindow(cluster.stats)
        fd = sh.open("/delta", "w")
        sh.pwrite(fd, 0, b"y" * 10)     # touch one page of eight
        sh.close(fd)
        cluster.settle()
        snap = win.close()
        # One changed page -> one pull message, whatever the framing.
        assert (snap.sent.get("fs.pull_read", 0)
                + snap.sent.get("fs.pull_read_range", 0)) == 1

    def test_reads_served_by_nearest_copy_after_propagation(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(4)
        sh.write_file("/near", b"replicated")
        cluster.settle()
        sh3 = cluster.shell(3)
        win = StatsWindow(cluster.stats)
        assert sh3.read_file("/near") == b"replicated"
        snap = win.close()
        # Site 3 stores a current copy: no page ever crosses the network.
        assert snap.sent.get("fs.read_page", 0) == 0

    def test_add_replica_pulls_content(self, cluster):
        sh = cluster.shell(0)
        sh.write_file("/grow", b"growing")
        cluster.settle()
        assert sh.stat("/grow")["storage_sites"] == [0]
        sh.add_replica("/grow", 2)
        cluster.settle()
        assert cluster.site(2).packs[0].stores(sh.stat("/grow")["ino"])
        assert cluster.shell(2).read_file("/grow") == b"growing"

    def test_drop_replica_releases_storage(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(2)
        sh.write_file("/shrink", b"shrinking")
        cluster.settle()
        victim = sh.stat("/shrink")["storage_sites"][1]
        sh.drop_replica("/shrink", victim)
        cluster.settle()
        ino = sh.stat("/shrink")["ino"]
        assert not cluster.site(victim).packs[0].stores(ino)
        assert sh.read_file("/shrink") == b"shrinking"


class TestAvailability:
    def test_read_survives_storage_site_failure(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/avail", b"still here")
        cluster.settle()
        sites = sh.stat("/avail")["storage_sites"]
        other = [s for s in sites if s != 0][0]
        cluster.fail_site(other)
        assert sh.read_file("/avail") == b"still here"

    def test_single_copy_unavailable_after_failure(self, cluster):
        sh0 = cluster.shell(0)
        sh1 = cluster.shell(1)
        sh1.write_file("/frag", b"only at 1")
        cluster.settle()
        cluster.fail_site(1)
        with pytest.raises(ENOENT):
            sh0.read_file("/frag")

    def test_update_during_failure_propagates_after_restart(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(2)
        sh.write_file("/catchup", b"v1")
        cluster.settle()
        other = [s for s in sh.stat("/catchup")["storage_sites"]
                 if s != 0][0]
        cluster.fail_site(other)
        sh.write_file("/catchup", b"v2 while partner down")
        cluster.restart_site(other)
        cluster.settle()
        ino = sh.stat("/catchup")["ino"]
        inode = cluster.site(other).packs[0].get_inode(ino)
        assert inode.size == len(b"v2 while partner down")
        assert inode.version == sh.stat("/catchup")["version"]
