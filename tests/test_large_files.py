"""Large files, multi-page directories, and data-volume stress."""

import pytest

from repro import LocusCluster
from repro.tools import fsck


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=2, seed=211)


class TestLargeFiles:
    def test_megabyte_roundtrip(self, cluster):
        """1 MiB = 1024 pages through the whole stack."""
        sh = cluster.shell(0)
        data = bytes(i % 251 for i in range(1 << 20))
        sh.write_file("/big", data)
        assert sh.read_file("/big") == data
        assert sh.stat("/big")["size"] == 1 << 20

    def test_megabyte_remote_read(self, cluster):
        sh1 = cluster.shell(1)
        data = bytes((i * 7) % 251 for i in range(1 << 19))
        sh1.write_file("/remote-big", data)
        cluster.settle()
        assert cluster.shell(0).read_file("/remote-big") == data

    def test_large_file_delta_propagation(self, cluster):
        """One dirty page of 512 propagates alone."""
        from repro.net.stats import StatsWindow
        psz = cluster.config.cost.page_size
        sh = cluster.shell(0)
        sh.setcopies(2)
        sh.write_file("/wide", b"0" * (512 * psz))
        cluster.settle()
        win = StatsWindow(cluster.stats)
        fd = sh.open("/wide", "w")
        sh.pwrite(fd, 300 * psz, b"dirty")
        sh.close(fd)
        cluster.settle()
        assert win.close().sent.get("fs.pull_read", 0) == 1

    def test_interleaved_sparse_regions(self, cluster):
        psz = cluster.config.cost.page_size
        sh = cluster.shell(0)
        fd = sh.open("/sparse", "w", create=True)
        for page in (0, 7, 63, 255):
            sh.pwrite(fd, page * psz, f"mark{page}".encode())
        sh.close(fd)
        data = sh.read_file("/sparse")
        for page in (0, 7, 63, 255):
            mark = f"mark{page}".encode()
            assert data[page * psz:page * psz + len(mark)] == mark
        # Unwritten gaps read as zeros.
        assert data[psz:2 * psz] == b"\x00" * psz

    def test_shrinking_rewrite_frees_blocks(self, cluster):
        psz = cluster.config.cost.page_size
        sh = cluster.shell(0)
        sh.write_file("/shrink", b"x" * (64 * psz))
        pack = cluster.site(0).packs[0]
        before = pack.blocks_in_use
        sh.write_file("/shrink", b"tiny")
        assert pack.blocks_in_use < before
        assert sh.read_file("/shrink") == b"tiny"


class TestMultiPageDirectories:
    def test_three_hundred_entries(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(2)
        sh.mkdir("/many")
        for i in range(300):
            sh.write_file(f"/many/entry{i:04}", b"e")
        names = sh.readdir("/many")
        assert len(names) == 300
        cluster.settle()
        # The replicated copy serves the same multi-page listing.
        assert len(cluster.shell(1).readdir("/many")) == 300
        assert fsck(cluster).clean

    def test_multipage_directory_merges(self, cluster):
        sh0, sh1 = cluster.shell(0), cluster.shell(1)
        sh0.setcopies(2)
        sh0.mkdir("/ledger")
        for i in range(60):
            sh0.write_file(f"/ledger/base{i:03}", b"b")
        cluster.settle()
        cluster.partition({0}, {1})
        for i in range(25):
            sh0.write_file(f"/ledger/left{i:03}", b"l")
            sh1.write_file(f"/ledger/right{i:03}", b"r")
        cluster.heal()
        cluster.settle()
        names = sh0.readdir("/ledger")
        assert len(names) == 60 + 25 + 25
        assert names == cluster.shell(1).readdir("/ledger")
        assert fsck(cluster).clean

    def test_unlink_half_then_compact_listing(self, cluster):
        sh = cluster.shell(0)
        sh.mkdir("/churn")
        for i in range(100):
            sh.write_file(f"/churn/f{i:03}", b"x")
        for i in range(0, 100, 2):
            sh.unlink(f"/churn/f{i:03}")
        names = sh.readdir("/churn")
        assert len(names) == 50
        assert all(int(n[1:]) % 2 == 1 for n in names)
