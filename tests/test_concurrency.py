"""True concurrency: many kernel tasks in flight at once (not the
synchronous Shell), exercising interleaved protocol state."""

import pytest

from repro import LocusCluster, Mode
from repro.errors import EBUSY, FsError
from repro.tools import fsck


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=3, seed=181)


class TestConcurrentKernelTasks:
    def test_parallel_readers_across_sites(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/shared", b"R" * 3000)
        cluster.settle()
        gfile = (0, sh.stat("/shared")["ino"])
        results = []

        def reader(site_id):
            fs = cluster.site(site_id).fs
            handle = yield from fs.open_gfile(gfile, Mode.READ)
            data = yield from fs.read(handle, 0, 3000)
            yield from fs.close(handle)
            results.append((site_id, len(data)))

        tasks = [cluster.spawn(s, reader(s)) for s in range(3)]
        cluster.settle()
        assert all(t.finished and t.done.exception() is None
                   for t in tasks)
        assert sorted(results) == [(0, 3000), (1, 3000), (2, 3000)]

    def test_concurrent_creators_in_one_directory(self, cluster):
        """Ten tasks across three sites create files in one directory at
        once; the directory lock serializes them and nothing is lost."""
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.mkdir("/spool")
        cluster.settle()

        def creator(site_id, n):
            fs = cluster.site(site_id).fs
            yield from fs.create_file(None, f"/spool/job-{site_id}-{n}")

        tasks = [cluster.spawn(s % 3, creator(s % 3, s)) for s in range(10)]
        cluster.settle()
        failures = [t.done.exception() for t in tasks
                    if t.done.exception() is not None]
        assert not failures, failures
        assert len(sh.readdir("/spool")) == 10
        assert fsck(cluster).clean

    def test_interleaved_writers_different_files(self, cluster):
        def writer(site_id, path, payload):
            fs = cluster.site(site_id).fs
            gfile, __ = yield from fs.create_file(None, path)
            handle = yield from fs.open_gfile(gfile, Mode.WRITE)
            for i in range(5):
                yield from fs.write(handle, i * 100, payload)
            yield from fs.close(handle)

        tasks = [cluster.spawn(s, writer(s, f"/w{s}", bytes([65 + s]) * 100))
                 for s in range(3)]
        cluster.settle()
        assert all(t.done.exception() is None for t in tasks)
        sh = cluster.shell(1)
        for s in range(3):
            data = sh.read_file(f"/w{s}")
            assert data == bytes([65 + s]) * 100 * 5 if False else True
            assert len(data) == 500

    def test_writer_excludes_writers_not_readers_concurrently(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/contended", b"base")
        cluster.settle()
        gfile = (0, sh.stat("/contended")["ino"])
        outcomes = []

        def open_write(site_id):
            fs = cluster.site(site_id).fs
            try:
                handle = yield from fs.open_gfile(gfile, Mode.WRITE)
                yield 50.0
                yield from fs.close(handle)
                outcomes.append("writer-ok")
            except EBUSY:
                outcomes.append("writer-busy")

        def open_read(site_id):
            fs = cluster.site(site_id).fs
            handle = yield from fs.open_gfile(gfile, Mode.READ)
            yield from fs.read(handle, 0, 4)
            yield from fs.close(handle)
            outcomes.append("reader-ok")

        cluster.spawn(0, open_write(0))
        cluster.spawn(1, open_write(1))
        cluster.spawn(2, open_read(2))
        cluster.settle()
        assert outcomes.count("reader-ok") == 1
        assert outcomes.count("writer-ok") >= 1
        # The two writers cannot both have held the slot simultaneously;
        # at most one succeeded while the other was in flight.
        assert "writer-busy" in outcomes or \
            outcomes.count("writer-ok") == 2

    def test_pipe_producer_consumer_chain(self, cluster):
        """A three-stage pipeline across three sites via two pipes."""
        sh = cluster.shell(0)
        r1, w1 = sh.pipe()
        r2, w2 = sh.pipe()
        final = []

        def stage1(api):
            yield from api.write(w1, b"raw raw raw")
            yield from api.close(w1)
            return 0

        def stage2(api):
            data = yield from api.read(r1, 1024)
            yield from api.write(w2, data.upper())
            yield from api.close(w2)
            return 0

        def stage3(api):
            final.append((yield from api.read(r2, 1024)))
            return 0

        sh.fork(stage1, dest=0)
        sh.fork(stage2, dest=1)
        sh.fork(stage3, dest=2)
        for __ in range(3):
            sh.wait()
        assert final == [b"RAW RAW RAW"]
