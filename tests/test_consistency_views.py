"""Consistency views: staged vs committed state, interrogation isolation,
cache coherence across versions (regression suite for the subtle bugs the
fuzzers found)."""

import pytest

from repro import LocusCluster, Mode
from repro.errors import EBUSY


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=3, seed=191)


class TestInterrogationIsolation:
    def test_unsync_read_never_sees_staged_truncate(self, cluster):
        """Section 2.3.4: directory interrogation never sees an
        inconsistent picture — here, a writer's staged rewrite."""
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.mkdir("/spool")
        sh.write_file("/spool/stable", b"x")
        cluster.settle()
        gfile = (0, sh.stat("/spool")["ino"])
        fs1 = cluster.site(1).fs

        # A writer at site 1 opens the directory and stages a truncate.
        wh = cluster.call(1, fs1.open_gfile(gfile, Mode.WRITE))
        cluster.call(1, fs1.truncate(wh))
        # Interrogation from every site still sees the committed entry.
        for s in range(3):
            names = cluster.shell(s).readdir("/spool")
            assert names == ["stable"], (s, names)
        cluster.call(1, fs1.abort(wh))
        cluster.call(1, fs1.close(wh))
        assert sh.readdir("/spool") == ["stable"]

    def test_sync_reader_sees_writers_staged_pages(self, cluster):
        """Synchronized readers share the writer's single SS and see its
        incore state — Unix shared-file semantics (section 3.2)."""
        sh = cluster.shell(0)
        sh.write_file("/live", b"old content")
        fd = sh.open("/live", "w")
        sh.pwrite(fd, 0, b"NEW content")   # staged, not committed
        reader = cluster.shell(1)
        rfd = reader.open("/live")
        assert reader.read(rfd, 11) == b"NEW content"
        reader.close(rfd)
        sh.abort(fd)
        sh.close(fd)
        assert sh.read_file("/live") == b"old content"

    def test_no_cross_version_page_mixing(self, cluster):
        """Pages cached from a stale local copy must never mix with pages
        fetched from a newer remote version (the corruption class the
        distributed-build fuzz found)."""
        psz = cluster.config.cost.page_size
        sh0 = cluster.shell(0)
        sh0.setcopies(3)
        sh0.write_file("/mix", b"A" * (2 * psz))
        cluster.settle()
        # Warm site 1's cache with the old version via interrogation.
        sh1 = cluster.shell(1)
        assert sh1.read_file("/mix")[:4] == b"AAAA"
        # Site 0 rewrites both pages; read at site 1 *before* settle.
        sh0.write_file("/mix", b"B" * (2 * psz))
        data = sh1.read_file("/mix")
        # Whatever version is served, it is served whole.
        assert data in (b"A" * (2 * psz), b"B" * (2 * psz)), data[:8]
        cluster.settle()
        assert sh1.read_file("/mix") == b"B" * (2 * psz)


class TestWriterSerialization:
    def test_racing_write_opens_cannot_both_win(self, cluster):
        """Regression for the CSS slot TOCTOU: concurrent write-opens from
        different sites — at most one holds the slot at a time."""
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/slot", b"s")
        cluster.settle()
        gfile = (0, sh.stat("/slot")["ino"])
        holders = []

        def opener(site_id):
            fs = cluster.site(site_id).fs
            try:
                handle = yield from fs.open_gfile(gfile, Mode.WRITE)
            except EBUSY:
                holders.append((site_id, "busy"))
                return
            holders.append((site_id, "open"))
            yield 30.0
            yield from fs.close(handle)

        for s in range(3):
            cluster.spawn(s, opener(s))
        cluster.settle()
        outcomes = [kind for __, kind in holders]
        assert outcomes.count("open") == 1
        assert outcomes.count("busy") == 2

    def test_sequential_writers_all_land(self, cluster):
        """Serialized (retrying) directory updates from every site land
        every entry — the lost-update regression."""
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.mkdir("/inbox")
        cluster.settle()

        def creator(site_id, n):
            fs = cluster.site(site_id).fs
            yield from fs.create_file(None, f"/inbox/m{site_id}{n}")

        tasks = [cluster.spawn(s, creator(s, n))
                 for n in range(4) for s in range(3)]
        cluster.settle()
        assert all(t.done.exception() is None for t in tasks)
        assert len(sh.readdir("/inbox")) == 12
