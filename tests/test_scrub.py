"""Anti-entropy scrub subsystem (ISSUE 9 tentpole).

Each test plants a specific divergence directly in the packs of a
settled, fully-replicated cluster — the forged-negative discipline of
``test_invariants_negative`` — then triggers one scrub sweep at the CSS
and asserts the planted damage is repaired (or surfaced as a flagged
conflict) within the configured round budget.  A clean cluster must
scrub to a converged no-op, and with ``scrub_enabled=False`` the
subsystem must be completely inert: zero extra messages, identical
post-state.
"""

from __future__ import annotations

import pytest

from repro import LocusCluster
from repro.config import CostModel
from repro.errors import EIO
from repro.fs.scrub import committed_digest
from repro.tools import fsck


def make_cluster(**flags):
    return LocusCluster(n_sites=3, seed=31,
                        cost=CostModel().with_overrides(**flags))


def seeded(cluster, path="/f", data=b"base content " * 40):
    """A fully replicated file, settled everywhere; returns (gfs, ino)."""
    sh = cluster.shell(0)
    sh.setcopies(3)
    sh.write_file(path, data)
    cluster.settle()
    gfs = 0
    ino = next(ino for ino, inode
               in cluster.site(0).packs[gfs].inodes.items()
               if inode.ftype.name == "REGULAR" and not inode.deleted)
    return gfs, ino


def packs_for(cluster, gfs=0):
    return {site.site_id: site.packs[gfs] for site in cluster.sites
            if gfs in site.packs}


def run_scrub(cluster, gfs=0):
    css = cluster.site(0).fs.mount.css_for(gfs)
    cluster.site(css).scrub.schedule(gfs)
    cluster.settle()
    return cluster.site(css).scrub


# -- clean cluster ---------------------------------------------------------

def test_noop_on_clean_cluster():
    """A sweep over a healthy cluster converges on its first round and
    repairs nothing."""
    cluster = make_cluster()
    seeded(cluster)
    scrub = run_scrub(cluster)
    assert scrub.stats.sweeps == 1
    assert scrub.stats.converged == 1
    assert scrub.stats.exhausted == 0
    assert scrub.stats.rounds == 1
    assert scrub.stats.reconciles == 0
    assert scrub.stats.digest_skews == 0
    assert scrub.stats.placement_repairs == 0
    assert scrub.stats.dangling_removed == 0
    assert fsck(cluster).clean


def test_disabled_scrub_is_inert():
    cluster = make_cluster(scrub_enabled=False)
    seeded(cluster)
    before = dict(cluster.net.stats.sent)
    scrub = run_scrub(cluster)
    assert scrub.stats.sweeps == 0
    assert dict(cluster.net.stats.sent) == before


def test_fault_free_message_parity_on_vs_off():
    """Scrub only triggers from the merge procedure, so a fault-free run
    sends byte-for-byte the same messages whether the flag is on or off."""
    counts = {}
    for flag in (True, False):
        cluster = make_cluster(scrub_enabled=flag)
        sh = cluster.shell(1)
        sh.setcopies(3)
        sh.write_file("/a", b"x" * 5000)
        sh.write_file("/b", b"y" * 300)
        sh.unlink("/b")
        cluster.settle()
        counts[flag] = dict(cluster.net.stats.sent)
    assert counts[True] == counts[False]


# -- planted divergence ----------------------------------------------------

def test_planted_stale_copy_converges_within_budget():
    """A commit whose notifies were all lost: one copy is ahead, the
    others dominated.  The scrub hands the file to recovery's reconcile
    and every copy converges to the new version within the round budget."""
    cluster = make_cluster()
    gfs, ino = seeded(cluster)
    packs = packs_for(cluster)
    winner = packs[1].inodes[ino]
    blockno = winner.pages[0]
    packs[1].blocks[blockno] = b"NEWER".ljust(
        len(packs[1].blocks[blockno]), b"!")
    winner.version = winner.version.bump(1)
    scrub = run_scrub(cluster)
    assert scrub.stats.reconciles >= 1
    assert scrub.stats.converged == 1
    assert scrub.stats.exhausted == 0
    versions = {p.inodes[ino].version for p in packs.values()}
    assert versions == {winner.version}
    digests = {committed_digest(p, ino) for p in packs.values()}
    assert len(digests) == 1
    assert fsck(cluster).clean


def test_planted_digest_skew_flags_conflict():
    """Equal version vectors, different bytes — the version system itself
    was subverted, so no copy can win: the scrub surfaces the file as a
    conflict for the user instead of guessing."""
    cluster = make_cluster()
    gfs, ino = seeded(cluster)
    packs = packs_for(cluster)
    blockno = packs[2].inodes[ino].pages[0]
    packs[2].blocks[blockno] = bytes(
        b ^ 0xAA for b in packs[2].blocks[blockno])
    scrub = run_scrub(cluster)
    assert scrub.stats.digest_skews >= 1
    assert all(p.inodes[ino].conflict for p in packs.values())
    # A flagged conflict is a legitimate parked state, not a violation.
    report = fsck(cluster)
    assert not report.content_mismatch
    assert not report.unflagged_conflicts


def test_planted_misplaced_copy_retired():
    """A pack storing data its inode no longer advertises there (a
    replica drop whose notify was lost): the scrub tells the site to
    retire the copy."""
    cluster = make_cluster()
    gfs, ino = seeded(cluster)
    packs = packs_for(cluster)
    for pack in packs.values():
        pack.inodes[ino].storage_sites = [0, 1]
    scrub = run_scrub(cluster)
    assert scrub.stats.placement_repairs >= 1
    assert not packs[2].stores(ino)
    assert packs[0].stores(ino) and packs[1].stores(ino)
    assert fsck(cluster).clean


def test_planted_dangling_entry_scrubbed():
    """A live directory entry naming an inode no pack holds: the classic
    fsck action, performed online by the sweep."""
    cluster = make_cluster()
    gfs, ino = seeded(cluster, path="/doomed")
    for pack in packs_for(cluster).values():
        del pack.inodes[ino]
    assert not fsck(cluster).clean          # the plant is visible
    scrub = run_scrub(cluster)
    assert scrub.stats.dangling_removed >= 1
    assert "doomed" not in cluster.shell(0).readdir("/")
    assert fsck(cluster).clean


def test_round_budget_bounds_unrepairable_damage():
    """Damage the scrub cannot repair (a believed-up pack holder that
    never answers a summary request) must exhaust the round budget, not
    loop forever — and an unanswered holder counts as a shortfall, never
    as convergence."""
    cluster = make_cluster(scrub_rounds=2)
    seeded(cluster)

    def broken(src, payload):
        raise EIO("scrub summary unavailable")
        yield  # pragma: no cover

    cluster.site(2)._handlers["fs.scrub_digest"] = broken
    scrub = run_scrub(cluster)
    assert scrub.stats.exhausted == 1
    assert scrub.stats.converged == 0
    assert scrub.stats.partial_rounds >= 2
    assert scrub.stats.rounds == 2
