"""Property-based testing of the shadow-page store: random sequences of
writes / truncates / commits / aborts against a plain reference buffer.

The invariant under test is the paper's central storage claim: "one is
always left with either the original file or a completely changed file but
never with a partially made change" — i.e. the committed state always
equals the reference state as of the last commit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.pack import Pack
from repro.storage.shadow import ShadowFile

PAGE = 64  # small pages keep the state space dense


def read_committed(pack, ino):
    inode = pack.get_inode(ino)
    out = bytearray()
    for blockno in inode.pages:
        data = pack.read_block(blockno) if blockno is not None else b""
        out += data.ljust(PAGE, b"\x00")
    return bytes(out[:inode.size])


class Reference:
    """What the file *should* contain."""

    def __init__(self):
        self.committed = b""
        self.staged = b""

    def write(self, page, data):
        buf = bytearray(self.staged.ljust((page + 1) * PAGE, b"\x00"))
        buf[page * PAGE:page * PAGE + len(data)] = data
        self.staged = bytes(buf)

    def set_size(self, size):
        self.staged = self.staged[:size].ljust(size, b"\x00")

    def truncate(self):
        self.staged = b""

    def commit(self):
        self.committed = self.staged

    def abort(self):
        self.staged = self.committed


op_st = st.one_of(
    st.tuples(st.just("write"), st.integers(0, 5),
              st.binary(min_size=1, max_size=PAGE)),
    st.tuples(st.just("truncate")),
    st.tuples(st.just("commit")),
    st.tuples(st.just("abort")),
)


@given(st.lists(op_st, max_size=30))
@settings(max_examples=300, deadline=None)
def test_committed_state_always_matches_reference(ops):
    pack = Pack(gfs=0, site_id=0, pack_index=0, n_blocks=4096)
    ino = pack.alloc_inode().ino
    shadow = ShadowFile(pack, ino)
    ref = Reference()

    for op in ops:
        if op[0] == "write":
            __, page, data = op
            old = shadow.read_page(page).ljust(PAGE, b"\x00")
            buf = bytearray(old)
            buf[:len(data)] = data      # read-modify-splice, like the FS
            shadow.write_page(page, bytes(buf))
            ref.write(page, data)
            new_size = max(shadow.incore.size, page * PAGE + len(data))
            shadow.set_size(new_size)
            ref.set_size(new_size)
        elif op[0] == "truncate":
            shadow.truncate()
            ref.truncate()
        elif op[0] == "commit":
            shadow.commit()
            ref.commit()
        elif op[0] == "abort":
            shadow.abort()
            ref.abort()
        # Invariant: disk always shows the last committed state only.
        assert read_committed(pack, ino) == ref.committed


@given(st.lists(op_st, max_size=30))
@settings(max_examples=200, deadline=None)
def test_no_block_leaks(ops):
    """Every allocated block is either reachable from the committed inode
    or part of the live staged set; nothing leaks across commits/aborts."""
    pack = Pack(gfs=0, site_id=0, pack_index=0, n_blocks=4096)
    ino = pack.alloc_inode().ino
    shadow = ShadowFile(pack, ino)
    for op in ops:
        if op[0] == "write":
            __, page, data = op
            old = shadow.read_page(page).ljust(PAGE, b"\x00")
            buf = bytearray(old)
            buf[:len(data)] = data
            shadow.write_page(page, bytes(buf))
            shadow.set_size(max(shadow.incore.size,
                                page * PAGE + len(data)))
        elif op[0] == "truncate":
            shadow.truncate()
        elif op[0] == "commit":
            shadow.commit()
        elif op[0] == "abort":
            shadow.abort()
    shadow.abort()   # drop any staged tail
    committed_blocks = {b for b in pack.get_inode(ino).pages
                        if b is not None}
    assert pack.blocks_in_use == len(committed_blocks)


@given(st.lists(op_st, max_size=25), st.integers(0, 24))
@settings(max_examples=200, deadline=None)
def test_crash_at_any_point_preserves_last_commit(ops, crash_at):
    """Dropping the incore state anywhere between commits (a crash) leaves
    exactly the last committed image."""
    pack = Pack(gfs=0, site_id=0, pack_index=0, n_blocks=4096)
    ino = pack.alloc_inode().ino
    shadow = ShadowFile(pack, ino)
    ref = Reference()
    for i, op in enumerate(ops):
        if i == crash_at:
            break   # crash: incore vanishes, disk untouched
        if op[0] == "write":
            __, page, data = op
            old = shadow.read_page(page).ljust(PAGE, b"\x00")
            buf = bytearray(old)
            buf[:len(data)] = data
            shadow.write_page(page, bytes(buf))
            ref.write(page, data)
            size = max(shadow.incore.size, page * PAGE + len(data))
            shadow.set_size(size)
            ref.set_size(size)
        elif op[0] == "truncate":
            shadow.truncate()
            ref.truncate()
        elif op[0] == "commit":
            shadow.commit()
            ref.commit()
        elif op[0] == "abort":
            shadow.abort()
            ref.abort()
    assert read_committed(pack, ino) == ref.committed
