"""The Unix baseline must track the same reference model as LOCUS: if the
yardstick is wrong, T1's comparison means nothing."""

import os
import random
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from test_model_based import OPS, ModelFs, _random_path  # noqa: E402

from repro.baselines.unixfs import UnixFs  # noqa: E402
from repro.errors import FsError  # noqa: E402
from repro.sim import Simulator  # noqa: E402


def _run_unix_sequence(seed, n_ops=150):
    rng = random.Random(seed)
    sim = Simulator(seed=seed)
    fs = UnixFs(sim)
    model = ModelFs()
    for step in range(n_ops):
        op = rng.choice(("write", "read", "mkdir", "unlink", "readdir"))
        path = _random_path(rng)
        data = f"step {step}".encode()

        def on_fs():
            if op == "write":
                return sim.run_task(fs.write_file(path, data)) and None
            if op == "read":
                attrs = sim.run_task(fs.stat(path))
                if attrs["ftype"].value in ("directory", "hidden_dir"):
                    return "DIR"
                return sim.run_task(fs.read_file(path))
            if op == "mkdir":
                sim.run_task(fs.mkdir(path))
                return None
            if op == "unlink":
                sim.run_task(fs.unlink(path))
                return None
            if op == "readdir":
                return sim.run_task(fs.readdir(path))

        def on_model():
            if op == "write":
                model.write_file(path, data)
                return None
            if op == "read":
                return model.read_file(path)
            if op == "mkdir":
                model.mkdir(path)
                return None
            if op == "unlink":
                model.unlink(path)
                return None
            if op == "readdir":
                return model.readdir(path)

        try:
            got = ("ok", on_fs())
        except FsError as exc:
            got = ("err", exc.errno)
        try:
            want = ("ok", on_model())
        except FsError as exc:
            want = ("err", exc.errno)
        assert got == want, f"step {step}: {op} {path}: {got} != {want}"
    return n_ops


@pytest.mark.parametrize("seed", [10, 11, 12])
def test_unix_baseline_matches_reference_model(seed):
    assert _run_unix_sequence(seed) == 150
