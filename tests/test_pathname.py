"""Pathname resolution: mounts, '..' crossings, hidden directories, and the
multi-filegroup naming tree (paper sections 2.1, 2.3.4, 2.4.1)."""

import pytest

from repro import FileType, LocusCluster
from repro.errors import EINVAL, ENOENT, ENOTDIR, EXDEV


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=3, seed=55)


class TestMounts:
    @pytest.fixture
    def mounted(self, cluster):
        sh = cluster.shell(0)
        sh.mkdir("/usr")
        gfs = cluster.add_filegroup("usr-fg", pack_sites=[1, 2],
                                    mount_at="/usr")
        cluster.settle()
        return sh, gfs

    def test_path_crosses_into_mounted_filegroup(self, cluster, mounted):
        sh, gfs = mounted
        sh.write_file("/usr/inside", b"in the child filegroup")
        attrs = sh.stat("/usr/inside")
        # The file's storage sites are the child filegroup's pack sites.
        assert set(attrs["storage_sites"]) <= {1, 2}
        assert sh.read_file("/usr/inside") == b"in the child filegroup"

    def test_names_are_location_transparent_across_mounts(self, cluster,
                                                          mounted):
        sh, __ = mounted
        sh.mkdir("/usr/lib")
        sh.write_file("/usr/lib/libc", b"library")
        assert cluster.shell(2).read_file("/usr/lib/libc") == b"library"

    def test_dotdot_crosses_mount_point_upward(self, cluster, mounted):
        sh, __ = mounted
        sh.mkdir("/usr/sub")
        sh.write_file("/marker", b"root level")
        assert sh.read_file("/usr/sub/../../marker") == b"root level"
        # '..' from the filegroup root itself lands in the parent tree.
        assert "usr" in sh.readdir("/usr/..")

    def test_separate_inode_spaces(self, cluster, mounted):
        sh, gfs = mounted
        sh.write_file("/usr/a", b"x")
        sh.write_file("/rootfile", b"y")
        usr_attrs = sh.stat("/usr/a")
        root_attrs = sh.stat("/rootfile")
        # Same low-level names may repeat across filegroups; the pair
        # <filegroup, inode> is what is globally unique (section 2.2.2).
        fs = cluster.site(0).fs
        usr_gfile, __ = cluster.call(0, fs.resolve_gfile(None, "/usr/a"))
        root_gfile, __ = cluster.call(0, fs.resolve_gfile(None,
                                                          "/rootfile"))
        assert usr_gfile[0] == gfs
        assert root_gfile[0] == 0

    def test_link_across_filegroups_exdev(self, cluster, mounted):
        sh, __ = mounted
        sh.write_file("/usr/file", b"x")
        with pytest.raises(EXDEV):
            sh.link("/usr/file", "/rootlink")
        with pytest.raises(EXDEV):
            sh.rename("/usr/file", "/moved")

    def test_chdir_into_mounted_filegroup(self, cluster, mounted):
        sh, __ = mounted
        sh.mkdir("/usr/work")
        sh.chdir("/usr/work")
        sh.write_file("here", b"relative in child fg")
        assert sh.read_file("/usr/work/here") == b"relative in child fg"

    def test_mount_point_requires_directory(self, cluster):
        sh = cluster.shell(0)
        sh.write_file("/notadir", b"x")
        with pytest.raises(ENOTDIR):
            cluster.add_filegroup("bad", pack_sites=[1], mount_at="/notadir")

    def test_css_per_filegroup(self, cluster, mounted):
        __, gfs = mounted
        mount = cluster.site(0).fs.mount
        assert mount.css_for(0) == 0          # root fg: lowest pack site
        assert mount.css_for(gfs) == 1        # child fg packs at {1,2}

    def test_partition_isolates_child_filegroup(self, cluster, mounted):
        sh, gfs = mounted
        sh.write_file("/usr/data", b"both packs")
        cluster.settle()
        cluster.partition({0}, {1, 2})
        # Site 0 holds no pack of the child fg: unreachable.
        with pytest.raises(ENOENT):
            sh.read_file("/usr/data")
        # Sites 1-2 still serve it, with their own CSS.
        assert cluster.shell(1).read_file("/usr/data") == b"both packs"
        cluster.heal()
        assert sh.read_file("/usr/data") == b"both packs"


class TestHiddenDirectories:
    def test_context_list_tried_in_order(self, cluster):
        sh = cluster.shell(0)
        sh.mkdir("/cmd", hidden=True)
        sh.set_hidden_visible(True)
        sh.write_file("/cmd/fallback", b"generic build")
        sh.set_hidden_visible(False)
        sh.set_hidden_context(["vax780", "fallback"])
        assert sh.read_file("/cmd") == b"generic build"

    def test_no_context_match_is_enoent(self, cluster):
        sh = cluster.shell(0)
        sh.mkdir("/cmd", hidden=True)
        sh.set_hidden_context(["nonexistent"])
        with pytest.raises(ENOENT):
            sh.read_file("/cmd")

    def test_hidden_dir_in_middle_of_path(self, cluster):
        """The pathname continues after the context substitution."""
        sh = cluster.shell(0)
        sh.mkdir("/env", hidden=True)
        sh.set_hidden_visible(True)
        sh.mkdir("/env/vax")
        sh.write_file("/env/vax/config", b"vax config")
        sh.set_hidden_visible(False)
        sh.set_hidden_context(["vax"])
        assert sh.read_file("/env/config") == b"vax config"

    def test_stat_of_hidden_resolves_context_entry(self, cluster):
        sh = cluster.shell(0)
        sh.mkdir("/who", hidden=True)
        sh.set_hidden_visible(True)
        sh.write_file("/who/vax", b"12345")
        sh.set_hidden_visible(False)
        assert sh.stat("/who")["size"] == 5  # the vax entry's size


class TestPathEdgeCases:
    def test_empty_path_rejected(self, cluster):
        sh = cluster.shell(0)
        with pytest.raises(EINVAL):
            sh.stat("")

    def test_trailing_slashes_ignored(self, cluster):
        sh = cluster.shell(0)
        sh.mkdir("/d")
        assert sh.readdir("/d/") == []
        assert sh.readdir("//d//") == []

    def test_long_name_rejected(self, cluster):
        sh = cluster.shell(0)
        from repro.errors import ENAMETOOLONG
        with pytest.raises(ENAMETOOLONG):
            sh.write_file("/" + "x" * 300, b"data")

    def test_deep_nesting(self, cluster):
        sh = cluster.shell(0)
        path = ""
        for i in range(12):
            path += f"/n{i}"
            sh.mkdir(path)
        sh.write_file(path + "/leaf", b"deep")
        assert sh.read_file(path + "/leaf") == b"deep"
