"""Error-path coverage: remote aborts, attribute staging, misuse of the
kernel API surfaces."""

import pytest

from repro import LocusCluster, Mode
from repro.errors import EBADF, EINVAL, ENOENT, ESTALE


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=3, seed=221)


class TestRemoteStagingOps:
    def test_remote_abort_discards_remote_shadow(self, cluster):
        sh2 = cluster.shell(2)
        sh2.write_file("/target", b"committed")
        cluster.settle()
        fs0 = cluster.site(0).fs
        gfile = (0, sh2.stat("/target")["ino"])
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.WRITE))
        cluster.call(0, fs0.write(handle, 0, b"DOOMED!!!"))
        cluster.call(0, fs0.abort(handle))
        cluster.call(0, fs0.close(handle))
        assert sh2.read_file("/target") == b"committed"

    def test_remote_set_attrs_roundtrip(self, cluster):
        sh2 = cluster.shell(2)
        sh2.write_file("/meta", b"m")
        cluster.settle()
        fs0 = cluster.site(0).fs
        gfile = (0, sh2.stat("/meta")["ino"])
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.WRITE))
        cluster.call(0, fs0.set_attrs(handle, perms=0o600, owner="eve"))
        cluster.call(0, fs0.close(handle))
        cluster.settle()
        attrs = sh2.stat("/meta")
        assert attrs["perms"] == 0o600 and attrs["owner"] == "eve"

    def test_remote_truncate_via_handler(self, cluster):
        sh2 = cluster.shell(2)
        sh2.write_file("/trunc", b"long content stays long")
        cluster.settle()
        fs0 = cluster.site(0).fs
        gfile = (0, sh2.stat("/trunc")["ino"])
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.WRITE))
        cluster.call(0, fs0.truncate(handle))
        cluster.call(0, fs0.write(handle, 0, b"short"))
        cluster.call(0, fs0.close(handle))
        cluster.settle()
        assert sh2.read_file("/trunc") == b"short"


class TestKernelApiMisuse:
    def test_read_negative_args(self, cluster):
        sh = cluster.shell(0)
        sh.write_file("/f", b"x")
        fs = cluster.site(0).fs
        gfile = (0, sh.stat("/f")["ino"])
        handle = cluster.call(0, fs.open_gfile(gfile, Mode.READ))
        with pytest.raises(EINVAL):
            cluster.call(0, fs.read(handle, -1, 10))
        with pytest.raises(EINVAL):
            cluster.call(0, fs.read(handle, 0, -10))
        cluster.call(0, fs.close(handle))

    def test_write_on_read_handle(self, cluster):
        sh = cluster.shell(0)
        sh.write_file("/f", b"x")
        fs = cluster.site(0).fs
        gfile = (0, sh.stat("/f")["ino"])
        handle = cluster.call(0, fs.open_gfile(gfile, Mode.READ))
        for op in (fs.write(handle, 0, b"no"),
                   fs.truncate(handle),
                   fs.set_attrs(handle, perms=0o777),
                   fs.commit(handle)):
            with pytest.raises(EBADF):
                cluster.call(0, op)
        cluster.call(0, fs.close(handle))

    def test_double_close_and_use_after_close(self, cluster):
        sh = cluster.shell(0)
        sh.write_file("/f", b"x")
        fs = cluster.site(0).fs
        gfile = (0, sh.stat("/f")["ino"])
        handle = cluster.call(0, fs.open_gfile(gfile, Mode.READ))
        cluster.call(0, fs.close(handle))
        with pytest.raises(EBADF):
            cluster.call(0, fs.close(handle))
        with pytest.raises(EBADF):
            cluster.call(0, fs.read(handle, 0, 1))

    def test_open_deleted_gfile(self, cluster):
        sh = cluster.shell(0)
        sh.write_file("/gone", b"x")
        gfile = (0, sh.stat("/gone")["ino"])
        sh.unlink("/gone")
        fs = cluster.site(0).fs
        with pytest.raises(ENOENT):
            cluster.call(0, fs.open_gfile(gfile, Mode.READ))

    def test_ss_open_refuses_stale_copy(self, cluster):
        """Direct exercise of the refusal in section 2.3.3: a storage site
        that does not store the latest version refuses to serve."""
        sh = cluster.shell(0)
        sh.setcopies(2)
        sh.write_file("/staleable", b"v1")
        cluster.settle()
        gfile = (0, sh.stat("/staleable")["ino"])
        # Freeze site 1's propagation, then update at site 0.
        cluster.site(1).fs.propagator.enqueue = lambda *a, **k: None
        sh.write_file("/staleable", b"v2")
        fs1 = cluster.site(1).fs
        latest = sh.stat("/staleable")["version"]
        with pytest.raises(ESTALE):
            cluster.call(1, fs1.h_ss_open(0, {
                "gfile": gfile, "mode": Mode.READ, "us": 1,
                "required_vv": latest,
            }))

    def test_open_unknown_gfile(self, cluster):
        fs = cluster.site(0).fs
        with pytest.raises(ENOENT):
            cluster.call(0, fs.open_gfile((0, 424242), Mode.READ))
