"""Unit and property-based tests for the directory merge algorithm
(paper section 4.4) and the mailbox merge (section 4.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.directory import DirEntry
from repro.recovery.dir_merge import merge_directories
from repro.recovery.mailbox import MailMessage, decode_mailbox, \
    encode_mailbox, merge_mailboxes
from repro.storage.inode import FileType
from repro.storage.version_vector import VersionVector


def vv(**kw):
    return VersionVector({int(k[1:]): v for k, v in kw.items()})


def live(name, ino):
    return DirEntry(name, ino, FileType.REGULAR)


def dead(name, ino, dvv=None):
    return DirEntry(name, ino, FileType.REGULAR, deleted=True,
                    dvv=dvv or VersionVector())


def names_of(entries, include_deleted=False):
    return sorted(e.name for e in entries
                  if include_deleted or not e.deleted)


class TestMergeRules:
    def test_rule_a_entry_in_one_propagates(self):
        merged, report = merge_directories(
            [[live("a", 1)], []], lambda ino: None)
        assert names_of(merged) == ["a"]

    def test_rule_b_delete_propagates(self):
        dvv_val = vv(s0=2)
        merged, __ = merge_directories(
            [[dead("a", 1, dvv_val)], [live("a", 1)]],
            lambda ino: dvv_val)          # unmodified since delete
        assert names_of(merged) == []
        assert names_of(merged, include_deleted=True) == ["a"]

    def test_rule_c_both_live_no_action(self):
        merged, report = merge_directories(
            [[live("a", 1)], [live("a", 1)]], lambda ino: None)
        assert names_of(merged) == ["a"]
        assert len(merged) == 1

    def test_rule_d_modified_since_delete_undoes_delete(self):
        tomb_vv = vv(s0=2)
        current = vv(s0=2, s1=1)          # strictly newer: modified after
        merged, report = merge_directories(
            [[dead("a", 1, tomb_vv)], [live("a", 1)]],
            lambda ino: current)
        assert names_of(merged) == ["a"]
        assert report.undone_deletes == 1

    def test_rule_d_unmodified_delete_wins(self):
        tomb_vv = vv(s0=3)
        merged, report = merge_directories(
            [[dead("a", 1, tomb_vv)], [live("a", 1)]],
            lambda ino: tomb_vv)          # same version: no modification
        assert names_of(merged) == []
        assert report.propagated_deletes == 1

    def test_rule_1_name_conflict_renames_both(self):
        merged, report = merge_directories(
            [[live("clash", 1)], [live("clash", 2)]], lambda ino: None)
        assert names_of(merged) == ["clash@1", "clash@2"]
        assert report.name_conflicts

    def test_three_way_name_conflict(self):
        merged, __ = merge_directories(
            [[live("x", 1)], [live("x", 2)], [live("x", 3)]],
            lambda ino: None)
        assert names_of(merged) == ["x@1", "x@2", "x@3"]

    def test_four_copies_with_pairwise_duplicates(self):
        merged, __ = merge_directories(
            [[live("x", 1)], [live("x", 2)], [live("x", 1)],
             [live("x", 2)]],
            lambda ino: None)
        assert names_of(merged) == ["x@1", "x@2"]

    def test_dot_entries_never_conflict(self):
        copies = [
            [DirEntry(".", 5, FileType.DIRECTORY),
             DirEntry("..", 1, FileType.DIRECTORY)],
            [DirEntry(".", 5, FileType.DIRECTORY),
             DirEntry("..", 1, FileType.DIRECTORY)],
        ]
        merged, report = merge_directories(copies, lambda ino: None)
        assert names_of(merged) == [".", ".."]
        assert not report.name_conflicts

    def test_two_tombstones_keep_later_version(self):
        early, late = vv(s0=1), vv(s0=5)
        merged, __ = merge_directories(
            [[dead("a", 1, early)], [dead("a", 1, late)]],
            lambda ino: None)
        assert merged[0].dvv == late

    def test_tombstone_vs_different_live_ino(self):
        """A tombstone of one file does not block a different file that
        legitimately reused the name in the other partition."""
        merged, __ = merge_directories(
            [[dead("n", 1, vv(s0=2))], [live("n", 9)]], lambda ino: None)
        assert [e.ino for e in merged if not e.deleted] == [9]


# -- property-based ----------------------------------------------------------

ino_st = st.integers(min_value=2, max_value=6)
name_st = st.sampled_from(["a", "b", "c", "d"])
vv_st = st.dictionaries(st.integers(0, 3), st.integers(0, 4),
                        max_size=3).map(VersionVector)


@st.composite
def entry_st(draw):
    deleted = draw(st.booleans())
    return DirEntry(
        name=draw(name_st),
        ino=draw(ino_st),
        ftype=FileType.REGULAR,
        deleted=deleted,
        dvv=draw(vv_st) if deleted else None,
    )


@st.composite
def dir_copy_st(draw):
    entries = draw(st.lists(entry_st(), max_size=5))
    # One entry per name within one copy (directories are name-keyed sets).
    seen, out = set(), []
    for e in entries:
        if e.name not in seen:
            seen.add(e.name)
            out.append(e)
    return out


copies_st = st.lists(dir_copy_st(), min_size=1, max_size=4)


def _version_lookup(mapping):
    def lookup(ino):
        return mapping.get(ino)
    return lookup


class TestMergeProperties:
    @given(copies_st)
    @settings(max_examples=200)
    def test_names_unique_in_result(self, copies):
        merged, __ = merge_directories(copies, lambda ino: None)
        names = [e.name for e in merged]
        assert len(names) == len(set(names))

    @given(copies_st)
    @settings(max_examples=200)
    def test_no_lost_inodes(self, copies):
        """Every live inode from any copy survives (possibly renamed,
        possibly tombstoned by a delete, but never silently vanished)."""
        merged, __ = merge_directories(copies, lambda ino: None)
        input_inos = {e.ino for c in copies for e in c}
        output_inos = {e.ino for e in merged}
        # A live-vs-tombstone-of-other-ino collision may drop the tombstone
        # record (its delete lives in the file inode); live entries persist.
        live_inputs = {e.ino for c in copies for e in c if not e.deleted}
        assert live_inputs - output_inos == set() or all(
            any(m.ino == i for m in merged) for i in live_inputs
            if not any(e.ino == i and e.deleted for c in copies for e in c))

    @given(dir_copy_st())
    @settings(max_examples=200)
    def test_merge_with_self_is_identity_on_names(self, copy):
        merged, report = merge_directories([copy, copy], lambda ino: None)
        assert names_of(merged, include_deleted=True) == \
            sorted(e.name for e in copy)
        assert not report.name_conflicts

    @given(copies_st)
    @settings(max_examples=150)
    def test_merge_commutative_on_live_inodes(self, copies):
        """Fold order may vary tombstone residue and alias spelling, but
        the set of surviving (live) inodes is order-independent — no update
        is lost or resurrected depending on site enumeration order."""
        merged_fwd, __ = merge_directories(copies, lambda ino: None)
        merged_rev, __ = merge_directories(list(reversed(copies)),
                                           lambda ino: None)
        def live_inos(entries):
            return sorted(e.ino for e in entries if not e.deleted)
        assert live_inos(merged_fwd) == live_inos(merged_rev)

    @given(copies_st)
    @settings(max_examples=150)
    def test_merge_idempotent(self, copies):
        merged_once, __ = merge_directories(copies, lambda ino: None)
        merged_twice, __ = merge_directories([merged_once], lambda ino: None)
        assert sorted((e.name, e.ino, e.deleted) for e in merged_once) == \
            sorted((e.name, e.ino, e.deleted) for e in merged_twice)


# -- mailbox merge -----------------------------------------------------------

def msg(mid, subject="s", deleted=False, stamp=0.0):
    return MailMessage(msg_id=mid, sender="x", subject=subject,
                       body="b", stamp=stamp, deleted=deleted)


class TestMailboxMerge:
    def test_union(self):
        merged = merge_mailboxes([[msg("1")], [msg("2")]])
        assert {m.msg_id for m in merged} == {"1", "2"}

    def test_duplicates_collapse(self):
        merged = merge_mailboxes([[msg("1")], [msg("1")]])
        assert len(merged) == 1

    def test_delete_wins(self):
        merged = merge_mailboxes([[msg("1", deleted=True)], [msg("1")]])
        assert merged[0].deleted

    def test_codec_roundtrip(self):
        messages = [msg("1", stamp=2.0), msg("2", deleted=True, stamp=1.0)]
        assert decode_mailbox(encode_mailbox(messages)) == sorted(
            messages, key=lambda m: (m.stamp, m.msg_id))

    def test_empty_mailbox_roundtrip(self):
        assert decode_mailbox(encode_mailbox([])) == []
        assert decode_mailbox(b"") == []

    mailbox_st = st.lists(
        st.builds(msg,
                  mid=st.sampled_from(["a", "b", "c", "d"]),
                  deleted=st.booleans(),
                  stamp=st.floats(0, 10, allow_nan=False)),
        max_size=6)

    @given(st.lists(mailbox_st, min_size=1, max_size=4))
    @settings(max_examples=200)
    def test_merge_never_loses_a_message_id(self, boxes):
        merged = merge_mailboxes(boxes)
        assert {m.msg_id for box in boxes for m in box} == \
            {m.msg_id for m in merged}

    @given(st.lists(mailbox_st, min_size=1, max_size=4))
    @settings(max_examples=200)
    def test_merge_ids_unique(self, boxes):
        merged = merge_mailboxes(boxes)
        ids = [m.msg_id for m in merged]
        assert len(ids) == len(set(ids))
