"""Update propagation behaviours (paper section 2.3.6)."""

import pytest

from repro import LocusCluster, Mode
from repro.net.stats import StatsWindow


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=3, seed=44)


def make_replicated(cluster, path, data, copies=3):
    sh = cluster.shell(0)
    sh.setcopies(copies)
    sh.write_file(path, data)
    cluster.settle()
    return sh


class TestPullMechanics:
    def test_propagation_deferred_while_file_open_locally(self, cluster):
        """The propagator retries later rather than committing under an
        active local open."""
        sh = make_replicated(cluster, "/busy", b"v1")
        ino = sh.stat("/busy")["ino"]
        # Open the file at site 1 (keeps an SsOpen there), then update at 0.
        sh1 = cluster.shell(1)
        fs1 = cluster.site(1).fs
        handle = cluster.call(1, fs1.open_gfile((0, ino), Mode.READ))
        sh0w = cluster.shell(0)
        # Site 1 was picked as active SS for the read; the writer is forced
        # to the same SS, so instead update from site 0 after closing:
        cluster.call(1, fs1.close(handle))
        cluster.settle()
        sh0w.write_file("/busy", b"v2 update")
        cluster.settle()
        inode = cluster.site(1).packs[0].get_inode(ino)
        assert inode.version == sh.stat("/busy")["version"]

    def test_interrupted_pull_leaves_coherent_old_copy(self, cluster):
        """'If contact is lost with the site containing the newer version,
        the local site is still left with a coherent, complete copy of the
        file, albeit still out of date.'"""
        psz = cluster.config.cost.page_size
        sh = make_replicated(cluster, "/coherent", b"OLD." * (2 * psz // 4))
        ino = sh.stat("/coherent")["ino"]
        old_version = sh.stat("/coherent")["version"]
        # Update at site 0, then immediately cut sites 1,2 off before their
        # pulls can complete.
        sh.write_file("/coherent", b"NEW!" * (2 * psz // 4))
        cluster.partition({0}, {1, 2}, settle=False)
        cluster.settle()
        inode = cluster.site(1).packs[0].get_inode(ino)
        content = b"".join(
            cluster.site(1).packs[0].read_block(b) for b in inode.pages
            if b is not None)[:inode.size]
        # Either fully old or fully new — never interleaved.
        assert content in (b"OLD." * (2 * psz // 4),
                           b"NEW!" * (2 * psz // 4))
        if inode.version == old_version:
            assert content.startswith(b"OLD.")
        cluster.heal()
        cluster.settle()
        assert cluster.shell(1).read_file("/coherent").startswith(b"NEW!")

    def test_inode_only_change_propagates_without_data_pull(self, cluster):
        """'whether it was just inode information that changed and no data
        (eg. ownership or permissions)'."""
        sh = make_replicated(cluster, "/meta", b"payload" * 100)
        win = StatsWindow(cluster.stats)
        sh.chown("/meta", "alice")
        cluster.settle()
        snap = win.close()
        assert snap.sent.get("fs.pull_read", 0) == 0
        for s in range(3):
            inode = cluster.site(s).packs[0].get_inode(
                sh.stat("/meta")["ino"])
            assert inode.owner == "alice"

    def test_burst_of_updates_converges(self, cluster):
        sh = make_replicated(cluster, "/burst", b"0")
        for i in range(10):
            sh.write_file("/burst", f"gen {i}".encode())
        cluster.settle()
        ino = sh.stat("/burst")["ino"]
        target = sh.stat("/burst")["version"]
        for s in range(3):
            assert cluster.site(s).packs[0].get_inode(ino).version == target

    def test_propagator_stats_track_work(self, cluster):
        make_replicated(cluster, "/tracked", b"x" * 4000)
        stats = cluster.site(1).fs.propagator.stats
        assert stats.pulls >= 1
        assert stats.pages_pulled >= 1

    def test_writer_notified_sites_eventually_identical_bytes(self, cluster):
        psz = cluster.config.cost.page_size
        data = bytes(range(256)) * (3 * psz // 256)
        sh = make_replicated(cluster, "/bytes", data)
        ino = sh.stat("/bytes")["ino"]
        for s in range(3):
            pack = cluster.site(s).packs[0]
            inode = pack.get_inode(ino)
            content = b"".join(
                pack.read_block(b).ljust(psz, b"\x00")
                for b in inode.pages)[:inode.size]
            assert content == data
