"""Local filesystem behaviour: the Unix-compatible surface (paper section 2).

Everything here runs where US == CSS == SS, the fully local case the paper
says costs the same as conventional Unix.
"""

import pytest

from repro import FileType, LocusCluster
from repro.errors import (EBADF, EEXIST, EINVAL, EISDIR, ENOENT, ENOTDIR,
                          ENOTEMPTY, EXDEV)


class TestCreateReadWrite:
    def test_write_then_read_roundtrip(self, sh):
        sh.write_file("/a", b"hello world")
        assert sh.read_file("/a") == b"hello world"

    def test_empty_file(self, sh):
        sh.write_file("/empty", b"")
        assert sh.read_file("/empty") == b""
        assert sh.stat("/empty")["size"] == 0

    def test_multi_page_file(self, sh, cluster):
        psz = cluster.config.cost.page_size
        data = bytes((i * 7) % 256 for i in range(3 * psz + 123))
        sh.write_file("/big", data)
        assert sh.read_file("/big") == data
        assert sh.stat("/big")["size"] == len(data)

    def test_partial_page_overwrite(self, sh):
        sh.write_file("/f", b"aaaaaaaaaa")
        fd = sh.open("/f", "w")
        sh.pwrite(fd, 3, b"XYZ")
        sh.close(fd)
        assert sh.read_file("/f") == b"aaaXYZaaaa"

    def test_write_extends_file(self, sh):
        sh.write_file("/f", b"12345")
        fd = sh.open("/f", "w")
        sh.pwrite(fd, 5, b"6789")
        sh.close(fd)
        assert sh.read_file("/f") == b"123456789"

    def test_sparse_write_zero_fills(self, sh, cluster):
        psz = cluster.config.cost.page_size
        fd = sh.open("/sparse", "w", create=True)
        sh.pwrite(fd, psz + 10, b"end")
        sh.close(fd)
        data = sh.read_file("/sparse")
        assert len(data) == psz + 13
        assert data[:psz + 10] == b"\x00" * (psz + 10)
        assert data.endswith(b"end")

    def test_sequential_read_write_via_offsets(self, sh):
        fd = sh.open("/seq", "w", create=True)
        sh.write(fd, b"one ")
        sh.write(fd, b"two ")
        sh.write(fd, b"three")
        sh.close(fd)
        fd = sh.open("/seq")
        assert sh.read(fd, 4) == b"one "
        assert sh.read(fd, 4) == b"two "
        assert sh.read(fd, 100) == b"three"
        assert sh.read(fd, 10) == b""
        sh.close(fd)

    def test_lseek(self, sh):
        sh.write_file("/s", b"0123456789")
        fd = sh.open("/s")
        sh.lseek(fd, 4)
        assert sh.read(fd, 2) == b"45"
        sh.lseek(fd, -3, "end")
        assert sh.read(fd, 3) == b"789"
        sh.lseek(fd, -5, "cur")
        assert sh.read(fd, 1) == b"5"
        sh.close(fd)
        with pytest.raises(EBADF):
            sh.read(fd, 1)

    def test_truncate_on_reopen(self, sh):
        sh.write_file("/t", b"long content here")
        sh.write_file("/t", b"x")
        assert sh.read_file("/t") == b"x"

    def test_exclusive_create_raises_eexist(self, sh):
        sh.write_file("/x", b"1")
        with pytest.raises(EEXIST):
            sh.open("/x", "w", create=True, excl=True)

    def test_open_missing_raises_enoent(self, sh):
        with pytest.raises(ENOENT):
            sh.open("/nonexistent")

    def test_double_close_raises(self, sh):
        fd = sh.open("/", "r")
        sh.close(fd)
        with pytest.raises(EBADF):
            sh.close(fd)

    def test_write_on_readonly_fd_raises(self, sh):
        sh.write_file("/ro", b"data")
        fd = sh.open("/ro", "r")
        with pytest.raises(EBADF):
            sh.write(fd, b"nope")
        sh.close(fd)


class TestCommitAbort:
    def test_changes_visible_to_later_opens_only_after_commit(self, sh):
        sh.write_file("/c", b"v1")
        fd = sh.open("/c", "w")
        sh.pwrite(fd, 0, b"v2")
        # Another synchronized open is forced to the same storage site and
        # sees the incore (staged) state there; but the committed disk state
        # is still v1 — verify via abort below.
        sh.abort(fd)
        sh.close(fd)
        assert sh.read_file("/c") == b"v1"

    def test_abort_undoes_back_to_previous_commit(self, sh):
        sh.write_file("/c", b"base")
        fd = sh.open("/c", "w")
        sh.pwrite(fd, 0, b"tmp1")
        sh.commit(fd)
        sh.pwrite(fd, 0, b"tmp2")
        sh.abort(fd)
        sh.close(fd)
        assert sh.read_file("/c") == b"tmp1"

    def test_close_commits(self, sh):
        fd = sh.open("/c", "w", create=True)
        sh.write(fd, b"committed at close")
        sh.close(fd)
        assert sh.read_file("/c") == b"committed at close"

    def test_commit_bumps_version_vector(self, sh):
        sh.write_file("/v", b"1")
        v1 = sh.stat("/v")["version"]
        sh.write_file("/v", b"2")
        v2 = sh.stat("/v")["version"]
        assert v2.dominates(v1) and v2 != v1


class TestDirectories:
    def test_mkdir_and_readdir(self, sh):
        sh.mkdir("/d")
        sh.write_file("/d/f1", b"1")
        sh.write_file("/d/f2", b"2")
        assert sh.readdir("/d") == ["f1", "f2"]

    def test_nested_directories(self, sh):
        sh.mkdir("/a")
        sh.mkdir("/a/b")
        sh.mkdir("/a/b/c")
        sh.write_file("/a/b/c/deep", b"deep")
        assert sh.read_file("/a/b/c/deep") == b"deep"
        assert sh.readdir("/a/b") == ["c"]

    def test_mkdir_existing_raises(self, sh):
        sh.mkdir("/d")
        with pytest.raises(EEXIST):
            sh.mkdir("/d")

    def test_mkdir_missing_parent_raises(self, sh):
        with pytest.raises(ENOENT):
            sh.mkdir("/no/such/parent")

    def test_rmdir_empty(self, sh):
        sh.mkdir("/d")
        sh.rmdir("/d")
        with pytest.raises(ENOENT):
            sh.readdir("/d")

    def test_rmdir_nonempty_raises(self, sh):
        sh.mkdir("/d")
        sh.write_file("/d/f", b"x")
        with pytest.raises(ENOTEMPTY):
            sh.rmdir("/d")

    def test_rmdir_file_raises_enotdir(self, sh):
        sh.write_file("/f", b"x")
        with pytest.raises(ENOTDIR):
            sh.rmdir("/f")

    def test_path_through_file_raises_enotdir(self, sh):
        sh.write_file("/f", b"x")
        with pytest.raises(ENOTDIR):
            sh.open("/f/child")

    def test_dot_and_dotdot(self, sh):
        sh.mkdir("/a")
        sh.mkdir("/a/b")
        sh.write_file("/a/b/../target", b"up")
        assert sh.read_file("/a/./b/./../target") == b"up"
        assert sh.readdir("/a/b/../..") == sh.readdir("/")

    def test_dotdot_at_root_stays_at_root(self, sh):
        assert sh.readdir("/..") == sh.readdir("/")

    def test_chdir_relative_paths(self, sh):
        sh.mkdir("/w")
        sh.chdir("/w")
        sh.write_file("rel", b"relative")
        assert sh.read_file("/w/rel") == b"relative"
        sh.chdir("..")
        assert sh.read_file("w/rel") == b"relative"

    def test_root_is_not_creatable(self, sh):
        with pytest.raises((EINVAL, EEXIST, EISDIR)):
            sh.write_file("/", b"")
        with pytest.raises((EINVAL, EEXIST, EISDIR)):
            sh.open("/", "w", create=True)

    def test_name_with_slash_rejected(self, sh):
        from repro.fs.directory import check_name
        with pytest.raises(EINVAL):
            check_name("a/b")
        with pytest.raises(EINVAL):
            check_name("")


class TestUnlinkLinkRename:
    def test_unlink_removes_name(self, sh):
        sh.write_file("/gone", b"x")
        sh.unlink("/gone")
        with pytest.raises(ENOENT):
            sh.read_file("/gone")
        assert "gone" not in sh.readdir("/")

    def test_unlink_missing_raises(self, sh):
        with pytest.raises(ENOENT):
            sh.unlink("/missing")

    def test_unlink_directory_raises_eisdir(self, sh):
        sh.mkdir("/d")
        with pytest.raises(EISDIR):
            sh.unlink("/d")

    def test_create_after_unlink_reuses_name(self, sh):
        sh.write_file("/n", b"first")
        sh.unlink("/n")
        sh.write_file("/n", b"second")
        assert sh.read_file("/n") == b"second"

    def test_hard_link_shares_content(self, sh):
        sh.write_file("/orig", b"shared")
        sh.link("/orig", "/alias")
        assert sh.read_file("/alias") == b"shared"
        assert sh.stat("/alias")["nlink"] == 2
        assert sh.stat("/orig")["ino"] == sh.stat("/alias")["ino"]

    def test_unlink_one_link_keeps_file(self, sh):
        sh.write_file("/orig", b"persist")
        sh.link("/orig", "/alias")
        sh.unlink("/orig")
        assert sh.read_file("/alias") == b"persist"
        assert sh.stat("/alias")["nlink"] == 1

    def test_link_to_directory_raises(self, sh):
        sh.mkdir("/d")
        with pytest.raises(EISDIR):
            sh.link("/d", "/dlink")

    def test_rename_same_directory(self, sh):
        sh.write_file("/old", b"data")
        sh.rename("/old", "/new")
        assert sh.read_file("/new") == b"data"
        with pytest.raises(ENOENT):
            sh.read_file("/old")

    def test_rename_across_directories(self, sh):
        sh.mkdir("/src")
        sh.mkdir("/dst")
        sh.write_file("/src/f", b"moved")
        sh.rename("/src/f", "/dst/g")
        assert sh.read_file("/dst/g") == b"moved"
        assert sh.readdir("/src") == []

    def test_rename_onto_existing_raises(self, sh):
        sh.write_file("/a", b"1")
        sh.write_file("/b", b"2")
        with pytest.raises(EEXIST):
            sh.rename("/a", "/b")


class TestAttributes:
    def test_stat_fields(self, sh):
        sh.write_file("/s", b"abc")
        attrs = sh.stat("/s")
        assert attrs["size"] == 3
        assert attrs["ftype"] is FileType.REGULAR
        assert attrs["nlink"] == 1
        assert attrs["owner"] == "root"
        assert not attrs["deleted"] and not attrs["conflict"]

    def test_chmod_chown(self, sh):
        sh.write_file("/p", b"x")
        sh.chmod("/p", 0o600)
        sh.chown("/p", "alice")
        attrs = sh.stat("/p")
        assert attrs["perms"] == 0o600
        assert attrs["owner"] == "alice"

    def test_attr_change_bumps_version(self, sh):
        """Inode-only changes commit like data changes (section 2.3.6:
        'whether it was just inode information that changed')."""
        sh.write_file("/p", b"x")
        v1 = sh.stat("/p")["version"]
        sh.chmod("/p", 0o600)
        assert sh.stat("/p")["version"].dominates(v1)

    def test_owner_inherited_from_shell_user(self, cluster):
        alice = cluster.shell(0, user="alice")
        alice.write_file("/af", b"x")
        assert alice.stat("/af")["owner"] == "alice"

    def test_dup_shares_offset(self, sh):
        sh.write_file("/d", b"0123456789")
        fd = sh.open("/d")
        fd2 = sh.dup(fd)
        assert sh.read(fd, 3) == b"012"
        assert sh.read(fd2, 3) == b"345"
        sh.close(fd)
        assert sh.read(fd2, 1) == b"6"
        sh.close(fd2)


class TestInodeReuse:
    def test_deleted_inode_number_reallocated(self, cluster, sh):
        """Section 2.3.7: when all storage sites have seen the delete, the
        inode can be reallocated by its controlling pack."""
        sh.write_file("/r1", b"x")
        ino1 = sh.stat("/r1")["ino"]
        sh.unlink("/r1")
        cluster.settle()
        sh.write_file("/r2", b"y")
        assert sh.stat("/r2")["ino"] == ino1
