"""Concurrent fuzzing: many in-flight kernel tasks, random operations,
no per-op quiesce — then global invariants once the dust settles.

Unlike the sequential model suite (exact output matching), this harness
lets operations overlap, so individual outcomes are timing-dependent; the
assertions are the system invariants: nothing wedges, nothing corrupts,
every copy converges, and fsck(+repair) comes back clean.
"""

import random

import pytest

from repro import LocusCluster, Mode
from repro.errors import LocusError
from repro.storage.version_vector import latest
from repro.tools import fsck, fsck_repair


def _op_stream(cluster, rng, site_id, n_ops, log):
    """One site's random operation stream as a single kernel task."""
    fs = cluster.site(site_id).fs

    def stream():
        for step in range(n_ops):
            name = f"/arena/f{rng.randrange(6)}"
            kind = rng.random()
            try:
                if kind < 0.45:
                    gfile, __ = yield from fs.resolve_gfile(None, name)
                    handle = yield from fs.open_gfile(gfile, Mode.READ)
                    yield from fs.read(handle, 0, 256)
                    yield from fs.close(handle)
                    log.append("read")
                elif kind < 0.85:
                    gfile, __ = yield from fs.create_file(None, name)
                    handle = yield from fs.open_gfile(gfile, Mode.WRITE)
                    yield from fs.write(
                        handle, 0,
                        f"s{site_id} step{step}".encode().ljust(64, b"."))
                    yield from fs.close(handle)
                    log.append("write")
                else:
                    yield from fs.unlink(None, name)
                    log.append("unlink")
            except LocusError:
                log.append("error")
            yield rng.random() * 3.0

    return stream()


def _converged(cluster, gfs=0):
    """Every live file's stored copies carry a single version vector."""
    mount = cluster.sites[0].fs.mount
    all_inos = set()
    packs = {}
    for s in mount.pack_sites(gfs):
        pack = cluster.site(s).packs.get(gfs)
        if pack is not None:
            packs[s] = pack
            all_inos |= set(pack.inodes)
    for ino in all_inos:
        copies = [(s, p.get_inode(ino).version) for s, p in packs.items()
                  if p.stores(ino)]
        if len(copies) < 2:
            continue
        __, __, conflict = latest(copies)
        assert not conflict, (ino, copies)
        assert len({vv for __, vv in copies}) == 1, (ino, copies)


@pytest.mark.parametrize("seed", [31, 32, 33])
def test_concurrent_fuzz_invariants(seed):
    cluster = LocusCluster(n_sites=3, seed=seed)
    rng = random.Random(seed)
    sh = cluster.shell(0)
    sh.setcopies(3)
    sh.mkdir("/arena")
    cluster.settle()

    log = []
    for s in range(3):
        cluster.spawn(s, _op_stream(cluster, random.Random(seed + s),
                                    s, 25, log))
    cluster.settle()
    assert len(log) == 75                       # nothing wedged
    assert log.count("error") < len(log)        # and work actually happened
    report = fsck_repair(cluster)
    assert report.clean, report.summary()
    _converged(cluster)


def test_concurrent_fuzz_with_partition_mid_stream():
    cluster = LocusCluster(n_sites=3, seed=44)
    sh = cluster.shell(0)
    sh.setcopies(3)
    sh.mkdir("/arena")
    cluster.settle()
    log = []
    for s in range(3):
        cluster.spawn(s, _op_stream(cluster, random.Random(90 + s),
                                    s, 20, log))
    cluster.sim.run(until=cluster.sim.now + 40)
    cluster.partition({0, 1}, {2}, settle=False)
    cluster.sim.run(until=cluster.sim.now + 120)
    cluster.heal()
    cluster.settle()
    assert len(log) == 60
    # Under create/unlink churn spanning the merge, residue is possible
    # (inode reuse racing the reconciliation); everything must be
    # *detected* and mechanically repairable, never silent corruption.
    report = fsck_repair(cluster)
    assert not report.dangling_entries, report.summary()
    assert not report.nlink_errors
    assert not report.unflagged_conflicts
    assert not report.orphan_inodes