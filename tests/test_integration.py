"""Cluster-level integration: determinism, mixed workloads under partition
churn, and whole-system invariants."""

import random

import pytest

from repro import LocusCluster
from repro.errors import FsError, LocusError, NetworkError
from repro.storage.version_vector import latest
from repro.workloads.generators import build_tree, read_write_mix


class TestDeterminism:
    def _trace(self, seed):
        cluster = LocusCluster(n_sites=3, seed=seed)
        sh = cluster.shell(0)
        paths = build_tree(sh, n_dirs=2, files_per_dir=3, file_size=700,
                           copies=2)
        cluster.settle()
        counts = read_write_mix(sh, paths, ops=30, write_frac=0.3)
        cluster.partition({0}, {1, 2})
        sh.write_file(paths[0], b"partitioned write")
        cluster.heal()
        cluster.settle()
        return (cluster.sim.now, cluster.stats.total_messages,
                dict(cluster.stats.sent), counts)

    def test_identical_seeds_identical_universe(self):
        assert self._trace(99) == self._trace(99)

    def test_different_seeds_differ(self):
        assert self._trace(99) != self._trace(100)


def _all_copies_converged(cluster, sh, paths):
    """After settle, every stored copy of every file carries one version."""
    for path in paths:
        try:
            attrs = sh.stat(path)
        except FsError:
            continue
        if attrs["conflict"]:
            continue
        gfs, ino = 0, attrs["ino"]
        vvs = []
        for s in attrs["storage_sites"]:
            site = cluster.site(s)
            if not site.up:
                continue
            pack = site.packs.get(gfs)
            inode = pack.get_inode(ino) if pack else None
            if inode is not None and inode.has_data:
                vvs.append((s, inode.version))
        __, __, conflict = latest(vvs)
        assert not conflict, f"{path}: divergent copies {vvs}"
        assert len({vv for __, vv in vvs}) <= 1, f"{path} not converged"


class TestChurn:
    def test_workload_with_partition_churn_keeps_invariants(self):
        """Random reads/writes while the network partitions and heals; at
        the end every surviving file's copies have converged and no file
        has silently vanished."""
        cluster = LocusCluster(n_sites=4, seed=77)
        rng = random.Random(1234)
        sh = cluster.shell(0)
        paths = build_tree(sh, n_dirs=2, files_per_dir=4, file_size=600,
                           copies=4)
        cluster.settle()

        schedules = [
            [{0, 1}, {2, 3}],
            None,                      # heal
            [{0, 1, 2}, {3}],
            None,
        ]
        for step, schedule in enumerate(schedules):
            if schedule is None:
                cluster.heal()
            else:
                cluster.partition(*schedule)
            shell = cluster.shell(rng.choice(
                sorted(cluster.site(0).topology.partition_set)))
            for __ in range(6):
                path = rng.choice(paths)
                try:
                    if rng.random() < 0.5:
                        shell.read_file(path)
                    else:
                        shell.write_file(
                            path, f"step{step} data".encode())
                except (FsError, NetworkError):
                    pass  # availability loss is legitimate mid-partition
        cluster.heal()
        cluster.settle()

        # Invariant 1: the tree is intact — every created name resolves
        # (possibly conflict-marked, never lost).
        for path in paths:
            attrs = sh.stat(path)
            assert attrs["ino"] > 1
        # Invariant 2: copies converged (or are explicitly in conflict).
        _all_copies_converged(cluster, sh, paths)

    def test_repeated_crash_restart_cycles(self):
        cluster = LocusCluster(n_sites=3, seed=78)
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/ledger", b"generation 0")
        cluster.settle()
        for generation in range(1, 6):
            victim = generation % 3
            writer = (victim + 1) % 3
            cluster.fail_site(victim)
            cluster.shell(writer).write_file(
                "/ledger", f"generation {generation}".encode())
            cluster.restart_site(victim)
            cluster.settle()
            # The rejoined site caught up.
            ino = sh.stat("/ledger")["ino"]
            inode = cluster.site(victim).packs[0].get_inode(ino)
            assert inode.version == sh.stat("/ledger")["version"]
        assert cluster.shell(2).read_file("/ledger") == b"generation 5"

    def test_all_sites_crash_and_cold_restart(self):
        cluster = LocusCluster(n_sites=3, seed=79)
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/persist", b"on stable storage")
        cluster.settle()
        for s in range(3):
            cluster.fail_site(s, settle=False)
        cluster.settle()
        for s in range(3):
            cluster.restart_site(s, settle=False)
        cluster.heal()
        # Disks survived; a fresh shell reads the data back.
        fresh = cluster.shell(1)
        assert fresh.read_file("/persist") == b"on stable storage"


class TestScale:
    def test_seventeen_site_network(self):
        """The paper's UCLA installation size: 17 VAXes on one Ethernet."""
        cluster = LocusCluster(n_sites=17, seed=17,
                               root_pack_sites=[0, 1, 2, 3])
        sh = cluster.shell(16)              # a diskless using site
        sh.mkdir("/shared")
        sh.write_file("/shared/f", b"from the far end")
        assert cluster.shell(0).read_file("/shared/f") == b"from the far end"
        cluster.partition(set(range(0, 8)), set(range(8, 17)))
        assert cluster.site(0).topology.partition_set == set(range(0, 8))
        cluster.heal()
        assert all(s.topology.partition_set == set(range(17))
                   for s in cluster.sites)

    def test_hundred_files_roundtrip(self):
        cluster = LocusCluster(n_sites=3, seed=21)
        sh = cluster.shell(0)
        sh.mkdir("/bulk")
        for i in range(100):
            sh.write_file(f"/bulk/f{i:03}", f"content {i}".encode() * 3)
        names = sh.readdir("/bulk")
        assert len(names) == 100
        reader = cluster.shell(2)
        for i in (0, 42, 99):
            assert reader.read_file(f"/bulk/f{i:03}") == \
                f"content {i}".encode() * 3
