"""Unit and property-based tests for version vectors [PARK83]."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.version_vector import Ordering, VersionVector, latest


def vv(**kw):
    return VersionVector({int(k[1:]): v for k, v in kw.items()})


class TestBasics:
    def test_empty_vectors_equal(self):
        assert VersionVector().compare(VersionVector()) is Ordering.EQUAL

    def test_bump_dominates_original(self):
        a = VersionVector()
        b = a.bump(1)
        assert b.compare(a) is Ordering.DOMINATES
        assert a.compare(b) is Ordering.DOMINATED

    def test_concurrent_bumps_conflict(self):
        base = VersionVector({1: 1})
        left = base.bump(1)
        right = base.bump(2)
        assert left.compare(right) is Ordering.CONFLICT
        assert left.conflicts(right)

    def test_merge_covers_both(self):
        left = vv(s1=3, s2=1)
        right = vv(s2=4, s3=2)
        merged = left.merge(right)
        assert merged.dominates(left)
        assert merged.dominates(right)
        assert merged.to_dict() == {1: 3, 2: 4, 3: 2}

    def test_zero_entries_are_normalized_away(self):
        assert VersionVector({1: 0, 2: 3}) == vv(s2=3)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            VersionVector({1: -1})

    def test_hash_consistent_with_eq(self):
        assert hash(vv(s1=2, s2=3)) == hash(vv(s2=3, s1=2))

    def test_total(self):
        assert vv(s1=2, s5=3).total() == 5

    def test_bump_does_not_mutate(self):
        a = vv(s1=1)
        a.bump(1)
        assert a == vv(s1=1)


class TestLatest:
    def test_single_copy(self):
        sites, best, conflict = latest([(0, vv(s0=1))])
        assert sites == [0] and best == vv(s0=1) and not conflict

    def test_dominant_copy_found(self):
        newer = vv(s0=2)
        sites, best, conflict = latest([(0, vv(s0=1)), (1, newer), (2, newer)])
        assert sorted(sites) == [1, 2]
        assert best == newer
        assert not conflict

    def test_conflict_detected(self):
        __, __, conflict = latest([(0, vv(s0=1)), (1, vv(s1=1))])
        assert conflict


# -- property-based tests ---------------------------------------------------

sites_st = st.integers(min_value=0, max_value=5)
vv_st = st.dictionaries(sites_st, st.integers(min_value=0, max_value=8),
                        max_size=6).map(VersionVector)


class TestProperties:
    @given(vv_st)
    def test_reflexive_equality(self, a):
        assert a.compare(a) is Ordering.EQUAL
        assert a.dominates(a)

    @given(vv_st, vv_st)
    def test_comparison_antisymmetry(self, a, b):
        order_ab = a.compare(b)
        order_ba = b.compare(a)
        expected = {
            Ordering.EQUAL: Ordering.EQUAL,
            Ordering.DOMINATES: Ordering.DOMINATED,
            Ordering.DOMINATED: Ordering.DOMINATES,
            Ordering.CONFLICT: Ordering.CONFLICT,
        }
        assert order_ba is expected[order_ab]

    @given(vv_st, vv_st)
    def test_merge_is_upper_bound(self, a, b):
        merged = a.merge(b)
        assert merged.dominates(a)
        assert merged.dominates(b)

    @given(vv_st, vv_st)
    def test_merge_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(vv_st, vv_st, vv_st)
    def test_merge_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(vv_st)
    def test_merge_idempotent(self, a):
        assert a.merge(a) == a

    @given(vv_st, sites_st)
    def test_bump_strictly_dominates(self, a, site):
        assert a.bump(site).compare(a) is Ordering.DOMINATES

    @given(vv_st, sites_st, sites_st)
    def test_divergent_bumps_conflict_or_order(self, a, s1, s2):
        """Bumps at different sites from a common ancestor conflict; bumps
        at the same site produce identical vectors (convergent histories)."""
        left = a.bump(s1)
        right = a.bump(s2)
        if s1 == s2:
            assert left == right
        else:
            assert left.conflicts(right)

    @given(vv_st, vv_st, vv_st)
    def test_dominance_transitive(self, a, b, c):
        if a.dominates(b) and b.dominates(c):
            assert a.dominates(c)

    @given(st.lists(st.tuples(sites_st, vv_st), min_size=1, max_size=6))
    def test_latest_returns_maximal(self, copies):
        sites, best, conflict = latest(copies)
        assert sites
        if not conflict:
            # The winner dominates every copy when there is no conflict.
            assert all(best.dominates(v) for _, v in copies)
