"""The hot-path name cache: unit behaviour and — the part that matters —
the impossibility of stale results.

The consistency regressions run every scenario with the cache on *and* off:
the observable results must be identical, only the message traffic may
differ.  A remote commit (or a partition heal + merge) must be visible to
the very next interrogation at every other site.
"""

import pytest

from repro import LocusCluster
from repro.config import CostModel
from repro.fs.directory import DirEntry
from repro.fs.name_cache import NameCache
from repro.net.stats import StatsWindow
from repro.storage.inode import FileType
from repro.storage.version_vector import VersionVector


def _vv(site, n=1):
    v = VersionVector()
    for __ in range(n):
        v = v.bump(site)
    return v


def _entries(*names):
    return [DirEntry(name=n, ino=i + 2, ftype=FileType.REGULAR)
            for i, n in enumerate(names)]


class TestNameCacheUnit:
    def test_validated_get_requires_exact_version(self):
        nc = NameCache(4)
        nc.put((1, 2), _vv(0), _entries("a", "b"))
        assert [e.name for e in nc.get((1, 2), _vv(0))] == ["a", "b"]
        # A different version vector is a miss AND drops the dead entry.
        assert nc.get((1, 2), _vv(0, 2)) is None
        assert (1, 2) not in nc
        assert nc.stats.stale_drops == 1

    def test_entries_are_copies_both_ways(self):
        nc = NameCache(4)
        original = _entries("a")
        nc.put((1, 2), _vv(0), original)
        original[0].deleted = True          # caller mutates its own list
        got = nc.get((1, 2), _vv(0))
        assert got[0].deleted is False      # cache kept its own copy
        got[0].deleted = True               # caller mutates the result
        assert nc.get((1, 2), _vv(0))[0].deleted is False

    def test_lru_eviction(self):
        nc = NameCache(2)
        nc.put((1, 1), _vv(0), _entries("a"))
        nc.put((1, 2), _vv(0), _entries("b"))
        nc.get((1, 1), _vv(0))              # touch: (1, 2) becomes LRU
        nc.put((1, 3), _vv(0), _entries("c"))
        assert (1, 1) in nc and (1, 3) in nc and (1, 2) not in nc
        assert len(nc) == 2

    def test_invalidate_and_clear(self):
        nc = NameCache(4)
        nc.put((1, 2), _vv(0), _entries("a"))
        assert nc.invalidate_file(1, 2) is True
        assert nc.invalidate_file(1, 2) is False
        nc.put((1, 3), _vv(0), _entries("b"))
        nc.clear()
        assert len(nc) == 0
        assert nc.stats.invalidations == 2

    def test_buffer_cache_invalidation_cascades(self, cluster):
        site = cluster.site(1)
        site.name_cache.put((0, 5), _vv(0), _entries("x"))
        site.cache.put((0, 5, 0), b"page")
        site.cache.invalidate_file(0, 5)
        assert (0, 5) not in site.name_cache
        # Single-page invalidation (token revocation) cascades too.
        site.name_cache.put((0, 6), _vv(0), _entries("y"))
        site.cache.invalidate((0, 6, 0))
        assert (0, 6) not in site.name_cache


class TestNegativeEntriesUnit:
    def test_get_negative_requires_exact_version(self):
        nc = NameCache(4)
        nc.put_negative((1, 2), "gone", _vv(0))
        assert nc.peek_negative((1, 2), "gone")
        assert nc.get_negative((1, 2), "gone", _vv(0)) is True
        assert nc.stats.neg_hits == 1
        # The directory moved on: the proof of absence dies.
        assert nc.get_negative((1, 2), "gone", _vv(0, 2)) is False
        assert not nc.peek_negative((1, 2), "gone")
        assert nc.stats.neg_stale_drops == 1

    def test_invalidate_file_drops_negatives_too(self):
        nc = NameCache(4)
        nc.put_negative((1, 2), "a", _vv(0))
        nc.put_negative((1, 2), "b", _vv(0))
        nc.put_negative((1, 3), "c", _vv(0))
        assert nc.invalidate_file(1, 2) is True
        assert not nc.peek_negative((1, 2), "a")
        assert not nc.peek_negative((1, 2), "b")
        assert nc.peek_negative((1, 3), "c")     # other dir untouched
        nc.clear()
        assert not nc.peek_negative((1, 3), "c")

    def test_negative_entries_are_capacity_bounded(self):
        nc = NameCache(2)
        for i in range(5):
            nc.put_negative((1, 2), f"n{i}", _vv(0))
        assert sum(nc.peek_negative((1, 2), f"n{i}")
                   for i in range(5)) == 2

    def test_buffer_cache_cascade_drops_negatives(self, cluster):
        site = cluster.site(1)
        site.name_cache.put_negative((0, 5), "missing", _vv(0))
        site.cache.invalidate_file(0, 5)
        assert not site.name_cache.peek_negative((0, 5), "missing")


@pytest.mark.parametrize("name_cache", [False, True])
class TestRemoteCommitVisibility:
    """A stat/readdir/read at another site never shows pre-commit state."""

    def _cluster(self, name_cache, **kw):
        cost = CostModel().with_overrides(
            name_cache=name_cache,
            batch_pages=4 if name_cache else 1,
            readahead_window=4 if name_cache else 1,
            pull_pipeline=2 if name_cache else 1)
        return LocusCluster(cost=cost, **kw)

    def test_readdir_sees_every_remote_commit(self, name_cache):
        cluster = self._cluster(name_cache, n_sites=3, seed=11)
        sh0, sh1 = cluster.shell(0), cluster.shell(1)
        sh0.mkdir("/d")
        cluster.settle()
        for i in range(4):
            assert sh1.readdir("/d") == sorted(f"f{j}" for j in range(i))
            sh0.write_file(f"/d/f{i}", b"x")   # remote commit, no settle
        assert sh1.readdir("/d") == ["f0", "f1", "f2", "f3"]

    def test_diskless_site_sees_rename_immediately(self, name_cache):
        cluster = self._cluster(name_cache, n_sites=2, seed=11,
                                root_pack_sites=[0])
        sh0, sh1 = cluster.shell(0), cluster.shell(1)
        sh0.mkdir("/d")
        sh0.write_file("/d/old", b"content")
        cluster.settle()
        assert sh1.readdir("/d") == ["old"]      # warm the cache at site 1
        assert sh1.read_file("/d/old") == b"content"
        sh0.rename("/d/old", "/d/new")           # no settle: commit only
        assert sh1.readdir("/d") == ["new"]
        assert sh1.read_file("/d/new") == b"content"
        assert sh1.stat("/d/new")["ftype"] is FileType.REGULAR

    def test_read_never_returns_precommit_pages(self, name_cache):
        cluster = self._cluster(name_cache, n_sites=2, seed=11,
                                root_pack_sites=[0])
        sh0, sh1 = cluster.shell(0), cluster.shell(1)
        sh0.write_file("/f", b"A" * 3000)
        cluster.settle()
        assert sh1.read_file("/f") == b"A" * 3000   # warm pages at site 1
        sh0.write_file("/f", b"B" * 5000)
        assert sh1.read_file("/f") == b"B" * 5000

    def test_heal_and_merge_visibility(self, name_cache):
        cluster = self._cluster(name_cache, n_sites=3, seed=11)
        sh0, sh1 = cluster.shell(0), cluster.shell(1)
        sh0.setcopies(3)
        sh1.setcopies(3)
        sh0.mkdir("/d")
        sh0.write_file("/d/pre", b"1")
        cluster.settle()
        assert sh0.readdir("/d") == ["pre"]      # warm caches at site 0
        cluster.partition({0}, {1, 2})
        sh1.write_file("/d/during", b"2")        # commit in the other part
        cluster.settle()
        cluster.heal()
        assert sh0.readdir("/d") == ["during", "pre"]
        assert sh0.read_file("/d/during") == b"2"


class TestNameCacheEffect:
    """The cache must actually save traffic on the repeated-walk hot path
    (the ablation benchmark T14 quantifies this; here is the cheap floor)."""

    def _walk_messages(self, name_cache):
        cluster = LocusCluster(
            n_sites=2, seed=13, root_pack_sites=[0],
            cost=CostModel().with_overrides(name_cache=name_cache))
        sh0, sh1 = cluster.shell(0), cluster.shell(1)
        sh0.mkdir("/a")
        sh0.mkdir("/a/b")
        sh0.write_file("/a/b/leaf", b"payload")
        cluster.settle()
        sh1.stat("/a/b/leaf")                    # first walk fills the cache
        win = StatsWindow(cluster.stats)
        for __ in range(10):
            sh1.stat("/a/b/leaf")
        snap = win.close()
        return snap.total_messages, cluster

    def test_repeat_walks_send_fewer_messages(self):
        cold, __ = self._walk_messages(name_cache=False)
        warm, cluster = self._walk_messages(name_cache=True)
        assert warm * 2 <= cold, (warm, cold)
        us = cluster.site(1)
        assert us.name_cache.stats.hits >= 10
        assert us.name_cache.stats.hit_rate > 0.5

    def _miss_messages(self, name_cache):
        """Message cost of 10 repeated lookups of a name that is absent
        from a remote directory (the failing PATH-search hot path)."""
        cluster = LocusCluster(
            n_sites=2, seed=13, root_pack_sites=[0],
            cost=CostModel().with_overrides(name_cache=name_cache))
        sh0, sh1 = cluster.shell(0), cluster.shell(1)
        sh0.mkdir("/bin")
        sh0.write_file("/bin/real", b"x")
        cluster.settle()
        with pytest.raises(Exception):
            sh1.stat("/bin/nope")                # first miss fills
        win = StatsWindow(cluster.stats)
        for __ in range(10):
            with pytest.raises(Exception):
                sh1.stat("/bin/nope")
        snap = win.close()
        return snap.total_messages, cluster

    def test_repeated_failing_lookups_send_fewer_messages(self):
        """The PATH-search regression: searching a command through
        directories that do not hold it is all failing lookups; cached
        ENOENT answers must cut the repeat traffic."""
        cold, __ = self._miss_messages(name_cache=False)
        warm, cluster = self._miss_messages(name_cache=True)
        assert warm * 2 <= cold, (warm, cold)
        us = cluster.site(1)
        assert us.name_cache.stats.neg_fills >= 1
        assert us.name_cache.stats.neg_hits >= 10

    def test_create_after_cached_enoent_is_visible(self):
        """A cached ENOENT must die with the commit that creates the name
        (same version-vector authority as positive entries)."""
        cluster = LocusCluster(
            n_sites=2, seed=13, root_pack_sites=[0],
            cost=CostModel().with_overrides(name_cache=True))
        sh0, sh1 = cluster.shell(0), cluster.shell(1)
        sh0.mkdir("/d")
        cluster.settle()
        for __ in range(3):
            with pytest.raises(Exception):
                sh1.stat("/d/late")              # caches the absence
        sh0.write_file("/d/late", b"here")       # remote commit, no settle
        assert sh1.read_file("/d/late") == b"here"
        assert sh1.stat("/d/late")["size"] == 4

    def test_unlink_then_lookup_then_recreate(self):
        """Negative entries filled after an unlink must not outlive the
        recreation of the same name."""
        cluster = LocusCluster(
            n_sites=2, seed=13, root_pack_sites=[0],
            cost=CostModel().with_overrides(name_cache=True))
        sh0, sh1 = cluster.shell(0), cluster.shell(1)
        sh0.write_file("/cycle", b"v1")
        cluster.settle()
        assert sh1.read_file("/cycle") == b"v1"
        sh0.unlink("/cycle")
        with pytest.raises(Exception):
            sh1.stat("/cycle")                   # sees (and caches) ENOENT
        sh0.write_file("/cycle", b"v2")
        assert sh1.read_file("/cycle") == b"v2"

    def test_same_seed_same_trace_under_every_flag_combo(self):
        for flags in ({}, {"name_cache": True},
                      {"batch_pages": 4, "readahead_window": 4,
                       "pull_pipeline": 2},
                      {"name_cache": True, "batch_pages": 4,
                       "readahead_window": 4, "pull_pipeline": 2}):
            traces = []
            for __ in range(2):
                cluster = LocusCluster(
                    n_sites=3, seed=17,
                    cost=CostModel().with_overrides(**flags))
                sh0, sh2 = cluster.shell(0), cluster.shell(2)
                sh0.setcopies(2)
                sh0.mkdir("/d")
                sh0.write_file("/d/f", b"Z" * 9000)
                cluster.settle()
                sh2.stat("/d/f")
                assert sh2.read_file("/d/f") == b"Z" * 9000
                cluster.settle()
                traces.append((cluster.sim.now,
                               dict(cluster.stats.sent)))
            assert traces[0] == traces[1], flags
