"""Critical-path analyzer: exact decomposition on hand-built trees, and
blame tables over live storm traces (ISSUE 10)."""

import pytest

from repro.cli import _run_traced_workload
from repro.obs.critpath import (SEGMENTS, analyze, analyze_spans,
                                format_blame)
from repro.obs.span import Span


def mkspan(span_id, name, kind, start, end, parent_id=None, site=0,
           events=()):
    span = Span(span_id=span_id, trace_id=1, parent_id=parent_id,
                name=name, kind=kind, site=site, start=start)
    span.end = end
    span.events = list(events)
    return span


class TestHandBuiltDecomposition:
    def test_known_segments_decompose_exactly(self):
        # syscall.read [0, 100]
        #   └ rpc:fs.read_page [10, 90] with 20 vtime of queue_wait
        #       └ serve:fs.read_page [40, 70]
        # => local 20 (gaps 0-10 + 90-100), queue 20, wire 30 (rpc self
        #    50 minus queued 20), remote_service 30.
        spans = [
            mkspan(1, "syscall.read", "syscall", 0.0, 100.0),
            mkspan(2, "rpc:fs.read_page", "rpc", 10.0, 90.0, parent_id=1,
                   events=[(15.0, "queue_wait", {"delay": 12.0}),
                           (75.0, "queue_wait", {"delay": 8.0})]),
            mkspan(3, "serve:fs.read_page", "handler", 40.0, 70.0,
                   parent_id=2, site=1),
        ]
        report = analyze_spans(spans)
        blame = report.syscalls["syscall.read"]
        assert blame.count == 1
        assert blame.total == pytest.approx(100.0)
        assert blame.segments["local"] == pytest.approx(20.0)
        assert blame.segments["queue"] == pytest.approx(20.0)
        assert blame.segments["wire"] == pytest.approx(30.0)
        assert blame.segments["remote_service"] == pytest.approx(30.0)
        assert blame.segments["retry_wait"] == 0.0
        assert report.coverage == pytest.approx(1.0)

    def test_srpc_self_time_is_retry_wait(self):
        # srpc wrapper [0, 100] with two rpc attempts; the gap between
        # the attempts (the backoff sleep) is retry_wait.
        spans = [
            mkspan(1, "syscall.open", "syscall", 0.0, 100.0),
            mkspan(2, "srpc:fs.css_open", "rpc", 0.0, 100.0, parent_id=1),
            mkspan(3, "rpc:fs.css_open", "rpc", 0.0, 20.0, parent_id=2),
            mkspan(4, "rpc:fs.css_open", "rpc", 60.0, 100.0, parent_id=2),
        ]
        report = analyze_spans(spans)
        blame = report.syscalls["syscall.open"]
        assert blame.segments["retry_wait"] == pytest.approx(40.0)
        assert blame.segments["wire"] == pytest.approx(60.0)
        assert report.coverage == pytest.approx(1.0)

    def test_overlapping_children_counted_once(self):
        # Two pipelined rpc pulls overlap [10,60] and [40,90]: the overlap
        # [40,60] must be attributed once, not twice.
        spans = [
            mkspan(1, "syscall.pread", "syscall", 0.0, 100.0),
            mkspan(2, "rpc:fs.pull_read_range", "rpc", 10.0, 60.0,
                   parent_id=1),
            mkspan(3, "rpc:fs.pull_read_range", "rpc", 40.0, 90.0,
                   parent_id=1),
        ]
        report = analyze_spans(spans)
        blame = report.syscalls["syscall.pread"]
        assert sum(blame.segments.values()) == pytest.approx(100.0)
        assert blame.segments["local"] == pytest.approx(20.0)  # 0-10, 90-100
        assert blame.segments["wire"] == pytest.approx(80.0)

    def test_unfinished_child_clipped_at_now(self):
        # A handler that never finished (its site crashed) is clipped at
        # the analysis timestamp, not dropped.
        child = mkspan(2, "rpc:fs.read_page", "rpc", 10.0, None,
                       parent_id=1)
        child.end = None
        spans = [mkspan(1, "syscall.read", "syscall", 0.0, 50.0), child]
        report = analyze_spans(spans, now=200.0)
        blame = report.syscalls["syscall.read"]
        # The child is clipped to the parent window [10, 50].
        assert blame.segments["local"] == pytest.approx(10.0)
        assert blame.segments["wire"] == pytest.approx(40.0)
        assert report.coverage == pytest.approx(1.0)

    def test_child_outliving_parent_clipped(self):
        # A spawned child that outlives its parent contributes only the
        # part inside the parent's window.
        spans = [
            mkspan(1, "syscall.write", "syscall", 0.0, 50.0),
            mkspan(2, "rpc:fs.notify", "rpc", 30.0, 500.0, parent_id=1),
        ]
        report = analyze_spans(spans)
        blame = report.syscalls["syscall.write"]
        assert blame.total == pytest.approx(50.0)
        assert blame.segments["local"] == pytest.approx(30.0)
        assert blame.segments["wire"] == pytest.approx(20.0)

    def test_rpc_table_independent_of_nesting(self):
        spans = [
            mkspan(1, "syscall.read", "syscall", 0.0, 100.0),
            mkspan(2, "rpc:fs.read_page", "rpc", 10.0, 90.0, parent_id=1),
            mkspan(3, "serve:fs.read_page", "handler", 40.0, 70.0,
                   parent_id=2, site=1),
        ]
        report = analyze_spans(spans)
        rpc = report.rpcs["rpc:fs.read_page"]
        assert rpc.total == pytest.approx(80.0)
        assert rpc.segments["remote_service"] == pytest.approx(30.0)
        assert rpc.segments["wire"] == pytest.approx(50.0)

    def test_queue_events_clamped_to_self_time(self):
        # Over-reported queue delays can never exceed the rpc's own self
        # time (wire never goes negative).
        spans = [
            mkspan(1, "syscall.read", "syscall", 0.0, 10.0),
            mkspan(2, "rpc:fs.read_page", "rpc", 0.0, 10.0, parent_id=1,
                   events=[(5.0, "queue_wait", {"delay": 50.0})]),
        ]
        report = analyze_spans(spans)
        blame = report.syscalls["syscall.read"]
        assert blame.segments["queue"] == pytest.approx(10.0)
        assert blame.segments["wire"] == pytest.approx(0.0)
        assert report.coverage == pytest.approx(1.0)

    def test_format_blame_deterministic(self):
        spans = [
            mkspan(1, "syscall.read", "syscall", 0.0, 100.0),
            mkspan(2, "rpc:fs.read_page", "rpc", 10.0, 90.0, parent_id=1),
        ]
        a = format_blame(analyze_spans(spans))
        b = format_blame(analyze_spans(spans))
        assert a == b
        assert "syscall.read" in a and "rpc:fs.read_page" in a


def _storm_cluster(seed=11):
    return _run_traced_workload("storm", seed, 3)


class TestStormTrace:
    def test_supervision_retries_in_blame_table(self):
        cluster = _storm_cluster()
        report = analyze(cluster.tracer)
        assert report.root_count > 0
        # The storm forces supervised retries; their backoff shows up as
        # retry_wait somewhere in the syscall blame tables.
        total_retry = report.segment_totals["retry_wait"]
        assert total_retry > 0.0
        assert report.coverage >= 0.95

    def test_live_trace_coverage_complete(self):
        cluster = _storm_cluster(seed=23)
        report = analyze(cluster.tracer)
        # Every root window instant is attributed to exactly one segment.
        assert report.coverage == pytest.approx(1.0, abs=1e-9)
        for blame in report.syscalls.values():
            assert blame.attributed == pytest.approx(blame.total, abs=1e-6)

    def test_failover_spans_present(self):
        cluster = _storm_cluster()
        names = {s.name for s in cluster.tracer.spans}
        assert "fs.failover" in names or "fs.write_failover" in names

    def test_segment_names_stable(self):
        assert SEGMENTS == ("local", "queue", "wire", "remote_service",
                            "retry_wait", "repair", "other")
