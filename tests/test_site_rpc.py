"""The Site kernel's RPC layer: dispatch, errors, timeouts, crash
semantics (the Figure 1 machinery itself)."""

import pytest

from repro import LocusCluster
from repro.errors import (CircuitClosed, SimTimeout, SiteDown, Unreachable)


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=3, seed=61)


def install_echo(site):
    def h_echo(src, p):
        yield from site.cpu(1.0)
        return {"echo": p["value"], "from": src}

    def h_boom(src, p):
        raise ValueError(p.get("detail", "boom"))
        yield  # pragma: no cover

    def h_slow(src, p):
        yield p["delay"]
        return "finally"

    site.register_handler("test.echo", h_echo)
    site.register_handler("test.boom", h_boom)
    site.register_handler("test.slow", h_slow)


@pytest.fixture
def wired(cluster):
    for s in cluster.sites:
        install_echo(s)
    return cluster


class TestRpc:
    def test_remote_roundtrip(self, wired):
        out = wired.call(0, wired.site(0).rpc(2, "test.echo", {"value": 9}))
        assert out == {"echo": 9, "from": 0}

    def test_local_collapse_no_messages(self, wired):
        from repro.net.stats import StatsWindow
        win = StatsWindow(wired.stats)
        out = wired.call(1, wired.site(1).rpc(1, "test.echo", {"value": 5}))
        assert out["echo"] == 5
        assert win.close().total_messages == 0

    def test_remote_exception_reraised_at_caller(self, wired):
        with pytest.raises(ValueError, match="kapow"):
            wired.call(0, wired.site(0).rpc(2, "test.boom",
                                            {"detail": "kapow"}))

    def test_missing_handler_is_error(self, wired):
        with pytest.raises(ValueError, match="no handler"):
            wired.call(0, wired.site(0).rpc(1, "test.nothing", {}))

    def test_timeout_on_slow_handler(self, wired):
        with pytest.raises(SimTimeout):
            wired.call(0, wired.site(0).rpc(1, "test.slow", {"delay": 500.0},
                                            timeout=50.0))

    def test_unreachable_raises_immediately(self, wired):
        wired.net.set_partitions([{0}, {1, 2}])
        with pytest.raises(Unreachable):
            wired.call(0, wired.site(0).rpc(1, "test.echo", {"value": 1}))

    def test_pending_rpc_fails_when_peer_partitioned_away(self, wired):
        """Closing the circuit aborts ongoing activity (section 5.1)."""
        results = []

        def caller():
            try:
                yield from wired.site(0).rpc(2, "test.slow", {"delay": 300.0})
            except (CircuitClosed, SiteDown) as exc:
                results.append(type(exc).__name__)

        task = wired.site(0).spawn(caller())
        wired.sim.run(until=wired.sim.now + 10)
        wired.net.set_partitions([{0, 1}, {2}])
        wired.settle()
        assert results == ["CircuitClosed"]

    def test_oneway_local_dispatch(self, wired):
        seen = []

        def h_note(src, p):
            seen.append((src, p["value"]))
            return None
            yield  # pragma: no cover

        wired.site(1).register_handler("test.note", h_note)
        wired.call(1, wired.site(1).oneway(1, "test.note", {"value": 3}))
        assert seen == [(1, 3)]

    def test_duplicate_handler_registration_rejected(self, wired):
        with pytest.raises(ValueError):
            install_echo(wired.site(0))


class TestCrashSemantics:
    def test_crash_cancels_in_flight_server_work(self, wired):
        """A served request dies with the site; the requester sees the
        failure, not a hung call."""
        outcome = []

        def caller():
            try:
                out = yield from wired.site(0).rpc(2, "test.slow",
                                                   {"delay": 400.0})
                outcome.append(out)
            except (CircuitClosed, SiteDown) as exc:
                outcome.append(type(exc).__name__)

        wired.site(0).spawn(caller())
        wired.sim.run(until=wired.sim.now + 20)
        wired.fail_site(2)
        wired.settle()
        assert outcome == ["CircuitClosed"]

    def test_messages_to_down_site_dropped_silently_for_oneway(self, wired):
        wired.fail_site(2)
        wired.call(0, wired.site(0).oneway_quiet(2, "test.echo",
                                                 {"value": 1}))
        # No exception: best-effort notify swallows unreachability.

    def test_cpu_accounting_accumulates(self, wired):
        before = wired.site(2).cpu_used
        wired.call(0, wired.site(0).rpc(2, "test.echo", {"value": 1}))
        assert wired.site(2).cpu_used > before
