"""Unit tests: the replicated mount table and the incore handle state."""

import pytest

from repro.errors import EINVAL
from repro.fs.handles import CssEntry, SsOpen
from repro.fs.mount import FilegroupInfo, MountTable
from repro.fs.types import Mode
from repro.storage.pack import Pack, ROOT_INO
from repro.storage.shadow import ShadowFile
from repro.storage.version_vector import VersionVector


def table():
    t = MountTable()
    t.add_filegroup(FilegroupInfo(gfs=0, name="root",
                                  pack_sites=[0, 1, 2]))
    t.set_css(0, 0)
    return t


class TestMountTable:
    def test_pack_index_of_site(self):
        info = FilegroupInfo(gfs=0, name="r", pack_sites=[3, 1, 4])
        assert info.pack_index_of_site(1) == 1
        assert info.pack_index_of_site(9) is None

    def test_duplicate_filegroup_rejected(self):
        t = table()
        with pytest.raises(EINVAL):
            t.add_filegroup(FilegroupInfo(gfs=0, name="dup",
                                          pack_sites=[0]))

    def test_unknown_filegroup_rejected(self):
        t = table()
        with pytest.raises(EINVAL):
            t.pack_sites(42)
        with pytest.raises(EINVAL):
            t.css_for(42)

    def test_mount_crossing(self):
        t = table()
        t.add_filegroup(FilegroupInfo(gfs=1, name="usr",
                                      pack_sites=[2],
                                      mounted_on=(0, 7)))
        assert t.crossing((0, 7)) == (1, ROOT_INO)
        assert t.crossing((0, 8)) is None
        assert t.parent_of_root(1) == (0, 7)
        assert t.parent_of_root(0) is None

    def test_elect_css_prefers_pack_sites(self):
        t = table()
        assert t.elect_css(0, {1, 2}) == 1
        assert t.elect_css(0, {2}) == 2
        # No pack site in the partition: lowest member is the fallback.
        assert t.elect_css(0, {7, 9}) == 7
        assert t.elect_css(0, set()) is None

    def test_clone_is_independent(self):
        t = table()
        copy = t.clone()
        copy.set_css(0, 2)
        assert t.css_for(0) == 0
        assert copy.css_for(0) == 2
        copy.add_filegroup(FilegroupInfo(gfs=5, name="x", pack_sites=[1]))
        with pytest.raises(EINVAL):
            t.filegroup(5)


@pytest.fixture
def ss_open():
    pack = Pack(gfs=0, site_id=0, pack_index=0)
    ino = pack.alloc_inode().ino
    return SsOpen(gfile=(0, ino), shadow=ShadowFile(pack, ino))


class TestSsOpen:
    def test_user_counting(self, ss_open):
        ss_open.add_user(1, Mode.READ)
        ss_open.add_user(1, Mode.READ)
        ss_open.add_user(2, Mode.UNSYNC)
        assert ss_open.total_users == 3
        ss_open.drop_user(1, Mode.READ)
        assert ss_open.total_users == 2
        ss_open.drop_user(1, Mode.READ)
        ss_open.drop_user(2, Mode.UNSYNC)
        assert ss_open.total_users == 0

    def test_writer_tracking(self, ss_open):
        ss_open.add_user(3, Mode.WRITE)
        assert ss_open.writer == 3
        ss_open.drop_user(3, Mode.WRITE)
        assert ss_open.writer is None

    def test_drop_site_clears_holders(self, ss_open):
        ss_open.add_user(1, Mode.READ)
        ss_open.page_holders[0] = {1, 2}
        ss_open.drop_site(1)
        assert 1 not in ss_open.page_holders[0]
        assert ss_open.total_users == 0


class TestCssEntry:
    def entry(self):
        return CssEntry(gfile=(0, 5), storage_sites=[0, 1],
                        latest_vv=VersionVector({0: 1}))

    def test_open_close_lifecycle(self):
        e = self.entry()
        e.note_open(2, Mode.READ, ss=1)
        e.note_open(3, Mode.WRITE, ss=1)
        assert e.in_use and e.writer == 3 and e.active_ss == 1
        e.note_close(3, Mode.WRITE)
        assert e.writer is None and e.in_use     # reader still there
        e.note_close(2, Mode.READ)
        assert not e.in_use and e.active_ss is None

    def test_drop_site(self):
        e = self.entry()
        e.note_open(2, Mode.WRITE, ss=0)
        e.lock_tx = 42
        e.drop_site(2)
        assert e.writer is None
        assert e.lock_tx is None
