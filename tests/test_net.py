"""Unit tests for the network substrate: delivery, partitions, circuits."""

import pytest

from repro.config import CostModel
from repro.errors import SiteDown, Unreachable
from repro.net import Message, MsgKind, Network
from repro.net.message import payload_size
from repro.net.stats import StatsWindow
from repro.sim import Simulator


class Harness:
    """Three registered sites recording deliveries and circuit closures."""

    def __init__(self, n=3, cost=None):
        self.sim = Simulator(seed=1)
        self.net = Network(self.sim, cost or CostModel())
        self.delivered = {i: [] for i in range(n)}
        self.closed = {i: [] for i in range(n)}
        for i in range(n):
            self.net.register_site(
                i,
                deliver=lambda msg, i=i: self.delivered[i].append(msg),
                circuit_closed=lambda peer, why, i=i: self.closed[i].append(peer),
            )

    def msg(self, src, dst, mtype="test.op", payload=None):
        return self.net.make_message(src, dst, mtype, MsgKind.REQUEST, payload)


@pytest.fixture
def h():
    return Harness()


class TestDelivery:
    def test_message_arrives_after_latency(self, h):
        m = h.msg(0, 1, payload=b"x" * 100)
        h.net.send(0, 1, m)
        assert h.delivered[1] == []
        h.sim.run()
        assert h.delivered[1] == [m]
        expected = h.net.cost.message_delay(100)
        assert h.sim.now == pytest.approx(expected)

    def test_send_to_self_rejected(self, h):
        with pytest.raises(ValueError):
            h.net.send(0, 0, h.msg(0, 0))

    def test_messages_between_pair_arrive_in_order(self, h):
        for i in range(10):
            h.net.send(0, 1, h.msg(0, 1, payload=i))
        h.sim.run()
        assert [m.payload for m in h.delivered[1]] == list(range(10))

    def test_stats_count_by_mtype(self, h):
        h.net.send(0, 1, h.msg(0, 1, mtype="fs.open"))
        h.net.send(0, 2, h.msg(0, 2, mtype="fs.open"))
        h.net.send(1, 2, h.msg(1, 2, mtype="fs.read"))
        h.sim.run()
        assert h.net.stats.sent["fs.open"] == 2
        assert h.net.stats.sent["fs.read"] == 1
        assert h.net.stats.total_messages == 3
        assert h.net.stats.delivered == 3

    def test_response_counted_under_resp_key(self, h):
        m = h.net.make_message(0, 1, "fs.open", MsgKind.RESPONSE, None, reqid=7)
        h.net.send(0, 1, m)
        h.sim.run()
        assert h.net.stats.sent["fs.open.resp"] == 1

    def test_stats_window_diff(self, h):
        h.net.send(0, 1, h.msg(0, 1, mtype="a"))
        h.sim.run()
        win = StatsWindow(h.net.stats)
        h.net.send(0, 1, h.msg(0, 1, mtype="b"))
        h.net.send(0, 1, h.msg(0, 1, mtype="b"))
        h.sim.run()
        snap = win.close()
        assert snap.sent == {"b": 2}
        assert snap.total_messages == 2


class TestPartitions:
    def test_cross_partition_send_raises(self, h):
        h.net.set_partitions([{0, 1}, {2}])
        with pytest.raises(Unreachable):
            h.net.send(0, 2, h.msg(0, 2))
        # within-partition traffic still flows
        h.net.send(0, 1, h.msg(0, 1))
        h.sim.run()
        assert len(h.delivered[1]) == 1

    def test_in_flight_message_dropped_on_partition(self, h):
        h.net.send(0, 2, h.msg(0, 2))
        h.net.set_partitions([{0, 1}, {2}])   # break before delivery
        h.sim.run()
        assert h.delivered[2] == []
        assert h.net.stats.dropped == 1

    def test_heal_restores_reachability(self, h):
        h.net.set_partitions([{0}, {1}, {2}])
        h.net.heal()
        h.net.send(0, 2, h.msg(0, 2))
        h.sim.run()
        assert len(h.delivered[2]) == 1

    def test_partition_closes_circuits_and_notifies_both_ends(self, h):
        h.net.send(0, 2, h.msg(0, 2))
        h.sim.run()
        h.net.set_partitions([{0, 1}, {2}])
        h.sim.run()
        assert 2 in h.closed[0]
        assert 0 in h.closed[2]
        # Every previously-reachable pair the split separates is notified,
        # so site 1 learns about 2; the intact pair 0-1 stays quiet.
        assert h.closed[1] == [2]
        assert 0 not in h.closed[1]

    def test_unknown_site_in_partition_spec_rejected(self, h):
        with pytest.raises(ValueError):
            h.net.set_partitions([{0, 99}])


class TestSiteFailure:
    def test_send_from_down_site_raises(self, h):
        h.net.fail_site(0)
        with pytest.raises(SiteDown):
            h.net.send(0, 1, h.msg(0, 1))

    def test_send_to_down_site_unreachable(self, h):
        h.net.fail_site(2)
        with pytest.raises(Unreachable):
            h.net.send(0, 2, h.msg(0, 2))

    def test_failure_closes_circuits_of_dead_site(self, h):
        h.net.send(0, 2, h.msg(0, 2))
        h.sim.run()
        h.net.fail_site(2)
        h.sim.run()
        assert 2 in h.closed[0]
        # the dead site itself is not notified
        assert h.closed[2] == []

    def test_restore_site_allows_traffic_again(self, h):
        h.net.fail_site(2)
        h.net.restore_site(2)
        h.net.send(0, 2, h.msg(0, 2))
        h.sim.run()
        assert len(h.delivered[2]) == 1


class TestPayloadSize:
    @pytest.mark.parametrize("payload,size", [
        (None, 0),
        (b"abcd", 4),
        ("abc", 3),
        (7, 8),
        (3.14, 8),
        (True, 1),
        ([1, 2], 16),
        ({"a": 1}, 9),
    ])
    def test_sizes(self, payload, size):
        assert payload_size(payload) == size

    def test_extra_latency_is_applied(self):
        h = Harness()
        h.net.extra_latency[(0, 1)] = 50.0
        h.net.send(0, 1, h.msg(0, 1))
        h.sim.run()
        assert h.sim.now >= 50.0
