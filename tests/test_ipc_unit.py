"""Focused unit tests: pipe service internals, descriptor table internals,
and the directory codec."""

import pytest

from repro import LocusCluster, Mode
from repro.errors import EBADF, EEXIST, EPIPE
from repro.fs.directory import (DirEntry, DirView, decode_entries,
                                encode_entries)
from repro.storage.inode import FileType
from repro.storage.version_vector import VersionVector


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=2, seed=66)


class TestPipeService:
    def test_read_own_site_pipe_directly(self, cluster):
        pipes = cluster.site(0).proc.pipes
        pid = pipes.new_anon_id()
        cluster.call(0, pipes.open_role(0, pid, "r"))
        cluster.call(0, pipes.open_role(0, pid, "w"))
        cluster.call(0, pipes.write(0, pid, b"abc"))
        assert cluster.call(0, pipes.read(0, pid, 10)) == b"abc"

    def test_partial_reads_drain_in_order(self, cluster):
        pipes = cluster.site(0).proc.pipes
        pid = pipes.new_anon_id()
        for role in ("r", "w"):
            cluster.call(0, pipes.open_role(0, pid, role))
        cluster.call(0, pipes.write(0, pid, b"0123456789"))
        assert cluster.call(0, pipes.read(0, pid, 4)) == b"0123"
        assert cluster.call(0, pipes.read(0, pid, 4)) == b"4567"
        assert cluster.call(0, pipes.read(0, pid, 4)) == b"89"

    def test_eof_only_after_last_writer(self, cluster):
        pipes = cluster.site(0).proc.pipes
        pid = pipes.new_anon_id()
        cluster.call(0, pipes.open_role(0, pid, "r"))
        cluster.call(0, pipes.open_role(0, pid, "w"))
        cluster.call(0, pipes.open_role(0, pid, "w"))   # two writers
        cluster.call(0, pipes.write(0, pid, b"x"))
        cluster.call(0, pipes.close_role(0, pid, "w"))
        assert cluster.call(0, pipes.read(0, pid, 10)) == b"x"
        # One writer remains: a read would block, not EOF.  Close it:
        cluster.call(0, pipes.close_role(0, pid, "w"))
        assert cluster.call(0, pipes.read(0, pid, 10)) == b""

    def test_write_without_readers_epipe(self, cluster):
        pipes = cluster.site(0).proc.pipes
        pid = pipes.new_anon_id()
        cluster.call(0, pipes.open_role(0, pid, "w"))
        with pytest.raises(EPIPE):
            cluster.call(0, pipes.write(0, pid, b"x"))

    def test_read_unknown_pipe_ebadf(self, cluster):
        pipes = cluster.site(0).proc.pipes
        with pytest.raises(EBADF):
            cluster.call(0, pipes.read(0, ("anon", 0, 999), 1))

    def test_buffer_freed_after_both_sides_close(self, cluster):
        pipes = cluster.site(0).proc.pipes
        pid = pipes.new_anon_id()
        cluster.call(0, pipes.open_role(0, pid, "r"))
        cluster.call(0, pipes.open_role(0, pid, "w"))
        cluster.call(0, pipes.close_role(0, pid, "w"))
        cluster.call(0, pipes.read(0, pid, 1))   # drain EOF
        cluster.call(0, pipes.close_role(0, pid, "r"))
        assert pid not in pipes.bufs


class TestFdTable:
    def test_create_grants_token_locally(self, cluster):
        table = cluster.site(0).proc.fdtable
        ofd = table.create("file", (0, 5), Mode.READ)
        rep = table.replica(ofd)
        assert rep.has_token
        assert table.token_holder[ofd] == 0

    def test_acquire_token_moves_offset(self, cluster):
        t0 = cluster.site(0).proc.fdtable
        t1 = cluster.site(1).proc.fdtable
        ofd = t0.create("file", (0, 5), Mode.READ)
        t0.replica(ofd).offset = 42
        cluster.call(1, t1.attach({"ofd_id": ofd, "kind": "file",
                                   "target": (0, 5), "mode": Mode.READ}))
        offset = cluster.call(1, t1.acquire_token(ofd))
        assert offset == 42
        assert not t0.replica(ofd).has_token
        assert t1.replica(ofd).has_token

    def test_unknown_replica_ebadf(self, cluster):
        with pytest.raises(EBADF):
            cluster.site(0).proc.fdtable.replica((0, 999))

    def test_dup_counts_references(self, cluster):
        table = cluster.site(0).proc.fdtable
        ofd = table.create("file", (0, 5), Mode.READ)
        table.dup(ofd)
        assert table.replica(ofd).local_refs == 2
        assert cluster.call(0, table.deref(ofd)) is False
        assert cluster.call(0, table.deref(ofd)) is True
        with pytest.raises(EBADF):
            table.replica(ofd)


class TestDirectoryCodec:
    def test_roundtrip_with_tombstones(self):
        entries = [
            DirEntry("alive", 7, FileType.REGULAR),
            DirEntry("dir", 8, FileType.DIRECTORY),
            DirEntry("dead", 9, FileType.REGULAR, deleted=True,
                     dvv=VersionVector({1: 3, 2: 1})),
        ]
        decoded = decode_entries(encode_entries(entries))
        assert {e.name for e in decoded} == {"alive", "dir", "dead"}
        dead = next(e for e in decoded if e.name == "dead")
        assert dead.deleted and dead.dvv == VersionVector({1: 3, 2: 1})
        assert next(e for e in decoded if e.name == "dir").ftype is \
            FileType.DIRECTORY

    def test_decode_zero_padded(self):
        data = encode_entries([DirEntry("x", 2, FileType.REGULAR)])
        assert decode_entries(data + b"\x00" * 50) == decode_entries(data)

    def test_view_resurrect_same_file_replaces_tombstone(self):
        view = DirView([DirEntry("n", 3, FileType.REGULAR, deleted=True,
                                 dvv=VersionVector())])
        view.insert("n", 3, FileType.REGULAR)
        assert view.lookup("n").ino == 3
        assert len(view.entries) == 1

    def test_view_insert_keeps_foreign_tombstone(self):
        # A different file taking over the name must NOT destroy the old
        # file's tombstone: it is the only record telling a partition
        # merge the old binding was removed (section 4.4 rules (b)/(d)).
        view = DirView([DirEntry("n", 3, FileType.REGULAR, deleted=True,
                                 dvv=VersionVector())])
        view.insert("n", 9, FileType.REGULAR)
        assert view.lookup("n").ino == 9
        assert len(view.entries) == 2
        tombs = [e for e in view.entries if e.deleted]
        assert [t.ino for t in tombs] == [3]
        # The live entry is what readdir and a second insert see.
        assert view.names() == ["n"]
        with pytest.raises(EEXIST):
            view.insert("n", 11, FileType.REGULAR)

    def test_names_sorted_and_dotless(self):
        view = DirView([
            DirEntry(".", 1, FileType.DIRECTORY),
            DirEntry("..", 1, FileType.DIRECTORY),
            DirEntry("zeta", 4, FileType.REGULAR),
            DirEntry("alpha", 5, FileType.REGULAR),
        ])
        assert view.names() == ["alpha", "zeta"]
        assert not view.is_empty()
