"""The deterministic fault-injection engine (repro.faults).

Plans are data (JSON round-trip), triggers are exact (virtual time and
message counts), traces replay byte-identically under the same seed, and
the invariant checker audits the store at quiescence after every heal.
"""

import pytest

from repro import LocusCluster
from repro.errors import EIO, NetworkError
from repro.faults import FaultEvent, FaultPlan, InvariantChecker
from repro.fs.types import ROOT_GFS
from repro.tools import fsck


def _pong(src, payload):
    """A trivial RPC handler (generators only)."""
    return "pong"
    yield   # pragma: no cover


class TestPlan:
    def test_json_round_trip(self):
        plan = (FaultPlan(seed=5, name="storm")
                .crash(at=10.0, site=1)
                .restart(at=50.0, site=1)
                .partition(60.0, [0, 1], [2])
                .heal(at=100.0)
                .loss_burst(at=120.0, rate=0.1, duration=30.0)
                .latency_spike(at=160.0, delta=5.0, duration=10.0,
                               src=0, dst=1)
                .disk_errors(at=200.0, site=2, count=3)
                .drop("fs.read_page", count=2, after_messages=7))
        text = plan.to_json()
        clone = FaultPlan.from_json(text)
        assert clone.to_json() == text
        assert clone.seed == 5
        assert clone.name == "storm"
        assert [e.kind for e in clone.events] == [
            "crash", "restart", "partition", "heal", "loss_burst",
            "latency_spike", "disk_errors", "drop"]

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent("crash", site=1)        # no trigger
        with pytest.raises(ValueError):
            FaultEvent("meteor", at=1.0)       # unknown kind


class TestScriptedDrops:
    def _cluster(self):
        cluster = LocusCluster(n_sites=2, seed=41)
        cluster.sites[1].register_handler("t.ping", _pong)
        return cluster

    def test_drop_closes_circuit_and_filter_unhooks(self):
        cluster = self._cluster()
        site0 = cluster.sites[0]
        plan = FaultPlan(seed=41).drop("t.ping", count=1)
        inj = cluster.inject(plan)
        closed_before = cluster.stats.circuits_closed
        with pytest.raises(NetworkError):
            cluster.call(0, site0.rpc(1, "t.ping"))
        assert cluster.stats.circuits_closed > closed_before
        assert [d for __, k, d in inj.trace if k == "dropped"] == ["t.ping"]
        cluster.settle()
        # The exhausted filter removed itself from the network.
        assert cluster.net.drop_filters == []
        # The circuit reopens on the next send; the call goes through.
        assert cluster.call(0, site0.rpc(1, "t.ping")) == "pong"

    def test_message_count_trigger_fires_mid_protocol(self):
        cluster = self._cluster()
        site0 = cluster.sites[0]
        # Each ping is two t.ping messages (request + response): the
        # trigger arms after the first exchange, dropping the second.
        plan = FaultPlan(seed=42).add(FaultEvent(
            "drop", after_messages=2, mtype="t.ping", count=1))
        inj = cluster.inject(plan)
        assert cluster.call(0, site0.rpc(1, "t.ping")) == "pong"
        with pytest.raises(NetworkError):
            cluster.call(0, site0.rpc(1, "t.ping"))
        assert [d for __, k, d in inj.trace if k == "dropped"] == ["t.ping"]


class TestDiskFaults:
    def test_staged_write_fault_refuses_commit(self):
        """A physical write error under the shadow layer must poison the
        open: the commit is refused with EIO and the old content survives
        (the one-way write protocol has no reply to carry the error)."""
        cluster = LocusCluster(n_sites=2, seed=31, root_pack_sites=[1])
        sh0 = cluster.shell(0)
        old = b"old" * 400
        sh0.write_file("/data", old)
        cluster.settle()
        plan = FaultPlan(seed=31).disk_errors(
            at=cluster.sim.now, site=1, count=1)
        cluster.inject(plan)
        cluster.settle(max_time=1.0)        # let the event fire
        with pytest.raises(EIO):
            sh0.write_file("/data", b"new" * 400)
        cluster.settle()
        assert sh0.read_file("/data") == old
        assert fsck(cluster).clean


class TestDeterminismAndInvariants:
    def _storm(self):
        plan = (FaultPlan(seed=11, name="replay")
                .crash(at=260.0, site=2)
                .restart(at=700.0, site=2)
                .loss_burst(at=900.0, rate=0.2, duration=300.0)
                .heal(at=2200.0, merge=True))
        plan.check_after_heal = False       # workload may orphan under loss
        cluster = LocusCluster(n_sites=3, seed=plan.seed)
        sh = cluster.shell(0)
        sh.setcopies(3)
        inj = cluster.inject(plan)
        from repro.errors import LocusError
        for i in range(10):
            try:
                sh.write_file(f"/r{i % 4}", bytes([65 + i]) * 64)
            except LocusError:
                pass
            cluster.sim.run(until=max(cluster.sim.now, (i + 1) * 150.0))
        cluster.sim.run(until=2600.0)
        cluster.settle()
        return inj

    def test_same_seed_and_plan_replay_identical_traces(self):
        first, second = self._storm(), self._storm()
        assert first.trace == second.trace
        kinds = [k for __, k, __ in first.trace]
        assert {"crash", "restart", "loss_burst", "loss_restore",
                "heal"} <= set(kinds)

    def test_post_heal_invariant_check_runs_at_quiescence(self):
        cluster = LocusCluster(n_sites=3, seed=13)
        sh = cluster.shell(0)
        sh.setcopies(3)
        for i in range(4):
            sh.write_file(f"/q{i}", bytes([i]) * 128)
        cluster.settle()
        t0 = cluster.sim.now
        plan = (FaultPlan(seed=13, name="split")
                .partition(t0 + 10.0, [0, 1], [2])
                .heal(at=t0 + 800.0))
        inj = cluster.inject(plan)
        cluster.settle()
        kinds = [k for __, k, __ in inj.trace]
        assert kinds.count("invariant_check") == 1
        assert inj.violations == [], inj.report()
        # The check ran after the heal, at quiescence.
        heal_t = next(t for t, k, __ in inj.trace if k == "heal")
        check_t = next(t for t, k, __ in inj.trace
                       if k == "invariant_check")
        assert check_t >= heal_t

    def test_latency_spike_applies_and_restores(self):
        cluster = LocusCluster(n_sites=2, seed=17)
        t0 = cluster.sim.now
        plan = FaultPlan(seed=17).latency_spike(
            at=t0 + 5.0, delta=7.5, duration=50.0, src=0, dst=1)
        inj = cluster.inject(plan)
        cluster.sim.run(until=t0 + 10.0)
        assert cluster.net.extra_latency.get((0, 1)) == 7.5
        cluster.sim.run(until=t0 + 60.0)
        assert (0, 1) not in cluster.net.extra_latency
        assert any(k == "latency_restore" for __, k, __ in inj.trace)


class TestInvariantChecker:
    def test_detects_forged_replica_divergence(self):
        cluster = LocusCluster(n_sites=2, seed=19)
        sh = cluster.shell(0)
        sh.setcopies(2)
        sh.write_file("/d", b"same everywhere")
        cluster.settle()
        checker = InvariantChecker(cluster)
        assert checker.check() == []
        # Forge a silent divergence fsck cannot see: bump one copy's
        # version so it strictly dominates (no conflict, just stale peer).
        ino = sh.stat("/d")["ino"]
        inode = cluster.sites[0].packs[ROOT_GFS].get_inode(ino)
        inode.version = inode.version.bump(0)
        found = checker.check()
        assert any(v.kind == "replica_divergence" for v in found)
        # The violation carries everything needed to reproduce it.
        offender = next(v for v in found
                        if v.kind == "replica_divergence")
        assert offender.seed == cluster.config.seed
        assert f"({ROOT_GFS},{ino})" in offender.detail
