"""The flight recorder: histograms, registry, causal traces, exports.

The load-bearing guarantees tested here:

* histograms and percentiles are pure functions of the bucket counts
  (deterministic across platforms and insertion orders);
* tracing is observational only — the same seed produces the same virtual
  time and message counts with ``trace_enabled`` on or off;
* the same seed + fault plan exports byte-identical trace files;
* a fault-storm trace contains complete causal chains (US syscall span →
  RPC span → SS handler span) with fault instants and failover
  annotations attached.
"""

import filecmp
import json

import pytest

from repro import LocusCluster
from repro.config import CostModel
from repro.errors import LocusError
from repro.obs import (BUCKET_EDGES, Histogram, HistSnapshot,
                       MetricsRegistry, causal_chains, export_chrome,
                       export_jsonl, merge_snapshots, merge_windows,
                       validate_trace_jsonl)


# ----------------------------------------------------------------------
# Histogram / registry units
# ----------------------------------------------------------------------

class TestHistogram:
    def test_bucket_ladder_shape(self):
        assert BUCKET_EDGES[0] == pytest.approx(0.1)
        assert BUCKET_EDGES[-1] == 100000.0
        assert list(BUCKET_EDGES) == sorted(BUCKET_EDGES)

    def test_observe_and_aggregates(self):
        h = Histogram()
        for v in (0.05, 1.0, 3.0, 250.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(254.05)
        assert h.min == pytest.approx(0.05)
        assert h.max == pytest.approx(250.0)
        assert h.mean == pytest.approx(254.05 / 4)

    def test_percentile_is_bucket_upper_edge(self):
        h = Histogram()
        for __ in range(99):
            h.observe(0.9)     # bucket with edge 1.0
        h.observe(90.0)        # bucket with edge 100.0
        assert h.percentile(50) == 1.0
        assert h.percentile(99) == 1.0
        assert h.percentile(100) == 100.0

    def test_percentile_insertion_order_invariant(self):
        values = [0.3, 7.0, 42.0, 0.15, 900.0, 3.0, 3.0, 61.0]
        a, b = Histogram(), Histogram()
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        for p in (50, 95, 99):
            assert a.percentile(p) == b.percentile(p)

    def test_overflow_bucket_reports_top_edge(self):
        h = Histogram()
        h.observe(1e9)
        assert h.percentile(99) == BUCKET_EDGES[-1]

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(99) == 0.0

    def test_snapshot_diff_windows(self):
        h = Histogram()
        h.observe(1.0)
        before = h.snapshot()
        h.observe(500.0)
        h.observe(600.0)
        window = before.diff(h.snapshot())
        assert window.count == 2
        assert window.total == pytest.approx(1100.0)
        assert window.percentile(50) == 500.0     # the 1.0 is outside

    def test_merge_snapshots_sums_buckets(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        a.observe(1.0)
        b.observe(800.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged.count == 3
        assert merged.percentile(50) == 1.0
        assert merged.percentile(99) == 1000.0

    def test_to_dict_round_numbers(self):
        h = Histogram()
        h.observe(2.0)
        d = h.to_dict()
        assert d["count"] == 1 and d["p50"] == 2.0 and d["max"] == 2.0


class TestClusterMerge:
    """The public percentile-merge API the benchmark harness runs on."""

    def test_merge_snapshots_empty_site_list(self):
        merged = merge_snapshots([])
        assert merged.count == 0
        assert merged.percentile(99) == 0.0

    def test_merge_snapshots_mismatched_ladder_raises(self):
        good = Histogram().snapshot()
        foreign = HistSnapshot(counts=(1, 2, 3), count=6, total=9.0)
        with pytest.raises(ValueError, match="mismatched bucket ladder"):
            merge_snapshots([good, foreign])

    def test_merge_windows_empty_sites(self):
        assert merge_windows([]) == {}

    def test_merge_windows_skips_missing_and_empty_metrics(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        windows = [
            {"syscall.read": a.snapshot(), "syscall.write": b.snapshot()},
            {"syscall.read": Histogram().snapshot()},  # site 1 lacks write
        ]
        out = merge_windows(windows)
        assert list(out) == ["syscall.read"]      # empty write dropped
        assert out["syscall.read"]["count"] == 1

    def test_merge_windows_prefix_filter(self):
        h = Histogram()
        h.observe(5.0)
        windows = [{"syscall.read": h.snapshot(), "prop.lag": h.snapshot()}]
        out = merge_windows(windows, prefix="syscall.")
        assert list(out) == ["syscall.read"]

    def test_merge_windows_mismatched_ladder_raises(self):
        foreign = HistSnapshot(counts=(1,), count=1, total=1.0)
        with pytest.raises(ValueError, match="mismatched bucket ladder"):
            merge_windows([{"m": foreign}])


class TestMetricsRegistry:
    def test_observe_count_and_summary(self):
        reg = MetricsRegistry("t")
        reg.observe("syscall.read", 1.5)
        reg.observe("syscall.read", 2.5)
        reg.count("retries")
        reg.count("retries", 2)
        assert reg.hist("syscall.read").count == 2
        assert reg.counters["retries"] == 3
        assert reg.percentiles("syscall.read")["count"] == 2
        assert reg.percentiles("nope") is None
        assert "syscall.read" in reg.latency_summary("syscall.")
        assert reg.summary()["owner"] == "t"

    def test_gauge_sources(self):
        reg = MetricsRegistry()
        reg.register_source("cache", lambda: {"pages": 7})
        assert reg.gauges() == {"cache": {"pages": 7}}

    def test_snapshot_diff_handles_new_hists(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.observe("late.arrival", 3.0)
        reg.count("c", 5)
        window = before.diff(reg.snapshot())
        assert window.hists["late.arrival"].count == 1
        assert window.counters["c"] == 5


# ----------------------------------------------------------------------
# Satellites: stats snapshot fields, propagator accessor
# ----------------------------------------------------------------------

class TestStatsCircuits:
    def test_snapshot_and_diff_carry_circuit_counts(self):
        cluster = LocusCluster(n_sites=3, seed=5)
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/f", b"x")
        cluster.settle()
        before = cluster.stats.snapshot()
        cluster.fail_site(2)
        sh.write_file("/f", b"y")
        cluster.settle()
        after = cluster.stats.snapshot()
        assert after.circuits_closed >= 1
        delta = before.diff(after)
        assert delta.circuits_closed == (after.circuits_closed
                                         - before.circuits_closed)
        assert delta.circuits_opened == (after.circuits_opened
                                         - before.circuits_opened)


class TestPropagatorPending:
    def test_pending_accessor_tracks_private_set(self):
        cluster = LocusCluster(n_sites=3, seed=5)
        prop = cluster.site(0).fs.propagator
        assert prop.pending() == []
        cluster.partition({0}, {1, 2})
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/p", b"x")
        pending = cluster.site(0).fs.propagator.pending()
        assert pending == sorted(cluster.site(0).fs.propagator._pending)
        cluster.heal()
        cluster.settle()
        assert cluster.site(0).fs.propagator.pending() == []


# ----------------------------------------------------------------------
# Tracing: context propagation, causal chains, faults
# ----------------------------------------------------------------------

def _storm_cluster(seed=11):
    """A small fault-storm run with tracing on (explicit default cost, so
    the conftest flag shim never rewrites it)."""
    from repro.cli import _run_traced_workload
    return _run_traced_workload("storm", seed, 3)


@pytest.fixture(scope="module")
def storm():
    return _storm_cluster()


class TestCausalTracing:
    def test_syscall_spans_exist_and_finish(self, storm):
        sys_spans = [s for s in storm.tracer.spans if s.kind == "syscall"]
        assert sys_spans
        for s in sys_spans:
            assert s.end is not None and s.end >= s.start

    def test_complete_causal_chain_across_sites(self, storm):
        """At least one US syscall → RPC span → SS handler chain, with the
        handler running on a different site than the syscall."""
        good = []
        for chain in causal_chains(storm.tracer, leaf_kind="handler"):
            kinds = [s.kind for s in chain]
            if (kinds[0] == "syscall" and "rpc" in kinds
                    and kinds[-1] == "handler"
                    and chain[0].site != chain[-1].site):
                good.append(chain)
        assert good, "no complete cross-site causal chain in storm trace"

    def test_handler_spans_parent_under_rpc(self, storm):
        handlers = [s for s in storm.tracer.spans if s.kind == "handler"
                    and s.parent_id is not None]
        assert handlers
        parent = storm.tracer.span(handlers[0].parent_id)
        assert parent is not None
        assert parent.trace_id == handlers[0].trace_id

    def test_fault_instants_recorded(self, storm):
        names = {i["name"] for i in storm.tracer.instants}
        assert "fault.crash" in names
        assert "fault.heal" in names or "net.heal" in names
        assert any(n.startswith("recovery.") for n in names)

    def test_failover_annotation_on_affected_span(self, storm):
        annotated = [s for s in storm.tracer.spans
                     if any(e[1] in ("failover", "read_retry")
                            for e in s.events)]
        assert annotated, "no failover/read_retry events despite SS crashes"
        # The annotation rides on a span inside a syscall's trace.
        roots = {s.trace_id for s in storm.tracer.spans
                 if s.kind == "syscall"}
        assert any(s.trace_id in roots for s in annotated)

    def test_latency_histograms_populated(self, storm):
        merged = merge_snapshots(
            [s.metrics.hist("syscall.pread").snapshot()
             for s in storm.sites])
        assert merged.count > 0
        assert merged.percentile(99) >= merged.percentile(50) > 0

    def test_instants_are_sequenced(self, storm):
        seqs = [i["seq"] for i in storm.tracer.instants]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestTraceOnOffParity:
    """Tracing must be free: same vtime, same message counts."""

    def _run(self, trace_enabled):
        cost = CostModel().with_overrides(trace_enabled=trace_enabled)
        cluster = LocusCluster(n_sites=3, seed=23, cost=cost,
                               root_pack_sites=[1, 2])
        sh = cluster.shell(0)
        sh.setcopies(2)
        sh.write_file("/hot", b"h" * 2048)
        cluster.settle()
        from repro.cli import _storm_plan
        cluster.inject(_storm_plan(23, cluster.sim.now))
        api = cluster.shell(0).api

        def reader():
            for __ in range(30):
                try:
                    yield from api.read_file("/hot")
                except LocusError:
                    pass
                yield 20.0

        cluster.spawn(0, reader())
        cluster.settle(max_time=30_000.0)
        return cluster

    def test_vtime_and_messages_identical(self):
        on = self._run(True)
        off = self._run(False)
        assert on.sim.now == off.sim.now
        assert on.stats.total_messages == off.stats.total_messages
        assert dict(on.stats.sent) == dict(off.stats.sent)
        assert on.stats.total_bytes == off.stats.total_bytes
        assert on.tracer.enabled and not off.tracer.enabled
        assert on.tracer.spans and not off.tracer.spans

    def test_metrics_still_collected_when_trace_off(self):
        off = self._run(False)
        assert off.site(0).metrics.hist("syscall.pread").count > 0


# ----------------------------------------------------------------------
# Export determinism + schema
# ----------------------------------------------------------------------

class TestExportDeterminism:
    def test_byte_identical_replay(self, tmp_path, storm):
        replay = _storm_cluster()
        paths = {}
        for tag, cluster in (("a", storm), ("b", replay)):
            jp = tmp_path / f"{tag}.jsonl"
            cp = tmp_path / f"{tag}.chrome.json"
            export_jsonl(cluster.tracer, str(jp))
            export_chrome(cluster.tracer, str(cp))
            paths[tag] = (jp, cp)
        assert filecmp.cmp(paths["a"][0], paths["b"][0], shallow=False)
        assert filecmp.cmp(paths["a"][1], paths["b"][1], shallow=False)

    def test_different_seed_differs(self, tmp_path, storm):
        other = _storm_cluster(seed=12)
        p1, p2 = tmp_path / "s11.jsonl", tmp_path / "s12.jsonl"
        export_jsonl(storm.tracer, str(p1))
        export_jsonl(other.tracer, str(p2))
        assert not filecmp.cmp(p1, p2, shallow=False)


class TestExportSchema:
    def test_valid_export_passes(self, tmp_path, storm):
        path = tmp_path / "t.jsonl"
        n = export_jsonl(storm.tracer, str(path))
        assert n == 1 + len(storm.tracer.spans) + len(storm.tracer.instants)
        assert validate_trace_jsonl(str(path)) == []

    def test_corrupted_export_fails(self, tmp_path, storm):
        path = tmp_path / "bad.jsonl"
        export_jsonl(storm.tracer, str(path))
        lines = path.read_text().splitlines()
        # Corrupt: drop the meta line, break one JSON line, orphan a span.
        span = json.loads(lines[1])
        span["parent_id"] = 10 ** 9
        lines[1] = json.dumps(span)
        lines[2] = "{not json"
        path.write_text("\n".join(lines[1:]) + "\n")
        problems = validate_trace_jsonl(str(path))
        assert any("not JSON" in p for p in problems)
        assert any("dangling parent_id" in p for p in problems)
        assert any("no meta record" in p for p in problems)

    def test_missing_keys_flagged(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text('{"type":"meta","spans":0,"instants":0,"vtime":0}\n'
                        '{"type":"span","span_id":1}\n'
                        '{"type":"instant"}\n'
                        '{"type":"martian"}\n')
        problems = validate_trace_jsonl(str(path))
        assert any("span missing" in p for p in problems)
        assert any("instant missing" in p for p in problems)
        assert any("martian" in p for p in problems)

    def test_chrome_export_loads_as_json(self, tmp_path, storm):
        path = tmp_path / "t.chrome.json"
        n = export_chrome(storm.tracer, str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "i"}
        assert any(e.get("s") == "g" for e in doc["traceEvents"])


# ----------------------------------------------------------------------
# CLI subcommand
# ----------------------------------------------------------------------

class TestTraceCli:
    def test_smoke_run_with_check(self, tmp_path, capsys):
        from repro.cli import main
        rc = main(["trace", "--workload", "smoke", "--seed", "3",
                   "--out", str(tmp_path), "--check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "schema check: ok" in out
        assert (tmp_path / "trace.jsonl").exists()
        assert (tmp_path / "trace.chrome.json").exists()
        assert validate_trace_jsonl(str(tmp_path / "trace.jsonl")) == []

    def test_plan_file_injection(self, tmp_path):
        from repro.cli import _storm_plan, trace_main
        plan = _storm_plan(9, 1000.0)
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.to_json())
        rc = trace_main(["--workload", "smoke", "--seed", "9",
                         "--plan", str(plan_path), "--out", str(tmp_path),
                         "--check"])
        assert rc == 0
